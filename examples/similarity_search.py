#!/usr/bin/env python
"""Similarity search via rank aggregation (the paper's [11] application).

"Find restaurants like this one": rank the catalog once per attribute by
closeness to the query record — categorical attributes yield two-bucket
partial rankings (match / mismatch), numeric attributes few-valued ones —
and aggregate the rankings with the sequential-access median algorithm.

Run with::

    python examples/similarity_search.py
"""

from repro import restaurant_catalog
from repro.db.similarity import similarity_search


def describe(relation, key) -> str:
    row = relation.row(key)
    return (
        f"{key}: {row['cuisine']:<8} ${row['price']} {row['stars']}* "
        f"{row['distance_miles']:>5}mi {row['seats']:>3} seats"
    )


def main() -> None:
    relation = restaurant_catalog(n=150, seed=13)
    query = "r0042"
    print("query record:")
    print(f"  {describe(relation, query)}\n")

    result = similarity_search(
        relation, query, k=5, attributes=["cuisine", "price", "stars", "distance_miles"]
    )

    print("per-attribute closeness rankings (note the tie-heavy buckets):")
    for attribute, ranking in zip(
        ("cuisine", "price", "stars", "distance_miles"), result.input_rankings
    ):
        sizes = ranking.type
        print(
            f"  {attribute:<15} {len(sizes):>2} buckets, largest {max(sizes):>3} "
            f"(top bucket holds {sizes[0]} exact matches)"
        )

    print("\n5 most similar restaurants (median rank aggregation):")
    for rank, neighbor in enumerate(result.neighbors, start=1):
        print(f"  {rank}. {describe(relation, neighbor)}")

    log = result.access_log
    print(
        f"\nsorted accesses: {log.total_accesses} "
        f"({100 * log.saturation:.1f}% of each closeness list read)"
    )


if __name__ == "__main__":
    main()
