#!/usr/bin/env python
"""Flight search + aggregator shoot-out (the paper's travelocity example).

Builds a flight catalog, compiles a multi-criteria preference query into
partial rankings, and compares every aggregation algorithm in the library
against the exact matching optimum — the comparison behind experiment E9.

Run with::

    python examples/flight_metasearch.py
"""

from repro import (
    AttributePreference,
    MedianAggregator,
    flight_catalog,
    optimal_footrule_aggregation,
    total_distance,
)
from repro.aggregate.baselines import best_input, borda, markov_chain_mc4


def main() -> None:
    relation = flight_catalog(n=150, seed=11)
    print(f"catalog: {len(relation)} flight plans")
    print(f"  'connections' has {relation.distinct_values('connections')} distinct values "
          "(the paper's canonical few-valued numeric attribute)")

    preferences = [
        AttributePreference("connections"),
        AttributePreference("price_usd", bins=(150.0, 300.0, 500.0, 750.0)),
        AttributePreference("duration_minutes", bins=(180.0, 300.0, 420.0)),
        AttributePreference("departure_hour", bins=(6.0, 12.0, 18.0)),
    ]
    rankings = [preference.rank(relation) for preference in preferences]

    print("\ninput rankings:")
    for preference, ranking in zip(preferences, rankings):
        print(f"  {preference.attribute:<18} {len(ranking.buckets):>2} buckets")

    # the exact (expensive) optimum: minimum-cost perfect matching
    optimum, optimum_cost = optimal_footrule_aggregation(rankings)

    aggregator = MedianAggregator(tuple(rankings))
    candidates = {
        "median (full ranking)": aggregator.full_ranking(),
        "median (f-dagger DP)": aggregator.partial_ranking(),
        "borda (mean rank)": borda(rankings),
        "mc4 (markov chain)": markov_chain_mc4(rankings),
        "best input": best_input(rankings),
        "matching optimum": optimum,
    }

    print(f"\naggregation objective: sum of F_prof distances to the {len(rankings)} inputs")
    print(f"{'algorithm':<24} {'cost':>10} {'vs optimum':>11}")
    for name, candidate in candidates.items():
        cost = total_distance(candidate, rankings, "f_prof")
        print(f"{name:<24} {cost:>10.1f} {cost / optimum_cost:>10.3f}x")

    print("\ntop-5 flights by median aggregation:")
    for rank, item in enumerate(aggregator.full_ranking().items_in_order()[:5], start=1):
        row = relation.row(item)
        print(
            f"  {rank}. {item}  {row['connections']} stops, ${row['price_usd']}, "
            f"{row['duration_minutes']} min, departs {row['departure_hour']:02d}:00"
        )


if __name__ == "__main__":
    main()
