#!/usr/bin/env python
"""How few elements does MEDRANK read? (§6's database-friendliness claim)

Compares the sorted-access depth of the majority-stopping MEDRANK and the
certified NRA variant across input correlation levels: when the input
rankings agree, the winner surfaces after a tiny prefix of each list; when
they are adversarially uncorrelated, more of the input must be read — and
that is unavoidable (instance optimality), not an algorithmic defect.

Run with::

    python examples/instance_optimal_access.py
"""

from repro import medrank, nra_median
from repro.generators.workloads import mallows_profile_workload, random_profile_workload


def main() -> None:
    n, m, k = 500, 5, 3
    print(f"domain: {n} items, {m} input rankings, top-{k} requested\n")
    print(f"{'workload':<34} {'medrank depth':>14} {'nra depth':>10} {'% read (nra)':>13}")

    workloads = [
        mallows_profile_workload(n, m, phi=0.1, seed=0, max_bucket=8),
        mallows_profile_workload(n, m, phi=0.5, seed=0, max_bucket=8),
        mallows_profile_workload(n, m, phi=0.9, seed=0, max_bucket=8),
        random_profile_workload(n, m, seed=0, tie_bias=0.5),
    ]
    for workload in workloads:
        rankings = list(workload.rankings)
        fast = medrank(rankings, k=k)
        certified = nra_median(rankings, k=k)
        print(
            f"{workload.name:<34} {fast.access_log.depth:>14} "
            f"{certified.access_log.depth:>10} "
            f"{100 * certified.access_log.saturation:>12.1f}%"
        )

    print(
        "\nreading the whole input would cost depth "
        f"{n}; on agreeing inputs MEDRANK stops after a few dozen accesses."
    )


if __name__ == "__main__":
    main()
