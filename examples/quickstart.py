#!/usr/bin/env python
"""Quickstart: partial rankings, the four metrics, and median aggregation.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MedianAggregator,
    PartialRanking,
    footrule,
    footrule_hausdorff,
    kendall,
    kendall_hausdorff,
)


def main() -> None:
    # Three ways users might rank the same four restaurants. Sorting by a
    # few-valued attribute (price, stars) produces ties — bucket orders.
    by_price = PartialRanking([["noodle-bar", "taqueria"], ["trattoria"], ["bistro"]])
    by_stars = PartialRanking([["bistro", "trattoria"], ["noodle-bar"], ["taqueria"]])
    by_distance = PartialRanking([["taqueria"], ["noodle-bar", "bistro", "trattoria"]])

    print("Input partial rankings:")
    for name, ranking in [
        ("price", by_price),
        ("stars", by_stars),
        ("distance", by_distance),
    ]:
        print(f"  by {name:<9} {ranking}")

    # ------------------------------------------------------------------
    # The four metrics of the paper, all within constant factors of each
    # other (Theorem 7):
    print("\nDistances between the price and stars rankings:")
    print(f"  K_prof  (Kendall with penalty 1/2) = {kendall(by_price, by_stars)}")
    print(f"  F_prof  (L1 between positions)     = {footrule(by_price, by_stars)}")
    print(f"  K_Haus  (Hausdorff Kendall)        = {kendall_hausdorff(by_price, by_stars)}")
    print(f"  F_Haus  (Hausdorff footrule)       = {footrule_hausdorff(by_price, by_stars)}")

    # ------------------------------------------------------------------
    # Median rank aggregation (§6): provably within small constant factors
    # of the optimal aggregation under every one of the metrics above.
    aggregator = MedianAggregator((by_price, by_stars, by_distance))
    print("\nMedian aggregation:")
    print(f"  median scores      = {aggregator.scores()}")
    print(f"  full ranking       = {aggregator.full_ranking()}")
    print(f"  top-2 list         = {aggregator.top_k(2)}")
    print(f"  partial ranking f+ = {aggregator.partial_ranking()}  (Figure 1 DP)")


if __name__ == "__main__":
    main()
