#!/usr/bin/env python
"""Interactive multi-criteria search with incremental aggregation.

Models a user refining an "advanced search" page: criteria are toggled on
and off, and the median aggregation updates incrementally via
``OnlineMedianAggregator`` instead of being recomputed from scratch —
the interactive counterpart of the batch ``PreferenceQuery``.

Run with::

    python examples/interactive_search.py
"""

from repro import OnlineMedianAggregator, restaurant_catalog
from repro.db.query import AttributePreference


def show(label: str, aggregator: OnlineMedianAggregator, relation) -> None:
    top = aggregator.top_k(3)
    winners = [item for bucket in top.buckets[:3] for item in sorted(bucket)][:3]
    described = ", ".join(
        f"{item}({relation.row(item)['cuisine']}, ${relation.row(item)['price']}, "
        f"{relation.row(item)['stars']}*)"
        for item in winners
    )
    print(f"  [{len(aggregator)} criteria] {label:<42} top-3: {described}")


def main() -> None:
    relation = restaurant_catalog(n=80, seed=21)
    print(f"catalog: {len(relation)} restaurants\n")

    preferences = {
        "cheap first": AttributePreference("price"),
        "best rated first": AttributePreference("stars", reverse=True),
        "nearby first (10-mile bins)": AttributePreference(
            "distance_miles", bins=(2.0, 5.0, 10.0)
        ),
        "thai > italian": AttributePreference(
            "cuisine", value_order=["thai", "italian"]
        ),
    }
    rankings = {name: pref.rank(relation) for name, pref in preferences.items()}

    aggregator = OnlineMedianAggregator(relation.keys)
    print("user toggles criteria on:")
    for name in ("cheap first", "best rated first", "nearby first (10-mile bins)"):
        aggregator.add(rankings[name])
        show(f"+ {name}", aggregator, relation)

    print("\nuser adds a cuisine preference, then drops the price criterion:")
    aggregator.add(rankings["thai > italian"])
    show("+ thai > italian", aggregator, relation)
    aggregator.discard(rankings["cheap first"])
    show("- cheap first", aggregator, relation)

    print("\nfinal performance tiers (Figure 1 DP on the live median scores):")
    tiers = aggregator.partial_ranking()
    for index, bucket in enumerate(tiers.buckets[:4], start=1):
        sample = sorted(bucket)[:6]
        suffix = " ..." if len(bucket) > 6 else ""
        print(f"  tier {index} ({len(bucket):>2} restaurants): {sample}{suffix}")


if __name__ == "__main__":
    main()
