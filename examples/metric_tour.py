#!/usr/bin/env python
"""A guided tour of the four partial-ranking metrics and their theorems.

Walks through the paper's machinery on small, printable examples:
the K^(p) penalty regimes (Proposition 13), the Hausdorff witness
construction (Theorem 5), the Proposition 6 closed form, and the
Theorem 7 equivalence constants measured on random rankings.

Run with::

    python examples/metric_tour.py
"""

import random

from repro import PartialRanking, footrule, footrule_hausdorff, kendall, kendall_hausdorff
from repro.generators.random import random_bucket_order
from repro.metrics.hausdorff import hausdorff_witnesses
from repro.metrics.kendall import pair_counts


def penalty_regimes() -> None:
    print("=" * 70)
    print("K^(p) penalty regimes (Proposition 13)")
    print("=" * 70)
    tau_1 = PartialRanking([["a"], ["b"]])
    tau_2 = PartialRanking([["a", "b"]])
    tau_3 = PartialRanking([["b"], ["a"]])
    print("tau1: a < b   tau2: a ~ b   tau3: b < a")
    for p in (0.0, 0.25, 0.5, 1.0):
        d12 = kendall(tau_1, tau_2, p)
        d23 = kendall(tau_2, tau_3, p)
        d13 = kendall(tau_1, tau_3, p)
        verdict = "triangle OK" if d13 <= d12 + d23 + 1e-9 else "TRIANGLE FAILS"
        print(f"  p={p:<5} d(t1,t2)={d12:<5} d(t2,t3)={d23:<5} d(t1,t3)={d13:<5} {verdict}")
    print("  -> metric for p >= 1/2, near metric for 0 < p < 1/2, "
          "not a distance measure at p = 0\n")


def hausdorff_construction() -> None:
    print("=" * 70)
    print("Hausdorff witnesses (Theorem 5) and closed form (Proposition 6)")
    print("=" * 70)
    sigma = PartialRanking([["a", "b"], ["c", "d"]])
    tau = PartialRanking([["a"], ["c"], ["b", "d"]])
    print(f"sigma = {sigma}")
    print(f"tau   = {tau}")
    w = hausdorff_witnesses(sigma, tau)
    print(f"  sigma_1 = rho*tau^R*sigma = {w.sigma_1}")
    print(f"  tau_1   = rho*sigma*tau   = {w.tau_1}")
    print(f"  sigma_2 = rho*tau*sigma   = {w.sigma_2}")
    print(f"  tau_2   = rho*sigma^R*tau = {w.tau_2}")
    counts = pair_counts(sigma, tau)
    print(
        f"  pair categories: U={counts.discordant} S={counts.tied_first_only} "
        f"T={counts.tied_second_only}"
    )
    print(f"  K_Haus = |U| + max(|S|,|T|) = {kendall_hausdorff(sigma, tau)}")
    print(f"  F_Haus (via witnesses)      = {footrule_hausdorff(sigma, tau)}\n")


def equivalence_constants() -> None:
    print("=" * 70)
    print("Theorem 7: all four metrics within constant multiples")
    print("=" * 70)
    rng = random.Random(0)
    worst = {"F/K prof": 0.0, "F/K haus": 0.0, "KH/Kp": 0.0}
    for _ in range(300):
        sigma = random_bucket_order(12, rng, tie_bias=rng.random())
        tau = random_bucket_order(12, rng, tie_bias=rng.random())
        kp, fp = kendall(sigma, tau), footrule(sigma, tau)
        kh, fh = kendall_hausdorff(sigma, tau), footrule_hausdorff(sigma, tau)
        if kp:
            worst["F/K prof"] = max(worst["F/K prof"], fp / kp)
            worst["KH/Kp"] = max(worst["KH/Kp"], kh / kp)
        if kh:
            worst["F/K haus"] = max(worst["F/K haus"], fh / kh)
    for name, value in worst.items():
        print(f"  worst observed {name:<9} = {value:.3f}  (proved bound: 2)")
    print()


def main() -> None:
    penalty_regimes()
    hausdorff_construction()
    equivalence_constants()


if __name__ == "__main__":
    main()
