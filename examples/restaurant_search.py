#!/usr/bin/env python
"""The paper's §1 scenario: multi-criteria restaurant search over a catalog.

A relation of restaurants is sorted once per user preference; because the
attributes have few distinct values, every sort is a partial ranking with
big buckets. The preference query aggregates them with the sequential-
access median algorithm and reports how little of the input it read.

Run with::

    python examples/restaurant_search.py
"""

from repro import AttributePreference, PreferenceQuery, restaurant_catalog
from repro.aggregate.objective import total_distance


def main() -> None:
    relation = restaurant_catalog(n=200, seed=7)
    print(f"catalog: {len(relation)} restaurants, attributes {sorted(relation.attributes)}")
    for attribute in ("cuisine", "price", "stars"):
        print(f"  {attribute}: {relation.distinct_values(attribute)} distinct values")

    # "thai first, then indian; cheap; well-rated; up to 10 miles is fine"
    query = PreferenceQuery.build(
        AttributePreference("cuisine", value_order=["thai", "indian"]),
        AttributePreference("price"),
        AttributePreference("stars", reverse=True),
        AttributePreference("distance_miles", bins=(2.0, 5.0, 10.0)),
        k=5,
    )

    result = query.execute(relation)

    print("\ninput rankings (one per criterion):")
    for preference, ranking, ties in zip(
        query.preferences, result.input_rankings, result.ties_per_input
    ):
        print(
            f"  {preference.attribute:<16} {len(ranking.buckets):>3} buckets, "
            f"largest bucket {ties}"
        )

    print("\ntop-5 restaurants by median rank aggregation:")
    for rank, item in enumerate(result.top_items, start=1):
        row = relation.row(item)
        print(
            f"  {rank}. {item}  cuisine={row['cuisine']:<8} price={row['price']} "
            f"stars={row['stars']} distance={row['distance_miles']}mi"
        )

    log = result.access_log
    print(
        f"\nsorted accesses: {log.total_accesses} of {log.num_lists * log.domain_size} "
        f"possible ({100 * log.saturation:.1f}% of each list read)"
    )

    offline = query.execute_offline(relation)
    rankings = list(result.input_rankings)
    print(
        "aggregation quality (sum of F_prof to the inputs): "
        f"sequential={total_distance(result.ranking, rankings, 'f_prof'):.1f}  "
        f"full-information={total_distance(offline, rankings, 'f_prof'):.1f}"
    )


if __name__ == "__main__":
    main()
