#!/usr/bin/env python
"""Olympic figure skating: median rank aggregation of judges' rankings.

The paper's footnote 2: "rank aggregation based on median rank, along with
complicated tie-breaking rules, is used in judging Olympic figure
skating." This example builds a 9-judge panel over 8 skaters, aggregates
by median rank, compares against Borda (the scoring system skating moved
away from), shows how the Figure 1 DP surfaces genuine performance *tiers*
as buckets, and uses the weighted variant to model a head judge whose
ranking counts double.

Run with::

    python examples/skating_judges.py
"""

import random

from repro import MedianAggregator, PartialRanking, total_distance
from repro.aggregate.baselines import borda
from repro.generators.mallows import mallows_full_ranking

SKATERS = [
    "Aoki",
    "Baranova",
    "Chen",
    "Dubois",
    "Eriksson",
    "Fontaine",
    "Grigorieva",
    "Huang",
]


def judge_panel(seed: int = 3, judges: int = 9) -> list[PartialRanking]:
    """Nine noisy views of a latent true order (Mallows noise, phi=0.35)."""
    rng = random.Random(seed)
    return [mallows_full_ranking(SKATERS, 0.35, rng) for _ in range(judges)]


def main() -> None:
    panel = judge_panel()
    print(f"{len(panel)} judges ranked {len(SKATERS)} skaters; latent truth: {SKATERS}")
    print("\nscorecards (each judge's order):")
    for number, ranking in enumerate(panel, start=1):
        print(f"  judge {number}: {' > '.join(str(s) for s in ranking.items_in_order())}")

    aggregator = MedianAggregator(tuple(panel))
    podium = aggregator.full_ranking().items_in_order()
    print("\nmedian-rank result (the skating rule, footnote 2):")
    for place, skater in enumerate(podium[:3], start=1):
        medal = {1: "gold", 2: "silver", 3: "bronze"}[place]
        print(f"  {medal:>6}: {skater} (median rank {aggregator.scores()[skater]})")

    tiers = aggregator.partial_ranking()
    print("\nperformance tiers (Figure 1 DP on the median scores):")
    for index, bucket in enumerate(tiers.buckets, start=1):
        print(f"  tier {index}: {sorted(bucket)}")

    borda_result = borda(panel)
    print("\nmedian vs Borda under the F_prof objective:")
    print(f"  median: {total_distance(aggregator.full_ranking(), panel, 'f_prof'):.1f}")
    print(f"  borda : {total_distance(borda_result, panel, 'f_prof'):.1f}")

    # a head judge whose opinion counts double (weighted Lemma 8)
    weights = (2.0,) + (1.0,) * (len(panel) - 1)
    weighted = MedianAggregator(tuple(panel), weights=weights)
    print("\nwith the head judge (judge 1) counting double:")
    print(f"  unweighted podium: {podium[:3]}")
    print(f"  weighted podium  : {weighted.full_ranking().items_in_order()[:3]}")
    print(f"  head judge's top3: {panel[0].items_in_order()[:3]}")


if __name__ == "__main__":
    main()
