"""Setuptools shim for legacy editable installs (offline environments).

`pip install -e .` with PEP 517 build isolation needs network access to
fetch build dependencies; this shim enables
`pip install -e . --no-build-isolation --no-use-pep517` instead. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
