"""E4 — Diaconis–Graham inequalities on full rankings (equation 1).

``K <= F <= 2K`` is the classical backbone the paper's partial-ranking
bounds generalize. This experiment measures the F/K ratio for random
permutations and for the structured families that achieve the extremes:

* a single adjacent transposition gives ``F = 2K`` (upper extreme);
* cyclic shifts give ratios approaching 1 as the shift grows (each shift
  by ``s`` has ``K = s(n-s)`` pairwise inversions but footrule only
  ``2 s (n - s)``... the interesting part is the measured curve).
"""

from __future__ import annotations

from repro.core.partial_ranking import PartialRanking
from repro.experiments.runner import Table, register
from repro.generators.random import random_full_ranking, resolve_rng
from repro.metrics.footrule import footrule_full
from repro.metrics.kendall import kendall_full


def _random_table(seed: int, n: int, samples: int) -> Table:
    rng = resolve_rng(seed)
    identity = PartialRanking.from_sequence(range(n))
    ratios = []
    for _ in range(samples):
        pi = random_full_ranking(n, rng)
        k = kendall_full(identity, pi)
        if k:
            ratios.append(footrule_full(identity, pi) / k)
    return Table(
        title=f"E4a: F/K over {samples} random permutations, n={n}",
        columns=("n", "samples", "min_ratio", "mean_ratio", "max_ratio"),
        rows=(
            {
                "n": n,
                "samples": len(ratios),
                "min_ratio": min(ratios),
                "mean_ratio": sum(ratios) / len(ratios),
                "max_ratio": max(ratios),
            },
        ),
        notes="Diaconis–Graham: every ratio must lie in [1, 2].",
    )


def _structured_table(n: int) -> Table:
    identity = PartialRanking.from_sequence(range(n))
    rows = []

    swapped = list(range(n))
    swapped[0], swapped[1] = swapped[1], swapped[0]
    transposition = PartialRanking.from_sequence(swapped)
    rows.append(
        {
            "family": "adjacent transposition",
            "K": kendall_full(identity, transposition),
            "F": footrule_full(identity, transposition),
            "F_over_K": footrule_full(identity, transposition)
            / kendall_full(identity, transposition),
        }
    )

    reverse = PartialRanking.from_sequence(range(n - 1, -1, -1))
    rows.append(
        {
            "family": "full reversal",
            "K": kendall_full(identity, reverse),
            "F": footrule_full(identity, reverse),
            "F_over_K": footrule_full(identity, reverse) / kendall_full(identity, reverse),
        }
    )

    for shift in (1, n // 4, n // 2):
        order = list(range(shift, n)) + list(range(shift))
        shifted = PartialRanking.from_sequence(order)
        k = kendall_full(identity, shifted)
        f = footrule_full(identity, shifted)
        rows.append(
            {"family": f"cyclic shift by {shift}", "K": k, "F": f, "F_over_K": f / k}
        )
    return Table(
        title=f"E4b: extremal families, n={n}",
        columns=("family", "K", "F", "F_over_K"),
        rows=tuple(rows),
        notes="adjacent transpositions saturate F = 2K; reversal sits near the lower regime.",
    )


@register("e04", "Diaconis-Graham inequalities K <= F <= 2K (eq. 1)")
def run(seed: int = 0, n: int = 50, samples: int = 200) -> list[Table]:
    """Run E4; see the module docstring and EXPERIMENTS.md."""
    return [_random_table(seed, n, samples), _structured_table(n)]
