"""E10 — metric computation scaling (§4: "efficient computation").

The paper's computational contribution is that all four metrics are
polynomial — and with the right bookkeeping, near-linearithmic. This
experiment times the O(n log n) implementations against the transparent
O(n²) reference on growing domains, and shows that the Hausdorff metrics
cost only a small constant factor over the profile metrics (two
full-ranking computations plus refinement chains).
"""

from __future__ import annotations

import time

from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall, kendall_naive


def _time(fn, *args, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


@register("e10", "fast vs naive metric computation scaling")
def run(seed: int = 0, sizes: tuple[int, ...] = (100, 200, 400, 800)) -> list[Table]:
    """Run E10; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    for n in sizes:
        sigma = random_bucket_order(n, rng, tie_bias=0.5)
        tau = random_bucket_order(n, rng, tie_bias=0.5)
        fast = _time(kendall, sigma, tau)
        naive = _time(kendall_naive, sigma, tau) if n <= 400 else float("nan")
        rows.append(
            {
                "n": n,
                "kendall_fast_s": fast,
                "kendall_naive_s": naive,
                "speedup": naive / fast if naive == naive else float("nan"),
                "footrule_s": _time(footrule, sigma, tau),
                "k_haus_s": _time(kendall_hausdorff_counts, sigma, tau),
                "f_haus_s": _time(footrule_hausdorff, sigma, tau),
            }
        )
    table = Table(
        title="E10: metric computation time (seconds, best of 3)",
        columns=(
            "n",
            "kendall_fast_s",
            "kendall_naive_s",
            "speedup",
            "footrule_s",
            "k_haus_s",
            "f_haus_s",
        ),
        rows=tuple(rows),
        notes="the naive O(n^2) column is skipped past n=400; speedup grows roughly like n/log n.",
    )
    return [table]
