"""E13 — related-work measures vs. the paper's metrics (§ Related work).

The paper dismisses the Goodman–Kruskal approach because it "is not always
defined". This experiment quantifies that objection on the very workloads
the paper targets: for database attribute sorts and random bucket orders,
it measures how often gamma (and tau-b) are undefined, and — where they
are defined — how strongly each classical coefficient agrees with the
paper's ``K_prof`` in ordering pairs by similarity (Spearman correlation
of the two pair orderings).
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.generators.workloads import db_profile_workload
from repro.metrics.kendall import kendall
from repro.metrics.related import (
    UndefinedCorrelationError,
    goodman_kruskal_gamma,
    kendall_tau_b,
    spearman_rho,
)

_MEASURES = {
    "tau_b": kendall_tau_b,
    "gamma": goodman_kruskal_gamma,
    "rho": spearman_rho,
}


def _rank_agreement(xs: list[float], ys: list[float]) -> float:
    """Spearman correlation between two paired value lists."""

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        for rank, index in enumerate(order):
            result[index] = float(rank)
        return result

    rx, ry = ranks(xs), ranks(ys)
    n = len(rx)
    mean = (n - 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def _pairs_for(workload_name: str, n: int, m: int, seed: int):
    if workload_name == "constant attribute":
        # a filtered result set where one criterion has a single value —
        # its ranking ties everything, so every pair involving it has
        # C + D = 0 and the classical coefficients are undefined
        rng = resolve_rng(seed)
        from repro.core.partial_ranking import PartialRanking

        constant = PartialRanking.single_bucket(range(n))
        others = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m - 1)]
        return [(constant, other) for other in others] + list(combinations(others, 2))
    if workload_name == "db attribute sorts":
        restaurant = db_profile_workload(n, seed=seed, catalog="restaurants")
        flights = db_profile_workload(n, seed=seed, catalog="flights")
        rankings = list(restaurant.rankings)
        pairs = list(combinations(rankings, 2))
        pairs.extend(combinations(list(flights.rankings), 2))
        return pairs
    rng = resolve_rng(seed)
    tie_bias = 0.8 if "heavy" in workload_name else 0.3
    rankings = [random_bucket_order(n, rng, tie_bias=tie_bias) for _ in range(m)]
    return list(combinations(rankings, 2))


@register("e13", "related-work coefficients: gamma undefinedness and agreement with K_prof")
def run(seed: int = 0, n: int = 40, m: int = 12) -> list[Table]:
    """Run E13; see the module docstring and EXPERIMENTS.md."""
    rows = []
    for workload_name in (
        "light ties",
        "heavy ties",
        "db attribute sorts",
        "constant attribute",
    ):
        pairs = _pairs_for(workload_name, n, m, seed)
        k_values = [kendall(a, b) for a, b in pairs]  # repro: noqa[RP009]
        for measure_name, measure in _MEASURES.items():
            defined: list[float] = []
            defined_k: list[float] = []
            undefined = 0
            for (a, b), k in zip(pairs, k_values):
                try:
                    value = measure(a, b)
                except UndefinedCorrelationError:
                    undefined += 1
                    continue
                defined.append(-value)  # negate: correlation -> dissimilarity
                defined_k.append(k)
            agreement = (
                _rank_agreement(defined, defined_k) if len(defined) >= 3 else float("nan")
            )
            rows.append(
                {
                    "workload": workload_name,
                    "measure": measure_name,
                    "pairs": len(pairs),
                    "undefined": undefined,
                    "undefined_pct": 100.0 * undefined / len(pairs),
                    "agreement_with_k_prof": agreement,
                }
            )
    table = Table(
        title=f"E13: classical coefficients vs K_prof (n={n})",
        columns=(
            "workload",
            "measure",
            "pairs",
            "undefined",
            "undefined_pct",
            "agreement_with_k_prof",
        ),
        rows=tuple(rows),
        notes=(
            "gamma/tau-b/rho raise on some heavily tied pairs (the paper's objection); "
            "K_prof is always defined. agreement = Spearman correlation between each "
            "coefficient's dissimilarity ordering of the pairs and K_prof's."
        ),
    )
    return [table]
