"""E15 — Condorcet structure of aggregation instances (extension).

E14 observed that the pairwise-majority lower bound is nearly tight on
random profiles, i.e. Condorcet cycles are rare. This experiment maps the
phenomenon: across domain size, profile size, and tie pressure, it
measures how often the majority digraph is acyclic, how often a Condorcet
winner exists, and — on acyclic instances — confirms that the topological
aggregation attains the exact optimum (so the exponential Kemeny solver is
only ever needed on the cyclic residue).
"""

from __future__ import annotations

from repro.aggregate.kemeny import kemeny_optimal
from repro.aggregate.tournament import (
    condorcet_winner,
    is_condorcet_consistent,
    topological_aggregation,
)
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.generators.workloads import db_profile_workload

_ABS_TOL = 1e-9


@register("e15", "Condorcet-cycle frequency and the exact fast path (extension)")
def run(
    seed: int = 0,
    n: int = 8,
    trials: int = 40,
) -> list[Table]:
    """Run E15; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    configurations = [
        ("m=3, light ties", 3, 0.2),
        ("m=3, heavy ties", 3, 0.7),
        ("m=5, light ties", 5, 0.2),
        ("m=5, heavy ties", 5, 0.7),
        ("m=9, light ties", 9, 0.2),
    ]
    for label, m, tie_bias in configurations:
        acyclic = 0
        winners = 0
        exact_matches = 0
        for _ in range(trials):
            rankings = [
                random_bucket_order(n, rng, tie_bias=tie_bias) for _ in range(m)
            ]
            if condorcet_winner(rankings) is not None:
                winners += 1
            if is_condorcet_consistent(rankings):
                acyclic += 1
                _, topo_cost = topological_aggregation(rankings)
                _, exact_cost = kemeny_optimal(rankings)
                if abs(topo_cost - exact_cost) <= _ABS_TOL:
                    exact_matches += 1
        rows.append(
            {
                "configuration": label,
                "trials": trials,
                "acyclic_pct": 100.0 * acyclic / trials,
                "condorcet_winner_pct": 100.0 * winners / trials,
                "topo_equals_exact": f"{exact_matches}/{acyclic}",
            }
        )

    # the paper's own regime: database attribute sorts
    for catalog in ("restaurants", "flights", "bibliography"):
        workload = db_profile_workload(n=12, seed=seed, catalog=catalog)
        rankings = list(workload.rankings)
        consistent = is_condorcet_consistent(rankings)
        row = {
            "configuration": f"db({catalog}, n=12)",
            "trials": 1,
            "acyclic_pct": 100.0 if consistent else 0.0,
            "condorcet_winner_pct": 100.0 if condorcet_winner(rankings) else 0.0,
            "topo_equals_exact": "-",
        }
        if consistent:
            _, topo_cost = topological_aggregation(rankings)
            _, exact_cost = kemeny_optimal(rankings)
            row["topo_equals_exact"] = (
                "1/1" if abs(topo_cost - exact_cost) <= _ABS_TOL else "0/1"
            )
        rows.append(row)

    table = Table(
        title=f"E15: Condorcet structure of random and DB profiles (n={n})",
        columns=(
            "configuration",
            "trials",
            "acyclic_pct",
            "condorcet_winner_pct",
            "topo_equals_exact",
        ),
        rows=tuple(rows),
        notes=(
            "on every acyclic instance the topological aggregation equals the exact "
            "Kemeny optimum (the polynomial fast path); cycles concentrate in small, "
            "balanced profiles."
        ),
    )
    return [table]
