"""E17 — plugin metrics in action: top-weighted distances and minmax.

Two questions about the metric plugin registry's first-party plugins
(the weighted Spearman footrule, arXiv 1207.2541, and the weighted
top-difference distance, arXiv 2403.15198), answered on the same
bucketized-Mallows workloads the built-in experiments use:

1. **How do top-weighted distances read Mallows noise?** For growing
   dispersion ``phi`` we report every registered metric's mean
   normalized distance to the ground truth. The plugins' harmonic
   weights concentrate mass at the top of the ranking, so on Mallows
   noise — which perturbs uniformly across positions — they read *lower*
   than the position-uniform built-ins, and the gap quantifies how much
   of the disagreement lives below the top.

2. **What does the minmax objective buy?** On a profile of honest
   voters plus one adversarial (reversed) voter we aggregate under both
   objectives of :func:`repro.aggregate.aggregate` and report each
   consensus's total and worst-voter distance. The egalitarian minmax
   consensus concedes a little total distance to pull the worst-off
   voter (the adversary) closer — the arXiv 1701.08305 trade-off, here
   measurable under a plugin metric.
"""

from __future__ import annotations

from repro.aggregate.minmax import aggregate
from repro.aggregate.objective import max_distance, total_distance
from repro.core.partial_ranking import PartialRanking
from repro.experiments.runner import Table, register
from repro.generators.mallows import bucketized_mallows
from repro.generators.random import resolve_rng
from repro.metrics.normalized import normalized_metric

#: Metrics of table 1: the two position-uniform built-ins next to the
#: two top-weighted plugins.
_METRIC_NAMES = ("f_prof", "k_prof", "weighted_footrule", "top_difference")


@register("e17", "plugin metrics: top-weighted distances and the minmax objective")
def run(
    seed: int = 0,
    n: int = 30,
    voters: int = 12,
    trials: int = 10,
) -> list[Table]:
    """Run E17; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    truth_order = list(range(n))
    truth = PartialRanking.from_sequence(truth_order)
    normalized = {name: normalized_metric(name) for name in _METRIC_NAMES}

    sensitivity_rows = []
    for phi in (0.1, 0.25, 0.5, 0.75, 1.0):
        totals = dict.fromkeys(_METRIC_NAMES, 0.0)
        count = 0
        for _ in range(trials):
            for _voter in range(voters):
                sample = bucketized_mallows(truth_order, phi, rng, max_bucket=4)
                count += 1
                for name in _METRIC_NAMES:
                    totals[name] += normalized[name](truth, sample)
        row: dict[str, object] = {"phi": phi}
        row.update({name: totals[name] / count for name in _METRIC_NAMES})
        sensitivity_rows.append(row)
    sensitivity = Table(
        title=(
            f"E17a: mean normalized distance to truth vs Mallows dispersion "
            f"(n={n}, {voters} voters, max_bucket=4)"
        ),
        columns=("phi", *_METRIC_NAMES),
        rows=tuple(sensitivity_rows),
        notes=(
            "Each metric normalized by its registry max_value (for the plugins a "
            "proven upper bound, so plugin columns are conservative). The "
            "harmonically top-weighted plugins sit below the position-uniform "
            "built-ins: Mallows noise spends most of its disagreement in the "
            "bulk of the ranking, which the plugins discount."
        ),
    )

    objective_rows = []
    small_truth = list(range(6))
    small = PartialRanking.from_sequence(small_truth)
    for metric in ("f_prof", "weighted_footrule", "top_difference"):
        profile = [
            bucketized_mallows(small_truth, 0.2, rng, max_bucket=3) for _ in range(5)
        ]
        profile.append(small.reverse())
        for objective in ("median", "minmax"):
            result = aggregate(profile, objective, metric)
            objective_rows.append(
                {
                    "metric": result.metric,
                    "objective": objective,
                    "total": total_distance(result.ranking, profile, metric),
                    "worst": max_distance(result.ranking, profile, metric),
                    "exact": result.exact,
                }
            )
    objectives = Table(
        title=(
            "E17b: median vs minmax consensus on 5 honest voters + 1 reversed "
            "adversary (n=6, exhaustive search)"
        ),
        columns=("metric", "objective", "total", "worst", "exact"),
        rows=tuple(objective_rows),
        notes=(
            "Within each metric the minmax row has worst <= the median row's "
            "worst and total >= the median row's total: the egalitarian "
            "consensus spends total distance to protect the worst-off voter "
            "(arXiv 1701.08305)."
        ),
    )
    return [sensitivity, objectives]
