"""Experiment harness: result tables, formatting, and the registry.

Each experiment module exposes ``run(seed=0, **params) -> list[Table]``;
the registry maps experiment ids (``"e01"`` ... ``"e12"``) to those
runners. ``python -m repro.experiments e03`` prints the tables recorded in
EXPERIMENTS.md; the benchmark suite wraps the same runners.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro import obs

__all__ = [
    "Table",
    "format_table",
    "format_tables",
    "register",
    "EXPERIMENTS",
    "get_experiment",
    "all_experiments",
    "run_experiments",
]


@dataclass(frozen=True, slots=True)
class Table:
    """One result table: a title, ordered columns, and dict rows."""

    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping[str, Any], ...]
    notes: str = ""

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (raises if the column is unknown)."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return [row[name] for row in self.rows]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(table: Table) -> str:
    """Render a table as aligned monospace text."""
    header = list(table.columns)
    body = [[_render_cell(row.get(col, "")) for col in header] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title, "-" * len(table.title)]
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    for line in body:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    if table.notes:
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def format_tables(tables: Sequence[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(format_table(table) for table in tables)


Runner = Callable[..., list[Table]]

#: Experiment id -> (runner, one-line description).
EXPERIMENTS: dict[str, tuple[Runner, str]] = {}


def register(experiment_id: str, description: str) -> Callable[[Runner], Runner]:
    """Decorator registering an experiment runner under an id."""

    def decorate(runner: Runner) -> Runner:
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = (runner, description)
        return runner

    return decorate


def get_experiment(experiment_id: str) -> tuple[Runner, str]:
    """Look up a registered experiment, importing runners on first use."""
    _load_all()
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        ) from None


def all_experiments() -> dict[str, tuple[Runner, str]]:
    """All registered experiments, id -> (runner, description)."""
    _load_all()
    return dict(EXPERIMENTS)


def _run_one(task: tuple[str, int]) -> tuple[str, list[Table]]:
    """Pool worker: run one experiment by id (top-level, hence picklable).

    Worker processes import the experiment modules themselves; returning
    the id alongside the tables keeps reassembly order-independent.
    """
    experiment_id, seed = task
    runner, _ = get_experiment(experiment_id)
    with obs.trace(f"experiment.{experiment_id}", seed=seed):
        return experiment_id, runner(seed=seed)


def run_experiments(
    experiment_ids: Sequence[str] | None = None,
    seed: int = 0,
    jobs: int | None = None,
) -> dict[str, list[Table]]:
    """Run several experiments, optionally across a process pool.

    ``experiment_ids`` defaults to every registered experiment in sorted id
    order; the returned dict preserves that order regardless of worker
    scheduling. Each experiment seeds its own generators from ``seed``, so
    results are identical for any job count (:mod:`repro.parallel` — jobs
    default to serial / the ``REPRO_JOBS`` variable).
    """
    from repro.parallel import parallel_map

    if experiment_ids is None:
        experiment_ids = sorted(all_experiments())
    else:
        experiment_ids = list(experiment_ids)
        for experiment_id in experiment_ids:
            get_experiment(experiment_id)  # fail fast on unknown ids
    results = parallel_map(
        _run_one, [(experiment_id, seed) for experiment_id in experiment_ids], jobs=jobs
    )
    return {experiment_id: tables for experiment_id, tables in results}


_LOADED = False


def _load_all() -> None:
    """Import every experiment module so its @register decorator fires."""
    global _LOADED
    if _LOADED:
        return
    from repro.experiments import (  # noqa: F401
        e01_penalty,
        e02_hausdorff,
        e03_equivalence,
        e04_diaconis_graham,
        e05_topk_aggregation,
        e06_dp_bucketing,
        e07_full_ranking,
        e08_medrank_access,
        e09_aggregator_comparison,
        e10_scaling,
        e11_strong_optimality,
        e12_topk_location,
        e13_related_measures,
        e14_exact_kemeny,
        e15_condorcet_structure,
        e16_robustness,
        e17_plugin_metrics,
    )

    _LOADED = True  # repro: noqa[RP012] — idempotent lazy-import latch; each worker re-runs the imports once and the flag never crosses processes
