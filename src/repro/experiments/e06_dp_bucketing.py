"""E6 — the Figure 1 dynamic program (Theorem 10 / Corollary 31, §A.6.4).

Two claims are measured:

1. **Optimality of the DP** — on small inputs, the DP's segmentation cost
   equals the exhaustive minimum over all 2^(n-1) segmentations; the
   half-integral Figure 1 fast path agrees with the generic prefix-sum DP.
2. **Aggregation guarantee** — the partial ranking ``f†`` built from
   median scores is within factor 2 of the best partial ranking under
   ``sum_i F_prof`` (inputs are partial rankings), measured against the
   exhaustive bucket-order optimum.
"""

from __future__ import annotations

from repro.aggregate.dp import (
    brute_force_bucketing,
    figure1_boundaries,
    optimal_bucketing,
)
from repro.aggregate.exact import optimal_partial_ranking_bruteforce
from repro.aggregate.median import median_partial_ranking
from repro.aggregate.objective import total_distance
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng

_ABS_TOL = 1e-9


def _dp_optimality_table(seed: int, trials: int, max_n: int) -> Table:
    rng = resolve_rng(seed)
    checked = 0
    dp_optimal = 0
    figure1_agrees = 0
    for _ in range(trials):
        n = rng.randint(1, max_n)
        values = sorted(rng.randint(0, 2 * n) / 2 for _ in range(n))
        dp = optimal_bucketing(values)
        brute = brute_force_bucketing(values)
        fig1 = figure1_boundaries(values)
        checked += 1
        if abs(dp.cost - brute.cost) <= _ABS_TOL:
            dp_optimal += 1
        if abs(fig1.cost - brute.cost) <= _ABS_TOL:
            figure1_agrees += 1
    return Table(
        title=f"E6a: DP vs exhaustive segmentation ({trials} random score vectors, n<= {max_n})",
        columns=("trials", "dp_matches_bruteforce", "figure1_matches_bruteforce"),
        rows=(
            {
                "trials": checked,
                "dp_matches_bruteforce": dp_optimal,
                "figure1_matches_bruteforce": figure1_agrees,
            },
        ),
        notes="both columns must equal trials: the DP is exactly optimal.",
    )


def _aggregation_table(seed: int, n: int, m: int, trials: int) -> Table:
    rng = resolve_rng(seed)
    ratios = []
    for _ in range(trials):
        rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
        f_dagger = median_partial_ranking(rankings)
        cost = total_distance(f_dagger, rankings, "f_prof")
        _, optimum = optimal_partial_ranking_bruteforce(rankings, metric="f_prof")
        if optimum > 0:
            ratios.append(cost / optimum)
    return Table(
        title=f"E6b: f-dagger aggregation ratio vs bucket-order optimum (n={n}, m={m})",
        columns=("trials", "min_ratio", "mean_ratio", "max_ratio", "proved_bound"),
        rows=(
            {
                "trials": len(ratios),
                "min_ratio": min(ratios),
                "mean_ratio": sum(ratios) / len(ratios),
                "max_ratio": max(ratios),
                "proved_bound": 2.0,
            },
        ),
        notes="Theorem 10 (partial-ranking inputs): max_ratio must be <= 2.",
    )


@register("e06", "Figure 1 DP optimality and Theorem 10 aggregation factor")
def run(
    seed: int = 0,
    dp_trials: int = 60,
    dp_max_n: int = 12,
    n: int = 5,
    m: int = 5,
    agg_trials: int = 20,
) -> list[Table]:
    """Run E6; see the module docstring and EXPERIMENTS.md."""
    return [
        _dp_optimality_table(seed, dp_trials, dp_max_n),
        _aggregation_table(seed + 1, n, m, agg_trials),
    ]
