"""E9 — aggregator comparison: quality and time (§1/§6 motivation).

The paper positions median aggregation as matching the quality of the
sophisticated WWW'01 heuristics while being database-friendly. This
experiment runs median (full-ranking and f-dagger outputs), Borda, MC4,
pick-a-perm, best-input, locally-Kemenized median, and the exact matching
optimum on shared workloads, reporting the ``F_prof`` and ``K_prof``
objectives (normalized by the matching optimum where meaningful) and wall
time per aggregation.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Sequence

from repro.aggregate.baselines import best_input, borda, locally_kemenize, markov_chain_mc4, pick_a_perm
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.median import median_full_ranking, median_partial_ranking
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.experiments.runner import Table, register
from repro.generators.workloads import (
    Workload,
    db_profile_workload,
    mallows_profile_workload,
)

Aggregator = Callable[[Sequence[PartialRanking]], PartialRanking]


def _aggregators(seed: int) -> dict[str, Aggregator]:
    rng = random.Random(seed)
    return {
        "median (full)": median_full_ranking,
        "median (f-dagger)": median_partial_ranking,
        "median + local kemeny": lambda rankings: locally_kemenize(
            median_full_ranking(rankings), rankings
        ),
        "borda": borda,
        "mc4": markov_chain_mc4,
        "pick-a-perm": lambda rankings: pick_a_perm(rankings, rng),
        "best-input": best_input,
    }


def _evaluate(workload: Workload, seed: int) -> list[dict]:
    rankings = list(workload.rankings)
    start = time.perf_counter()
    _, matching_cost = optimal_footrule_aggregation(rankings)
    matching_seconds = time.perf_counter() - start

    rows = [
        {
            "workload": workload.name,
            "aggregator": "matching optimum",
            "f_prof_ratio": 1.0,
            "k_prof_cost": float("nan"),
            "seconds": matching_seconds,
        }
    ]
    for name, aggregator in _aggregators(seed).items():
        start = time.perf_counter()
        candidate = aggregator(rankings)
        seconds = time.perf_counter() - start
        f_cost = total_distance(candidate, rankings, "f_prof")
        k_cost = total_distance(candidate, rankings, "k_prof")
        rows.append(
            {
                "workload": workload.name,
                "aggregator": name,
                "f_prof_ratio": f_cost / matching_cost if matching_cost else float("nan"),
                "k_prof_cost": k_cost,
                "seconds": seconds,
            }
        )
    return rows


@register("e09", "aggregator comparison: median vs baselines vs matching optimum")
def run(seed: int = 0, n: int = 60, m: int = 5) -> list[Table]:
    """Run E9; see the module docstring and EXPERIMENTS.md."""
    workloads = [
        mallows_profile_workload(n, m, phi=0.3, seed=seed, max_bucket=6),
        db_profile_workload(n, seed=seed, catalog="restaurants"),
    ]
    rows: list[dict] = []
    for workload in workloads:
        rows.extend(_evaluate(workload, seed))
    table = Table(
        title=f"E9: aggregation quality/time comparison (n={n}, m={m})",
        columns=("workload", "aggregator", "f_prof_ratio", "k_prof_cost", "seconds"),
        rows=tuple(rows),
        notes=(
            "f_prof_ratio is relative to the exact matching optimum (1.0). The f-dagger output "
            "is a partial ranking, so its F_prof objective can beat every full ranking."
        ),
    )
    return [table]
