"""E11 — strong-sense near-optimality of the median top-k (§A.6.3).

Theorems 33/35: the median top-k list is not just within factor 3 of the
best top-k list; it is *consistent with* a partial ranking ``sigma'`` that
is itself near-optimal over all partial rankings (factor ``c``), and any
such consistent fixed-type ranking is within ``2c + 1`` of the best
ranking of its type. This experiment measures, per trial:

* ``c`` — the f-dagger ratio against the exhaustive bucket-order optimum;
* the top-k ratio against the exhaustive top-k optimum;
* the two proved ceilings (3 from Theorem 9, ``2c + 1`` from Theorem 33).
"""

from __future__ import annotations

from repro.aggregate.exact import optimal_partial_ranking_bruteforce, optimal_top_k
from repro.aggregate.median import median_partial_ranking, median_top_k
from repro.aggregate.objective import total_distance
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng


@register("e11", "strong-sense near-optimality of median top-k (Theorems 33/35)")
def run(seed: int = 0, n: int = 5, k: int = 2, m: int = 5, trials: int = 15) -> list[Table]:
    """Run E11; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    for trial in range(trials):
        rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
        f_dagger = median_partial_ranking(rankings)
        _, partial_opt = optimal_partial_ranking_bruteforce(rankings, metric="f_prof")
        c = (
            total_distance(f_dagger, rankings, "f_prof") / partial_opt
            if partial_opt
            else 1.0
        )
        top = median_top_k(rankings, k)
        _, topk_opt = optimal_top_k(rankings, k, metric="f_prof")
        topk_ratio = (
            total_distance(top, rankings, "f_prof") / topk_opt if topk_opt else 1.0
        )
        rows.append(
            {
                "trial": trial,
                "c (f-dagger ratio)": c,
                "topk_ratio": topk_ratio,
                "thm9_bound": 3.0,
                "thm33_bound": 2 * c + 1,
                "within_both": topk_ratio <= min(3.0, 2 * c + 1) + 1e-9,
            }
        )
    table = Table(
        title=f"E11: strong-sense optimality, n={n}, k={k}, m={m}",
        columns=(
            "trial",
            "c (f-dagger ratio)",
            "topk_ratio",
            "thm9_bound",
            "thm33_bound",
            "within_both",
        ),
        rows=tuple(rows),
        notes="topk_ratio must respect both ceilings; c <= 2 by Theorem 10.",
    )
    return [table]
