"""E12 — top-k lists and the location-parameter footrule (Appendix A.3).

Appendix A.3 connects the partial-ranking metrics (restricted to top-k
lists over a fixed domain) to the Fagin–Kumar–Sivakumar top-k distance
measures. The concrete identity: ``F_prof = F^(ℓ)`` at
``ℓ = (|D| + k + 1) / 2``. This experiment verifies the identity on random
top-k pairs and sweeps ``ℓ`` to show how the location parameter scales the
distance — a one-parameter family of near metrics around ``F_prof``.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.topk import footrule_location_parameter, footrule_with_location
from repro.experiments.runner import Table, register
from repro.generators.random import random_top_k, resolve_rng
from repro.metrics.footrule import footrule
from repro.metrics.topk_fks import fks_kendall

_ABS_TOL = 1e-9


def _fks_near_metric_table(universe: str = "abcde", k: int = 2) -> Table:
    """Demonstrate A.3's metric-vs-near-metric split.

    Over a fixed domain the top-k restriction of ``K_prof`` is a metric;
    in the FKS varying-active-domain scenario the same formula admits
    triangle violations — but only up to a constant factor.
    """
    lists = [list(t) for t in permutations(universe, k)]
    triples = 0
    violations = 0
    worst = 1.0
    for x in lists:
        for y in lists:
            for z in lists:
                triples += 1
                through = fks_kendall(x, y) + fks_kendall(y, z)
                direct = fks_kendall(x, z)
                if direct > through + _ABS_TOL:
                    violations += 1
                    if through > 0:
                        worst = max(worst, direct / through)
    return Table(
        title=f"E12c: FKS varying-domain K_prof on top-{k} lists of {len(universe)} items",
        columns=("triples", "triangle_violations", "violation_pct", "worst_ratio"),
        rows=(
            {
                "triples": triples,
                "triangle_violations": violations,
                "violation_pct": 100.0 * violations / triples,
                "worst_ratio": worst,
            },
        ),
        notes=(
            "violations exist (so the FKS measure is not a metric) but the worst "
            "ratio is bounded by a small constant (so it IS a near metric) — A.3."
        ),
    )


@register("e12", "F_prof = F^(l) at the canonical location parameter (A.3)")
def run(seed: int = 0, n: int = 40, k: int = 8, samples: int = 50) -> list[Table]:
    """Run E12; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    canonical = footrule_location_parameter(n, k)
    matches = 0
    sweep_ratios: dict[float, list[float]] = {}
    offsets = (-(n - k) / 4, 0.0, (n - k) / 4, (n - k) / 2)
    for _ in range(samples):
        sigma = random_top_k(n, k, rng)
        tau = random_top_k(n, k, rng)
        f_prof = footrule(sigma, tau)
        if abs(footrule_with_location(sigma, tau, k, canonical) - f_prof) <= _ABS_TOL:
            matches += 1
        for offset in offsets:
            ell = canonical + offset
            if ell <= k:
                continue
            value = footrule_with_location(sigma, tau, k, ell)
            if f_prof > 0:
                sweep_ratios.setdefault(ell, []).append(value / f_prof)

    identity_table = Table(
        title=f"E12a: F_prof == F^(l) at l=({n}+{k}+1)/2 = {canonical}",
        columns=("samples", "exact_matches"),
        rows=({"samples": samples, "exact_matches": matches},),
        notes="exact_matches must equal samples (Appendix A.3 identity).",
    )
    sweep_rows = [
        {
            "ell": ell,
            "min_ratio": min(ratios),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
        }
        for ell, ratios in sorted(sweep_ratios.items())
    ]
    sweep_table = Table(
        title="E12b: F^(l) / F_prof as the location parameter moves",
        columns=("ell", "min_ratio", "mean_ratio", "max_ratio"),
        rows=tuple(sweep_rows),
        notes="the canonical l gives ratio exactly 1; other values scale the bottom-bucket term.",
    )
    return [identity_table, sweep_table, _fks_near_metric_table()]
