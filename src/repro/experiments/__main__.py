"""Command-line entry point for the experiment harness.

.. code-block:: console

    python -m repro.experiments            # list all experiments
    python -m repro.experiments e05        # run one experiment
    python -m repro.experiments e05 --seed 7
    python -m repro.experiments --all      # run everything in order
    python -m repro.experiments --all --jobs 4   # ... across 4 processes
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro import obs
from repro.experiments.runner import (
    all_experiments,
    format_tables,
    get_experiment,
    run_experiments,
)


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id, (_, description) in sorted(all_experiments().items()):
        lines.append(f"  {experiment_id}  {description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the EXPERIMENTS.md reproduction harness.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id, e.g. e03")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --all (default: REPRO_JOBS or serial; "
        "negative = all CPUs)",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        default=None,
        help="record per-experiment spans to a JSON-lines trace file "
        "(inspect with: python -m repro.obs summarize OUT.JSONL)",
    )
    args = parser.parse_args(argv)

    tracing = obs.session(args.trace) if args.trace else contextlib.nullcontext()
    with tracing:
        if args.all:
            descriptions = {
                experiment_id: description
                for experiment_id, (_, description) in all_experiments().items()
            }
            results = run_experiments(seed=args.seed, jobs=args.jobs)
            for experiment_id, tables in results.items():
                print(f"== {experiment_id}: {descriptions[experiment_id]} ==")
                print(format_tables(tables))
                print()
            return 0
        if not args.experiment:
            print(_list_experiments())
            return 0
        runner, description = get_experiment(args.experiment)
        print(f"== {args.experiment}: {description} ==")
        with obs.trace(f"experiment.{args.experiment}", seed=args.seed):
            tables = runner(seed=args.seed)
        print(format_tables(tables))
        return 0


if __name__ == "__main__":
    sys.exit(main())
