"""Command-line entry point for the experiment harness.

.. code-block:: console

    python -m repro.experiments            # list all experiments
    python -m repro.experiments e05        # run one experiment
    python -m repro.experiments e05 --seed 7
    python -m repro.experiments --all      # run everything in order
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import all_experiments, format_tables, get_experiment


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id, (_, description) in sorted(all_experiments().items()):
        lines.append(f"  {experiment_id}  {description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the EXPERIMENTS.md reproduction harness.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment id, e.g. e03")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    args = parser.parse_args(argv)

    if args.all:
        for experiment_id, (runner, description) in sorted(all_experiments().items()):
            print(f"== {experiment_id}: {description} ==")
            print(format_tables(runner(seed=args.seed)))
            print()
        return 0
    if not args.experiment:
        print(_list_experiments())
        return 0
    runner, description = get_experiment(args.experiment)
    print(f"== {args.experiment}: {description} ==")
    print(format_tables(runner(seed=args.seed)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
