"""E7 — full-ranking aggregation factor 2 (Theorem 11 / Corollary 32).

For full-ranking inputs, a refinement of the median-induced ranking is
within factor 2 of the optimal full-ranking footrule aggregation — the
answer to the open question of Dwork et al. [8] / Fagin et al. [11]. The
exact optimum here is computable in polynomial time via minimum-cost
matching, so this experiment scales beyond brute force: it reports the
measured ratio of median aggregation (and Borda, for contrast) to the
matching optimum across domain sizes and noise levels.
"""

from __future__ import annotations

from repro.aggregate.baselines import borda
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.median import median_full_ranking
from repro.aggregate.objective import total_distance
from repro.experiments.runner import Table, register
from repro.generators.mallows import mallows_full_ranking
from repro.generators.random import random_full_ranking, resolve_rng


@register("e07", "median full-ranking aggregation vs matching optimum (Theorem 11)")
def run(
    seed: int = 0,
    sizes: tuple[int, ...] = (10, 20, 40),
    m: int = 7,
    trials: int = 10,
    phi: float = 0.5,
) -> list[Table]:
    """Run E7; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    for n in sizes:
        for regime in ("uniform", f"mallows(phi={phi})"):
            median_ratios = []
            borda_ratios = []
            for _ in range(trials):
                if regime == "uniform":
                    rankings = [random_full_ranking(n, rng) for _ in range(m)]
                else:
                    reference = list(range(n))
                    rankings = [
                        mallows_full_ranking(reference, phi, rng) for _ in range(m)
                    ]
                _, optimum = optimal_footrule_aggregation(rankings)
                if optimum == 0:
                    continue
                median_cost = total_distance(
                    median_full_ranking(rankings), rankings, "f_prof"
                )
                borda_cost = total_distance(borda(rankings), rankings, "f_prof")
                median_ratios.append(median_cost / optimum)
                borda_ratios.append(borda_cost / optimum)
            rows.append(
                {
                    "n": n,
                    "regime": regime,
                    "median_mean": sum(median_ratios) / len(median_ratios),
                    "median_max": max(median_ratios),
                    "borda_mean": sum(borda_ratios) / len(borda_ratios),
                    "borda_max": max(borda_ratios),
                    "proved_median_bound": 2.0,
                }
            )
    table = Table(
        title=f"E7: full-ranking aggregation ratio vs matching optimum (m={m})",
        columns=(
            "n",
            "regime",
            "median_mean",
            "median_max",
            "borda_mean",
            "borda_max",
            "proved_median_bound",
        ),
        rows=tuple(rows),
        notes="Theorem 11: median_max must be <= 2; observed values are near-optimal.",
    )
    return [table]
