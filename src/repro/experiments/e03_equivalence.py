"""E3 — equivalence constants between the four metrics (Theorem 7).

Theorem 7 proves ``K_Haus <= F_Haus <= 2 K_Haus`` (4),
``K_prof <= F_prof <= 2 K_prof`` (5), and
``K_prof <= K_Haus <= 2 K_prof`` (6). This experiment measures the
observed ratio distribution of each bound across three workload regimes
(few ties, heavy ties, top-k-like), checking that every sample respects
the proved constants and reporting how tight the constants are in
practice.
"""

from __future__ import annotations

from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, random_top_k, resolve_rng
from repro.metrics.equivalence import summarize_ratios

_REGIMES: tuple[tuple[str, float], ...] = (
    ("light ties (tie_bias=0.2)", 0.2),
    ("heavy ties (tie_bias=0.8)", 0.8),
)


def _pairs_for_regime(regime: str, tie_bias: float, n: int, samples: int, rng):
    for _ in range(samples):
        if regime == "top-k lists":
            k = max(1, n // 4)
            yield random_top_k(n, k, rng), random_top_k(n, k, rng)
        else:
            yield (
                random_bucket_order(n, rng, tie_bias=tie_bias),
                random_bucket_order(n, rng, tie_bias=tie_bias),
            )


@register("e03", "Theorem 7 equivalence-constant measurement")
def run(seed: int = 0, n: int = 30, samples: int = 80) -> list[Table]:
    """Run E3; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    tables: list[Table] = []
    regimes = [*_REGIMES, ("top-k lists", 0.0)]
    for regime, tie_bias in regimes:
        summaries = summarize_ratios(
            _pairs_for_regime(regime, tie_bias, n, samples, rng)
        )
        rows = [
            {
                "bound": f"{s.lower_metric} <= {s.upper_metric} <= {s.proved_factor}x",
                "min_ratio": s.min_ratio,
                "mean_ratio": s.mean_ratio,
                "max_ratio": s.max_ratio,
                "proved_max": s.proved_factor,
                "within_bounds": s.within_bounds,
                "samples": s.samples,
            }
            for s in summaries
        ]
        tables.append(
            Table(
                title=f"E3: metric ratios, {regime}, n={n}",
                columns=(
                    "bound",
                    "min_ratio",
                    "mean_ratio",
                    "max_ratio",
                    "proved_max",
                    "within_bounds",
                    "samples",
                ),
                rows=tuple(rows),
                notes="all ratios must lie in [1, proved_max]; Theorem 7 is tight but rarely saturated.",
            )
        )
    return tables
