"""Experiment runners reproducing every claim of the paper.

Each experiment ``e01`` ... ``e16`` is a module exposing
``run(seed=0, **params) -> list[Table]`` and registering itself with the
:mod:`repro.experiments.runner` registry. Run from the command line:

.. code-block:: console

    python -m repro.experiments            # list experiments
    python -m repro.experiments e03        # run one
    python -m repro.experiments --all      # run everything

EXPERIMENTS.md indexes the experiments against the paper's theorems and
records one captured run.
"""

from repro.experiments.runner import (
    EXPERIMENTS,
    Table,
    all_experiments,
    format_table,
    format_tables,
    get_experiment,
)

__all__ = [
    "Table",
    "format_table",
    "format_tables",
    "EXPERIMENTS",
    "get_experiment",
    "all_experiments",
]
