"""E16 — robustness of median aggregation to outlier voters (§1).

The introduction justifies the median over the mean with one sentence:
"median is clearly robust, since it mitigates the effect of outliers."
This experiment makes the claim quantitative. A profile contains honest
voters (bucketized Mallows noise around a ground truth) plus a growing
fraction of adversarial voters who submit the *reversed* ground truth;
we measure how far each aggregate drifts from the truth (normalized
Kendall distance) as the adversarial fraction grows.

Expected shape — the statistical breakdown-point story: the median
aggregate stays essentially pinned to the truth until the adversaries
approach half the profile, then snaps; Borda (the mean) drifts roughly
linearly from the first adversary onward.
"""

from __future__ import annotations

from repro.aggregate.baselines import borda
from repro.aggregate.median import median_full_ranking
from repro.core.partial_ranking import PartialRanking
from repro.experiments.runner import Table, register
from repro.generators.mallows import bucketized_mallows
from repro.generators.random import resolve_rng
from repro.metrics.normalized import normalized_kendall


@register("e16", "robustness to outlier voters: median vs Borda (§1 claim)")
def run(
    seed: int = 0,
    n: int = 30,
    honest: int = 12,
    phi: float = 0.25,
    trials: int = 10,
) -> list[Table]:
    """Run E16; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    truth_order = list(range(n))
    truth = PartialRanking.from_sequence(truth_order)
    adversarial_vote = truth.reverse()

    rows = []
    for adversaries in range(0, honest + 1, 2):
        median_errors = []
        borda_errors = []
        for _ in range(trials):
            profile = [
                bucketized_mallows(truth_order, phi, rng, max_bucket=4)
                for _ in range(honest)
            ]
            profile.extend([adversarial_vote] * adversaries)
            median_errors.append(
                normalized_kendall(truth, median_full_ranking(profile))
            )
            borda_errors.append(normalized_kendall(truth, borda(profile)))
        fraction = adversaries / (honest + adversaries)
        rows.append(
            {
                "adversaries": adversaries,
                "adversarial_fraction": fraction,
                "median_error": sum(median_errors) / len(median_errors),
                "borda_error": sum(borda_errors) / len(borda_errors),
            }
        )
    table = Table(
        title=(
            f"E16: error vs truth under adversarial voters "
            f"(n={n}, {honest} honest Mallows voters, phi={phi})"
        ),
        columns=("adversaries", "adversarial_fraction", "median_error", "borda_error"),
        rows=tuple(rows),
        notes=(
            "error = normalized K_prof to the ground truth (1.0 = full reversal). "
            "median holds near 0 until the adversarial fraction nears 1/2 (its "
            "breakdown point); Borda drifts from the first outlier — the §1 claim."
        ),
    )
    return [table]
