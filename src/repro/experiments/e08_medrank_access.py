"""E8 — sequential-access efficiency of MEDRANK (§6, [11], [12]).

"Our algorithm reads essentially as few elements of each partial ranking
as are necessary to determine the winner(s)." This experiment measures:

* sorted-access **depth** and **saturation** (fraction of the input read)
  for the majority-stopping MEDRANK and for the certified NRA variant,
  across correlated (Mallows), uncorrelated (random), and database
  (attribute-sort) workloads;
* **quality**: whether MEDRANK's winner matches a true median-minimal
  item (the NRA variant is certified by construction, checked anyway).

Expected shape: on correlated inputs the winner is found after reading a
tiny prefix (depth ≪ n); uncorrelated inputs force deeper reads —
instance optimality means matching the necessary depth, not a fixed one.
"""

from __future__ import annotations

from repro.aggregate.median import median_scores
from repro.aggregate.medrank import medrank, nra_median
from repro.experiments.runner import Table, register
from repro.generators.workloads import (
    Workload,
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)

_ABS_TOL = 1e-9


def _workloads(n: int, m: int, seed: int) -> list[Workload]:
    return [
        mallows_profile_workload(n, m, phi=0.2, seed=seed, max_bucket=max(2, n // 10)),
        mallows_profile_workload(n, m, phi=0.8, seed=seed, max_bucket=max(2, n // 10)),
        random_profile_workload(n, m, seed=seed, tie_bias=0.5),
        db_profile_workload(n, seed=seed, catalog="restaurants"),
        db_profile_workload(n, seed=seed, catalog="flights"),
        db_profile_workload(n, seed=seed, catalog="bibliography"),
    ]


@register("e08", "MEDRANK / NRA sorted-access cost and winner quality")
def run(seed: int = 0, n: int = 200, m: int = 4, k: int = 3) -> list[Table]:
    """Run E8; see the module docstring and EXPERIMENTS.md."""
    rows = []
    for workload in _workloads(n, m, seed):
        scores = median_scores(list(workload.rankings))
        best_median = min(scores.values())

        majority = medrank(list(workload.rankings), k=k)
        certified = nra_median(list(workload.rankings), k=k)
        winner_median = scores[majority.winners[0]]
        certified_median = scores[certified.winners[0]]
        rows.append(
            {
                "workload": workload.name,
                "medrank_depth": majority.access_log.depth,
                "medrank_saturation": majority.access_log.saturation,
                "nra_depth": certified.access_log.depth,
                "nra_saturation": certified.access_log.saturation,
                "medrank_winner_gap": winner_median - best_median,
                "nra_winner_gap": certified_median - best_median,
            }
        )
    table = Table(
        title=f"E8: sorted-access cost to find top-{k} of {n} items ({m}+ lists)",
        columns=(
            "workload",
            "medrank_depth",
            "medrank_saturation",
            "nra_depth",
            "nra_saturation",
            "medrank_winner_gap",
            "nra_winner_gap",
        ),
        rows=tuple(rows),
        notes=(
            "saturation = depth/n (fraction of each list read); nra_winner_gap is 0 by "
            "construction; medrank_winner_gap measures the majority rule's slack on bucket inputs."
        ),
    )
    return [table]
