"""E1 — metric regimes of ``K^(p)`` (Proposition 13, §A.2).

The paper proves:

* ``p = 0``: not even a distance measure (distinct rankings at distance 0);
* ``0 < p < 1/2``: a near metric — triangle inequality fails, but ``K^(p)``
  is within a factor ``p'/p`` of every ``K^(p')``;
* ``1/2 <= p <= 1``: a metric.

This experiment (a) replays the paper's two-element counterexample, and
(b) sweeps ``p`` over random bucket-order samples, counting regularity and
triangle violations. The expected shape: violations only for ``p < 1/2``,
and the worst triangle ratio approaching ``1 / (2p)``.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.axioms import paper_counterexample_rankings
from repro.metrics.kendall import kendall

_PENALTIES = (0.0, 0.1, 0.25, 0.4, 0.5, 0.75, 1.0)
_ABS_TOL = 1e-9


def _counterexample_table() -> Table:
    tau_1, tau_2, tau_3 = paper_counterexample_rankings()
    rows = []
    for p in _PENALTIES:
        d12 = kendall(tau_1, tau_2, p)
        d23 = kendall(tau_2, tau_3, p)
        d13 = kendall(tau_1, tau_3, p)
        rows.append(
            {
                "p": p,
                "d(t1,t2)": d12,
                "d(t2,t3)": d23,
                "d(t1,t3)": d13,
                "triangle_holds": d13 <= d12 + d23 + _ABS_TOL,
                "regular": d12 > _ABS_TOL,
            }
        )
    return Table(
        title="E1a: paper's 2-element counterexample (t1: a<b, t2: a~b, t3: b<a)",
        columns=("p", "d(t1,t2)", "d(t2,t3)", "d(t1,t3)", "triangle_holds", "regular"),
        rows=tuple(rows),
        notes="Prop 13: regular fails at p=0; triangle fails exactly for 0<p<1/2.",
    )


def _sweep_table(seed: int, n: int, samples: int) -> Table:
    rng = resolve_rng(seed)
    rankings = [random_bucket_order(n, rng, tie_bias=0.6) for _ in range(samples)]
    rows = []
    for p in _PENALTIES:
        regularity_violations = 0
        for sigma, tau in combinations(rankings, 2):
            if sigma != tau and kendall(sigma, tau, p) <= _ABS_TOL:  # repro: noqa[RP009]
                regularity_violations += 1
        cache = {
            (i, j): kendall(rankings[i], rankings[j], p)  # repro: noqa[RP009]
            for i, j in product(range(samples), repeat=2)
            if i < j
        }

        def dist(i: int, j: int) -> float:
            return 0.0 if i == j else cache[(min(i, j), max(i, j))]

        triangle_violations = 0
        worst_ratio = 1.0
        for i, j, k in product(range(samples), repeat=3):
            if len({i, j, k}) != 3:
                continue
            through = dist(i, j) + dist(j, k)
            if dist(i, k) > through + _ABS_TOL:
                triangle_violations += 1
                if through > 0:
                    worst_ratio = max(worst_ratio, dist(i, k) / through)
        rows.append(
            {
                "p": p,
                "regularity_violations": regularity_violations,
                "triangle_violations": triangle_violations,
                "worst_triangle_ratio": worst_ratio,
                "bound_1_over_2p": float("inf") if p == 0 else 1 / (2 * p),
            }
        )
    return Table(
        title=f"E1b: axiom sweep over {samples} random bucket orders (n={n})",
        columns=(
            "p",
            "regularity_violations",
            "triangle_violations",
            "worst_triangle_ratio",
            "bound_1_over_2p",
        ),
        rows=tuple(rows),
        notes="worst observed d(x,z)/(d(x,y)+d(y,z)) never exceeds 1/(2p), the near-metric constant.",
    )


@register("e01", "K^(p) penalty-parameter regimes (Proposition 13)")
def run(seed: int = 0, n: int = 8, samples: int = 24) -> list[Table]:
    """Run E1; see the module docstring and EXPERIMENTS.md."""
    return [_counterexample_table(), _sweep_table(seed, n, samples)]
