"""E5 — median top-k aggregation approximation (Theorem 9 / Corollary 30).

Theorem 9: the top-k list built from median scores is within factor 3 of
the best possible top-k list under ``sum_i F_prof``. This experiment
computes true optima by exhaustive enumeration on small domains and
reports the measured approximation ratio for the median top-k output and,
for contrast, a Borda-derived top-k. The shape to expect: every median
ratio <= 3, typical ratios close to 1, and median never much worse than
(usually as good as) Borda while carrying a guarantee Borda lacks.
"""

from __future__ import annotations

from repro.aggregate.exact import optimal_top_k
from repro.aggregate.baselines import borda
from repro.aggregate.median import median_top_k
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng


def _borda_top_k(rankings, k: int) -> PartialRanking:
    order = borda(rankings).items_in_order()
    return PartialRanking.top_k(order[:k], order)


@register("e05", "median top-k aggregation vs. exact optimum (Theorem 9)")
def run(
    seed: int = 0,
    n: int = 6,
    k: int = 2,
    m: int = 5,
    trials: int = 30,
) -> list[Table]:
    """Run E5; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    median_ratios = []
    borda_ratios = []
    for _ in range(trials):
        rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
        _, optimum = optimal_top_k(rankings, k, metric="f_prof")
        median_cost = total_distance(median_top_k(rankings, k), rankings, "f_prof")
        borda_cost = total_distance(_borda_top_k(rankings, k), rankings, "f_prof")
        if optimum > 0:
            median_ratios.append(median_cost / optimum)
            borda_ratios.append(borda_cost / optimum)

    def summary(name: str, ratios: list[float]) -> dict:
        return {
            "aggregator": name,
            "trials": len(ratios),
            "min_ratio": min(ratios),
            "mean_ratio": sum(ratios) / len(ratios),
            "max_ratio": max(ratios),
            "proved_bound": 3.0 if name == "median" else float("nan"),
        }

    table = Table(
        title=f"E5: top-{k} aggregation ratio vs. exact optimum (n={n}, m={m})",
        columns=("aggregator", "trials", "min_ratio", "mean_ratio", "max_ratio", "proved_bound"),
        rows=(summary("median", median_ratios), summary("borda", borda_ratios)),
        notes="median max_ratio must be <= 3 (Theorem 9); typical values sit near 1.",
    )
    return [table]
