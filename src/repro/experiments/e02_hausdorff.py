"""E2 — Hausdorff characterization correctness (Theorem 5, Proposition 6).

The Hausdorff metrics are max–min expressions over the (exponential) sets
of full refinements. Theorem 5 reduces them to two constructible witness
pairs; Proposition 6 gives a closed form for ``K_Haus``. This experiment
verifies agreement exhaustively on every pair of bucket orders of a small
domain, then on random samples, reporting exact match counts — the
reproduction of the paper's central computational result.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

from repro.aggregate.exact import all_partial_rankings
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    footrule_hausdorff_bruteforce,
    kendall_hausdorff,
    kendall_hausdorff_bruteforce,
    kendall_hausdorff_counts,
)

_ABS_TOL = 1e-9


def _exhaustive_table(n: int) -> Table:
    rankings = list(all_partial_rankings(list(range(n))))
    pairs_checked = 0
    k_matches = 0
    f_matches = 0
    closed_form_matches = 0
    for sigma, tau in combinations_with_replacement(rankings, 2):
        pairs_checked += 1
        kh = kendall_hausdorff(sigma, tau)
        fh = footrule_hausdorff(sigma, tau)
        if abs(kh - kendall_hausdorff_bruteforce(sigma, tau)) <= _ABS_TOL:
            k_matches += 1
        if abs(fh - footrule_hausdorff_bruteforce(sigma, tau)) <= _ABS_TOL:
            f_matches += 1
        if kh == kendall_hausdorff_counts(sigma, tau):
            closed_form_matches += 1
    return Table(
        title=f"E2a: exhaustive check over all bucket-order pairs, n={n}",
        columns=("pairs", "K_Haus_thm5_ok", "F_Haus_thm5_ok", "K_Haus_prop6_ok"),
        rows=(
            {
                "pairs": pairs_checked,
                "K_Haus_thm5_ok": k_matches,
                "F_Haus_thm5_ok": f_matches,
                "K_Haus_prop6_ok": closed_form_matches,
            },
        ),
        notes="every column must equal `pairs`: the characterizations are exact.",
    )


def _random_table(seed: int, n: int, samples: int) -> Table:
    rng = resolve_rng(seed)
    k_matches = 0
    f_matches = 0
    for _ in range(samples):
        sigma = random_bucket_order(n, rng, tie_bias=rng.random())
        tau = random_bucket_order(n, rng, tie_bias=rng.random())
        kh = kendall_hausdorff(sigma, tau)
        if abs(kh - kendall_hausdorff_bruteforce(sigma, tau)) <= _ABS_TOL:
            k_matches += 1
        fh = footrule_hausdorff(sigma, tau)
        if abs(fh - footrule_hausdorff_bruteforce(sigma, tau)) <= _ABS_TOL:
            f_matches += 1
    return Table(
        title=f"E2b: random pairs, n={n}, {samples} samples",
        columns=("samples", "K_Haus_ok", "F_Haus_ok"),
        rows=({"samples": samples, "K_Haus_ok": k_matches, "F_Haus_ok": f_matches},),
    )


@register("e02", "Hausdorff metrics via Theorem 5 / Proposition 6 vs. brute force")
def run(seed: int = 0, exhaustive_n: int = 4, random_n: int = 7, samples: int = 60) -> list[Table]:
    """Run E2; see the module docstring and EXPERIMENTS.md."""
    return [_exhaustive_table(exhaustive_n), _random_table(seed, random_n, samples)]
