"""E14 — median aggregation vs. the exact Kemeny optimum (footnote 4).

Footnote 4 frames median aggregation as the *non-trivial yet
computationally simple* constant-factor algorithm for the Kendall
aggregation problem. With the Held–Karp solver we can compute the exact
``K^(1/2)`` optimum up to n ≈ 14 — past the factorial brute force — and
measure the real approximation ratios of median, Borda, best-input, and
the pairwise-majority lower bound, together with solve times.
"""

from __future__ import annotations

import time

from repro.aggregate.baselines import best_input, borda
from repro.aggregate.kemeny import kemeny_lower_bound, kemeny_optimal
from repro.aggregate.median import median_full_ranking
from repro.aggregate.objective import total_distance
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng


@register("e14", "median vs exact Kemeny optimum (Held-Karp), K_prof objective")
def run(
    seed: int = 0,
    sizes: tuple[int, ...] = (6, 9, 12),
    m: int = 5,
    trials: int = 8,
) -> list[Table]:
    """Run E14; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    for n in sizes:
        median_ratios: list[float] = []
        borda_ratios: list[float] = []
        best_input_ratios: list[float] = []
        bound_gaps: list[float] = []
        exact_seconds = 0.0
        for _ in range(trials):
            rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
            start = time.perf_counter()
            _, optimum = kemeny_optimal(rankings)
            exact_seconds += time.perf_counter() - start
            if optimum == 0:
                continue
            median_ratios.append(
                total_distance(median_full_ranking(rankings), rankings, "k_prof")
                / optimum
            )
            borda_ratios.append(
                total_distance(borda(rankings), rankings, "k_prof") / optimum
            )
            best_input_ratios.append(
                total_distance(best_input(rankings, "k_prof"), rankings, "k_prof")
                / optimum
            )
            bound_gaps.append(optimum / max(kemeny_lower_bound(rankings), 1e-12))
        rows.append(
            {
                "n": n,
                "median_mean": sum(median_ratios) / len(median_ratios),
                "median_max": max(median_ratios),
                "borda_mean": sum(borda_ratios) / len(borda_ratios),
                "best_input_mean": sum(best_input_ratios) / len(best_input_ratios),
                "optimum_over_lower_bound": sum(bound_gaps) / len(bound_gaps),
                "exact_seconds_total": exact_seconds,
            }
        )
    table = Table(
        title=f"E14: K_prof aggregation ratio vs exact Kemeny optimum (m={m})",
        columns=(
            "n",
            "median_mean",
            "median_max",
            "borda_mean",
            "best_input_mean",
            "optimum_over_lower_bound",
            "exact_seconds_total",
        ),
        rows=tuple(rows),
        notes=(
            "exact solve time grows as 2^n while median stays O(nm + n log n); "
            "median's measured ratio stays near 1, far inside its proved constant. "
            "best-input returns a PARTIAL ranking, so its ratio can dip below 1 "
            "against the best FULL ranking."
        ),
    )
    return [table]
