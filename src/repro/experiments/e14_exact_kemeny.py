"""E14 — median aggregation vs. the exact Kemeny optimum (footnote 4).

Footnote 4 frames median aggregation as the *non-trivial yet
computationally simple* constant-factor algorithm for the Kendall
aggregation problem. With the Held–Karp solver we can compute the exact
``K^(1/2)`` optimum up to n ≈ 14 — past the factorial brute force — and
measure the real approximation ratios of median, Borda, best-input, and
the pairwise-majority lower bound, together with solve times.

A second table measures the SCC-condensed solver
(:func:`repro.aggregate.decompose.kemeny_decomposed`) on sparse-conflict
banded profiles far beyond the monolithic n ≤ 16 cap: component-size
histogram, certified-exact rate, and solve time per instance.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.aggregate.baselines import best_input, borda
from repro.aggregate.decompose import kemeny_decomposed
from repro.aggregate.kemeny import kemeny_lower_bound, kemeny_optimal
from repro.aggregate.median import median_full_ranking
from repro.aggregate.objective import total_distance
from repro.experiments.runner import Table, register
from repro.generators.random import random_bucket_order, resolve_rng
from repro.generators.workloads import banded_profile_workload


@register("e14", "median vs exact Kemeny optimum (Held-Karp), K_prof objective")
def run(
    seed: int = 0,
    sizes: tuple[int, ...] = (6, 9, 12),
    m: int = 5,
    trials: int = 8,
    banded_sizes: tuple[int, ...] = (40, 80, 120),
    band: int = 6,
) -> list[Table]:
    """Run E14; see the module docstring and EXPERIMENTS.md."""
    rng = resolve_rng(seed)
    rows = []
    for n in sizes:
        median_ratios: list[float] = []
        borda_ratios: list[float] = []
        best_input_ratios: list[float] = []
        bound_gaps: list[float] = []
        exact_seconds = 0.0
        for _ in range(trials):
            rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
            start = time.perf_counter()
            _, optimum = kemeny_optimal(rankings)
            exact_seconds += time.perf_counter() - start
            if optimum == 0:
                continue
            median_ratios.append(
                total_distance(median_full_ranking(rankings), rankings, "k_prof")
                / optimum
            )
            borda_ratios.append(
                total_distance(borda(rankings), rankings, "k_prof") / optimum
            )
            best_input_ratios.append(
                total_distance(best_input(rankings, "k_prof"), rankings, "k_prof")
                / optimum
            )
            bound_gaps.append(optimum / max(kemeny_lower_bound(rankings), 1e-12))
        rows.append(
            {
                "n": n,
                "median_mean": sum(median_ratios) / len(median_ratios),
                "median_max": max(median_ratios),
                "borda_mean": sum(borda_ratios) / len(borda_ratios),
                "best_input_mean": sum(best_input_ratios) / len(best_input_ratios),
                "optimum_over_lower_bound": sum(bound_gaps) / len(bound_gaps),
                "exact_seconds_total": exact_seconds,
            }
        )
    table = Table(
        title=f"E14: K_prof aggregation ratio vs exact Kemeny optimum (m={m})",
        columns=(
            "n",
            "median_mean",
            "median_max",
            "borda_mean",
            "best_input_mean",
            "optimum_over_lower_bound",
            "exact_seconds_total",
        ),
        rows=tuple(rows),
        notes=(
            "exact solve time grows as 2^n while median stays O(nm + n log n); "
            "median's measured ratio stays near 1, far inside its proved constant. "
            "best-input returns a PARTIAL ranking, so its ratio can dip below 1 "
            "against the best FULL ranking."
        ),
    )

    banded_rows = []
    for n in banded_sizes:
        histogram: Counter[int] = Counter()
        exact_count = 0
        median_ratios = []
        decompose_seconds = 0.0
        for trial in range(trials):
            workload = banded_profile_workload(
                n, m, band=band, seed=rng.getrandbits(32), tie_bias=0.3
            )
            start = time.perf_counter()
            result = kemeny_decomposed(workload.rankings)
            decompose_seconds += time.perf_counter() - start
            histogram.update(len(component) for component in result.components)
            exact_count += result.exact
            if result.exact and result.objective > 0:
                median_ratios.append(
                    total_distance(
                        median_full_ranking(workload.rankings),
                        workload.rankings,
                        "k_prof",
                    )
                    / result.objective
                )
        banded_rows.append(
            {
                "n": n,
                "band": band,
                "certified_exact_rate": exact_count / trials,
                "component_histogram": " ".join(
                    f"{size}x{count}" for size, count in sorted(histogram.items())
                ),
                "median_mean": (
                    sum(median_ratios) / len(median_ratios) if median_ratios else 1.0
                ),
                "decompose_seconds_total": decompose_seconds,
            }
        )
    banded_table = Table(
        title=(
            f"E14: SCC-condensed exact Kemeny on banded profiles "
            f"(m={m}, band={band})"
        ),
        columns=(
            "n",
            "band",
            "certified_exact_rate",
            "component_histogram",
            "median_mean",
            "decompose_seconds_total",
        ),
        rows=tuple(banded_rows),
        notes=(
            "disagreement confined to bands keeps every strongly-connected "
            "component at most band items, so the per-component Held-Karp DP "
            "certifies the global optimum (exact rate 1.0) at sizes the "
            "monolithic solver refuses outright; the histogram entries are "
            "component_size x count over all trials."
        ),
    )
    return [table, banded_table]
