"""Command-line interface: compare and aggregate ranking files.

.. code-block:: console

    python -m repro compare a.json b.json
    python -m repro compare profile.csv --pairwise
    python -m repro aggregate profile.json --algorithm median --output full
    python -m repro aggregate profile.csv --output topk --k 5
    python -m repro experiments e03
    python -m repro verify --rounds 50 --seed 0
    python -m repro obs summarize trace.jsonl
    python -m repro serve --port 8321

Ranking files are JSON (single ranking or profile) or long-format CSV —
see :mod:`repro.io` for the formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.aggregate.baselines import best_input, borda, markov_chain_mc4
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.median import MedianAggregator
from repro.aggregate.objective import METRICS, total_distance
from repro.core.partial_ranking import PartialRanking
from repro.errors import ReproError
from repro.io import (
    SerializationError,
    load_profile_csv,
    load_profile_json,
    load_ranking_json,
    ranking_to_dict,
)

__all__ = ["main", "build_parser"]


def _load_any(path: str) -> dict[str, PartialRanking]:
    """Load a profile from JSON (single ranking or profile) or CSV."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return load_profile_csv(path)
    # JSON: try a profile first, fall back to a single ranking
    try:
        return load_profile_json(path)
    except SerializationError:
        return {"ranking": load_ranking_json(path)}


def _cmd_compare(args: argparse.Namespace) -> int:
    if len(args.files) == 1:
        profile = _load_any(args.files[0])
    else:
        profile = {}
        for path in args.files:
            for name, sigma in _load_any(path).items():
                profile[f"{Path(path).stem}:{name}" if name in profile else name] = sigma
    names = list(profile)
    if len(names) < 2:
        print("compare needs at least two rankings", file=sys.stderr)
        return 2
    metrics = list(METRICS) if args.metric == "all" else [args.metric]
    print(f"{'pair':<40} " + " ".join(f"{m:>10}" for m in metrics))
    pairs = (
        [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        if args.pairwise or len(names) > 2
        else [(names[0], names[1])]
    )
    for a, b in pairs:
        values = [METRICS[m](profile[a], profile[b]) for m in metrics]
        rendered = " ".join(f"{v:>10.3f}" for v in values)
        print(f"{a} vs {b:<25} {rendered}")
    return 0


_ALGORITHMS = ("median", "borda", "mc4", "best-input", "matching")


def _cmd_aggregate(args: argparse.Namespace) -> int:
    profile: dict[str, PartialRanking] = {}
    for path in args.files:
        profile.update(_load_any(path))
    rankings = tuple(profile.values())
    if not rankings:
        print("no rankings found", file=sys.stderr)
        return 2

    if args.algorithm == "median":
        aggregator = MedianAggregator(rankings)
        if args.output == "full":
            result = aggregator.full_ranking()
        elif args.output == "partial":
            result = aggregator.partial_ranking()
        else:
            result = aggregator.top_k(args.k)
    elif args.algorithm == "borda":
        result = borda(rankings)
    elif args.algorithm == "mc4":
        result = markov_chain_mc4(rankings)
    elif args.algorithm == "best-input":
        result = best_input(rankings)
    else:
        result, _ = optimal_footrule_aggregation(rankings)

    if args.json:
        json.dump(ranking_to_dict(result), sys.stdout, indent=2)
        print()
    else:
        print(f"aggregated {len(rankings)} rankings with {args.algorithm}:")
        print(f"  {result}")
        for metric in METRICS:
            print(f"  total {metric}: {total_distance(result, list(rankings), metric):.3f}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = []
    if args.experiment:
        argv.append(args.experiment)
    if args.all:
        argv.append("--all")
    argv.extend(["--seed", str(args.seed)])
    if args.jobs is not None:
        argv.extend(["--jobs", str(args.jobs)])
    if args.trace:
        argv.extend(["--trace", args.trace])
    return experiments_main(argv)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.cli import main as verify_main

    forwarded = list(args.verify_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return verify_main(forwarded)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.cli import main as obs_main

    forwarded = list(args.obs_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return obs_main(forwarded)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import main as serve_main

    forwarded = list(args.serve_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return serve_main(forwarded)


def _delegate_remainder(argv: list[str] | None) -> list[str] | None:
    """Rewrite ``verify --flag ...`` / ``obs --flag ...`` for REMAINDER.

    argparse's REMAINDER refuses to start on an option-like token, so
    ``python -m repro verify --rounds 5`` would die with "unrecognized
    arguments"; inserting ``--`` after the subcommand makes the remainder
    unambiguous.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("verify", "obs", "serve") and "--" not in argv:
        return [argv[0], "--", *argv[1:]]
    return argv


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (compare / aggregate / experiments)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compare and aggregate rankings with ties (Fagin et al., PODS 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="distances between rankings")
    compare.add_argument("files", nargs="+", help="JSON/CSV ranking or profile files")
    compare.add_argument(
        "--metric", choices=["all", *METRICS], default="all", help="metric to report"
    )
    compare.add_argument(
        "--pairwise", action="store_true", help="all pairs, not just the first two"
    )
    compare.set_defaults(handler=_cmd_compare)

    aggregate = subparsers.add_parser("aggregate", help="aggregate a profile")
    aggregate.add_argument("files", nargs="+", help="JSON/CSV profile files")
    aggregate.add_argument("--algorithm", choices=_ALGORITHMS, default="median")
    aggregate.add_argument(
        "--output",
        choices=["full", "partial", "topk"],
        default="full",
        help="output shape (median algorithm only)",
    )
    aggregate.add_argument("--k", type=int, default=10, help="k for --output topk")
    aggregate.add_argument("--json", action="store_true", help="emit JSON")
    aggregate.set_defaults(handler=_cmd_aggregate)

    experiments = subparsers.add_parser("experiments", help="run EXPERIMENTS.md runners")
    experiments.add_argument("experiment", nargs="?", help="experiment id, e.g. e03")
    experiments.add_argument("--all", action="store_true")
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument("--jobs", type=int, default=None)
    experiments.add_argument(
        "--trace", metavar="OUT.JSONL", default=None, help="record spans to a trace file"
    )
    experiments.set_defaults(handler=_cmd_experiments)

    verify = subparsers.add_parser(
        "verify",
        help="differential/metamorphic fuzz verification (see python -m repro.verify)",
    )
    verify.add_argument(
        "verify_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.verify",
    )
    verify.set_defaults(handler=_cmd_verify)

    obs = subparsers.add_parser(
        "obs",
        help="inspect REPRO_TRACE trace files (see python -m repro.obs)",
    )
    obs.add_argument(
        "obs_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.obs",
    )
    obs.set_defaults(handler=_cmd_obs)

    serve = subparsers.add_parser(
        "serve",
        help="run the ranking HTTP/JSON service (see python -m repro.serve)",
    )
    serve.add_argument(
        "serve_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.serve",
    )
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(_delegate_remainder(argv))
    try:
        return args.handler(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
