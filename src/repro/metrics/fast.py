"""Array-based (numpy) pair counting — the large-n fast path.

A second, structurally different implementation of the pair classifier
behind ``K^(p)`` / ``K_prof`` / ``K_Haus``:

* per-ranking state comes from the dense arrays cached on
  :class:`~repro.core.partial_ranking.PartialRanking` (keyed by the interned
  :class:`~repro.core.codec.DomainCodec` of the domain), so repeated calls
  over a shared profile encode each ranking exactly once;
* tie counts fall out of run lengths of the lexicographically sorted
  ``(sigma, tau)`` bucket-index pairs;
* strict discordances are strict inversions of the ``tau`` bucket sequence
  after that sort, counted by a bottom-up merge whose *entire* per-level
  work is a handful of flat numpy calls — one ``searchsorted`` over the
  concatenated offset-keyed left runs classifies every cross-run pair of
  the level at once, with no Python-level loop over runs.

**Measured honestly** (see ``benchmarks/bench_batch.py`` and the committed
``BENCH_PR2.json``): since the per-run Python loop was eliminated, this
path beats the pure-Python Fenwick path in :mod:`repro.metrics.kendall`
from a few hundred items up — the measured crossover is n ≈ 250, the
inversion counter is ~3–4× faster at n = 100,000, and
:func:`pair_counts_large` beats :func:`~repro.metrics.kendall.pair_counts`
by ~4.4× there (``docs/PERFORMANCE.md`` has the full tables). Below the
crossover the Fenwick tree, sized by the *bucket count*, still wins; both
paths assert bit-for-bit equal counts in the test suite.
:func:`kendall_large` / :func:`kendall_hausdorff_large` are the drop-in
entry points; :func:`repro.metrics.batch.pairwise_distance_matrix` builds
the all-pairs layer on the same kernels.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.errors import InvalidRankingError
from repro.metrics.kendall import PairCounts
from repro._util import pairs

__all__ = [
    "count_inversions_array",
    "pair_counts_large",
    "kendall_large",
    "kendall_hausdorff_large",
]


def count_inversions_array(values: npt.ArrayLike) -> int:
    """Strict inversions of a 1-D integer/float array, fully vectorized.

    Bottom-up merge sort with no Python-level loop over runs: values are
    first dense-rank compressed to ``0..n-1``, padded with a sentinel to a
    power-of-two length, and then, at each merge level, every pair of
    adjacent runs is processed *simultaneously* — adding ``run_id * stride``
    to each element makes the concatenation of all left runs globally
    sorted, so a single flat ``searchsorted`` classifies every (left,
    right) cross-run pair of the level, and one axis-wise ``sort`` merges
    all runs for the next level. Equal values never count. O(n log² n)
    total work, all of it inside numpy.
    """
    a = np.asarray(values)
    n = int(a.size)
    if n < 2:
        return 0
    # dense-rank compression: int64 ranks in [0, n), ties share a rank
    order = np.argsort(a, kind="stable")
    ordered = a[order]
    boundary = np.empty(n, dtype=np.int64)
    boundary[0] = 0
    boundary[1:] = ordered[1:] != ordered[:-1]
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.cumsum(boundary)
    # pad to a power of two with a sentinel larger than every rank; the
    # sentinels form a suffix, so left runs only ever hold sentinels when
    # the matching right run is pure sentinel — they add no inversions
    size = 1 << (n - 1).bit_length()
    work = np.full(size, n, dtype=np.int64)
    work[:n] = ranks
    stride = n + 1  # > every rank and the sentinel: keys of distinct runs never collide
    total = 0
    width = 1
    while width < size:
        nblocks = size // (2 * width)
        blocks = work.reshape(nblocks, 2 * width)
        offsets = np.arange(nblocks, dtype=np.int64) * stride
        left = (blocks[:, :width] + offsets[:, None]).ravel()
        right = (blocks[:, width:] + offsets[:, None]).ravel()
        # for each right element: left elements of the SAME run <= it,
        # via one flat searchsorted over all runs of the level
        not_greater = np.searchsorted(left, right, side="right")
        not_greater -= np.repeat(np.arange(nblocks, dtype=np.int64) * width, width)
        total += int(nblocks * width * width - int(not_greater.sum()))
        # merge every run pair at once: each 2*width block sorts in place
        work = np.sort(blocks, axis=1).reshape(-1)
        width *= 2
    return total


def _bucket_index_arrays(
    sigma: PartialRanking, tau: PartialRanking
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    codec = DomainCodec.for_profile((sigma, tau))  # validates the common domain
    x, _ = sigma.dense_arrays(codec)
    y, _ = tau.dense_arrays(codec)
    return x, y


def _tied_pairs_in_runs(
    xs: npt.NDArray[np.int64], ys: npt.NDArray[np.int64]
) -> int:
    """Pairs inside maximal runs of equal ``(x, y)`` values (arrays sorted)."""
    n = len(xs)
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = (xs[1:] != xs[:-1]) | (ys[1:] != ys[:-1])
    run_lengths = np.diff(np.append(np.flatnonzero(change), n))
    return int((run_lengths * (run_lengths - 1) // 2).sum())


def pair_counts_large(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    """Vectorized equivalent of :func:`repro.metrics.kendall.pair_counts`.

    Kept as a thin tracing wrapper over :func:`_pair_counts_large_impl`
    so ``benchmarks/bench_obs.py`` can measure the disabled-mode overhead
    of the instrumentation as (wrapper − impl) directly.
    """
    if not obs.enabled():
        return _pair_counts_large_impl(sigma, tau)
    n = sum(sigma.type)
    with obs.trace("metrics.fast.pair_counts_large", n=n):
        obs.add("metrics.pairs", pairs(n))
        return _pair_counts_large_impl(sigma, tau)


def _pair_counts_large_impl(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    x, y = _bucket_index_arrays(sigma, tau)
    n = len(x)
    total = pairs(n)

    tied_sigma = sum(pairs(size) for size in sigma.type)
    tied_tau = sum(pairs(size) for size in tau.type)

    # lexicographic sort by (x asc, y asc): within equal x, y is ascending,
    # so strict inversions of the y sequence are exactly the pairs strict
    # in x and strictly reversed in y, and runs of equal (x, y) are the
    # pairs tied in both rankings
    order = np.lexsort((y, x))
    xs, ys = x[order], y[order]
    tied_both = _tied_pairs_in_runs(xs, ys)
    discordant = count_inversions_array(ys)

    tied_first_only = tied_sigma - tied_both
    tied_second_only = tied_tau - tied_both
    concordant = total - discordant - tied_first_only - tied_second_only - tied_both
    return PairCounts(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_second_only=tied_second_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def kendall_large(sigma: PartialRanking, tau: PartialRanking, p: float = 0.5) -> float:
    """``K^(p)`` via the vectorized pair counter (large domains)."""
    if not 0.0 <= p <= 1.0:
        raise InvalidRankingError(f"penalty parameter p={p} outside [0, 1]")
    return pair_counts_large(sigma, tau).kendall(p)


def kendall_hausdorff_large(sigma: PartialRanking, tau: PartialRanking) -> int:
    """``K_Haus`` via the vectorized pair counter (Proposition 6)."""
    return pair_counts_large(sigma, tau).kendall_hausdorff()
