"""Array-based (numpy) pair counting — an independent large-n implementation.

A second, structurally different implementation of the pair classifier
behind ``K^(p)`` / ``K_prof`` / ``K_Haus``:

* tie counts from ``np.unique`` on bucket-index arrays,
* strict discordances as strict inversions of the ``tau`` bucket sequence
  after a lexicographic ``(sigma, tau)`` sort, counted with a bottom-up
  merge sort whose per-merge work is ``np.searchsorted`` calls.

**Measured honestly** (see ``bench_ablations.py``): the pure-Python
Fenwick path in :mod:`repro.metrics.kendall` remains faster even at
n = 100,000 — its tree is sized by the *bucket count*, while the merge
here still pays one Python-level loop iteration per run pair. This module
therefore earns its place as an independent correctness cross-check at
scales where the O(n²) naive oracle is unusable (the tests assert
bit-for-bit equality of the counts), rather than as a speedup.
:func:`kendall_large` / :func:`kendall_hausdorff_large` are the drop-in
entry points.
"""

from __future__ import annotations

import numpy as np

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.metrics.kendall import PairCounts

__all__ = [
    "count_inversions_array",
    "pair_counts_large",
    "kendall_large",
    "kendall_hausdorff_large",
]


def count_inversions_array(values: np.ndarray) -> int:
    """Strict inversions of a 1-D integer/float array, vectorized.

    Bottom-up merge sort: at each level, for every pair of adjacent runs,
    the cross-run inversions are ``sum over right elements of (#left
    elements strictly greater)``, computed in one ``searchsorted`` call
    per run pair. Equal values never count.
    """
    working = np.asarray(values)
    n = len(working)
    if n < 2:
        return 0
    total = 0
    width = 1
    working = working.copy()
    while width < n:
        for start in range(0, n - width, 2 * width):
            mid = start + width
            stop = min(start + 2 * width, n)
            left = working[start:mid]
            right = working[mid:stop]
            # for each right element: left elements <= it
            not_greater = np.searchsorted(left, right, side="right")
            total += int(len(left) * len(right) - not_greater.sum())
            working[start:stop] = np.concatenate((left, right))[
                np.argsort(np.concatenate((left, right)), kind="stable")
            ]
        width *= 2
    return total


def _bucket_index_arrays(
    sigma: PartialRanking, tau: PartialRanking
) -> tuple[np.ndarray, np.ndarray]:
    if sigma.domain != tau.domain:
        raise DomainMismatchError(
            f"rankings must share a domain (sizes {len(sigma)} and {len(tau)})"
        )
    items = list(sigma.domain)
    x = np.fromiter((sigma.bucket_index(item) for item in items), dtype=np.int64)
    y = np.fromiter((tau.bucket_index(item) for item in items), dtype=np.int64)
    return x, y


def _tied_pairs(counts: np.ndarray) -> int:
    return int((counts.astype(np.int64) * (counts - 1) // 2).sum())


def pair_counts_large(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    """Vectorized equivalent of :func:`repro.metrics.kendall.pair_counts`."""
    x, y = _bucket_index_arrays(sigma, tau)
    n = len(x)
    total = n * (n - 1) // 2

    _, x_counts = np.unique(x, return_counts=True)
    _, y_counts = np.unique(y, return_counts=True)
    joint = x * (int(y.max()) + 1 if n else 1) + y
    _, joint_counts = np.unique(joint, return_counts=True)

    tied_sigma = _tied_pairs(x_counts)
    tied_tau = _tied_pairs(y_counts)
    tied_both = _tied_pairs(joint_counts)

    # lexicographic sort by (x asc, y asc): within equal x, y is ascending,
    # so strict inversions of the y sequence are exactly the pairs strict
    # in x and strictly reversed in y
    order = np.lexsort((y, x))
    discordant = count_inversions_array(y[order])

    tied_first_only = tied_sigma - tied_both
    tied_second_only = tied_tau - tied_both
    concordant = total - discordant - tied_first_only - tied_second_only - tied_both
    return PairCounts(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_second_only=tied_second_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def kendall_large(sigma: PartialRanking, tau: PartialRanking, p: float = 0.5) -> float:
    """``K^(p)`` via the vectorized pair counter (large domains)."""
    if not 0.0 <= p <= 1.0:
        raise InvalidRankingError(f"penalty parameter p={p} outside [0, 1]")
    return pair_counts_large(sigma, tau).kendall(p)


def kendall_hausdorff_large(sigma: PartialRanking, tau: PartialRanking) -> int:
    """``K_Haus`` via the vectorized pair counter (Proposition 6)."""
    return pair_counts_large(sigma, tau).kendall_hausdorff()
