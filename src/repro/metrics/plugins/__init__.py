"""First-party metric plugins — importing this package registers them.

Each module here builds a :class:`~repro.metrics.registry.MetricPlugin`
(with an explicit ``oracle=`` reference and ``axiom_class=`` — RP010
flags plugin registrations missing either) and registers it at import
time. :mod:`repro.metrics` imports this package last, so ``import
repro.metrics`` is enough to make every first-party plugin resolvable
by name across the batch layer, aggregation, serving, experiments, and
the verify harness.
"""

from repro.metrics.plugins.top_difference import (
    top_difference,
    top_difference_matrix,
)
from repro.metrics.plugins.weighted_footrule import (
    weighted_footrule,
    weighted_footrule_matrix,
)

__all__ = [
    "weighted_footrule",
    "weighted_footrule_matrix",
    "top_difference",
    "top_difference_matrix",
]
