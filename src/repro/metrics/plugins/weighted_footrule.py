"""Position-weighted Spearman footrule (arXiv 1207.2541), as a plugin.

The classical footrule treats a swap at the top of a ranking the same as
a swap at the bottom. The weighted footrule of Kumar–Vassilvitskii-style
position weighting fixes that: each integer rank ``k`` carries a positive
weight ``w_k`` (by default harmonic, ``w_k ~ 1/k``), ranks are mapped
through the cumulative transform ``W(k) = w_1 + ... + w_k``, and the
distance is the L1 gap of the transformed positions:

    ``WF(sigma, tau) = sum_x |W(sigma(x)) - W(tau(x))|``.

Partial rankings place tied buckets at half-integer positions, so ``W``
is extended to the half grid by midpoint interpolation:
``W(k + 1/2) = (W(k) + W(k + 1)) / 2``. ``W`` is strictly increasing
(weights are positive), so the transform is injective on the half grid
and ``WF`` inherits the metric axioms from L1 — a genuine metric on
partial rankings (see THEORY.md, "Weighted footrule regularity").

**Exactness.** Weights are quantized to the dyadic grid ``2^-20`` (and
clamped positive), making every table entry, every |difference|, and
every partial sum an exact multiple of ``2^-21`` well below the 2^53
integer ceiling. Every summation order therefore yields the *same*
float64 — the scalar kernel, the vectorized batch kernel, its process-
pool variant, and the plain-Python oracle agree bit for bit, and the
verify harness asserts it with ``==``.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.analysis.contracts import checked_metric
from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.metrics.batch import (
    Profile,
    _chunk,
    _profile_position_rows,
    _symmetric_from_chunks,
    _upper_triangle,
)
from repro.metrics.registry import MetricPlugin, register_metric
from repro.parallel import parallel_map, resolve_jobs

__all__ = [
    "WEIGHT_SCALE",
    "harmonic_weights",
    "weight_table",
    "weighted_footrule",
    "weighted_footrule_naive",
    "weighted_footrule_matrix",
    "max_weighted_footrule",
    "WEIGHTED_FOOTRULE_PLUGIN",
]

#: Weights are quantized to integer multiples of ``1 / WEIGHT_SCALE``
#: (dyadic rationals), the exactness backbone of this module.
WEIGHT_SCALE = 1 << 20


def _weight_units(n: int, weights: npt.ArrayLike | None) -> npt.NDArray[np.int64]:
    """Per-rank weights as positive integer units of ``1/WEIGHT_SCALE``.

    ``None`` selects the harmonic default ``w_k ~ 1/k``. Explicit weights
    are validated (length n, finite, positive) and quantized to the grid;
    the quantized profile must keep every distance below ``2^53`` units
    so float64 arithmetic stays exact.
    """
    if weights is None:
        w = np.asarray(WEIGHT_SCALE, dtype=np.float64) / np.arange(
            1, n + 1, dtype=np.float64
        )
    else:
        w = np.asarray(weights, dtype=np.float64) * WEIGHT_SCALE
        if w.shape != (n,):
            raise InvalidRankingError(
                f"weights must have shape ({n},), got {w.shape}"
            )
        if not np.all(np.isfinite(w)) or not np.all(w > 0):
            raise InvalidRankingError("weights must be finite and positive")
    units = np.maximum(np.rint(w), 1.0).astype(np.int64)
    if n and 2 * n * int(units.sum()) >= 2**53:
        raise InvalidRankingError(
            "weights too large for exact float64 arithmetic; scale them down"
        )
    return units


def harmonic_weights(n: int) -> npt.NDArray[np.float64]:
    """The default weights ``w_k ~ 1/k``, quantized to the dyadic grid."""
    return _weight_units(n, None).astype(np.float64) / WEIGHT_SCALE


def weight_table(n: int, weights: npt.ArrayLike | None = None) -> npt.NDArray[np.float64]:
    """``W`` tabulated over the half grid: index ``2*pos - 2`` for position ``pos``.

    Even slots hold ``W(k) = w_1 + ... + w_k`` for integer ranks, odd
    slots the midpoints ``(W(k) + W(k+1)) / 2`` for the half-integer
    positions tied buckets occupy. Built in integer half-units, so every
    entry is exact.
    """
    units = _weight_units(n, weights)
    cum2 = 2 * np.cumsum(units)  # W in double units: even, exact
    table2 = np.empty(max(2 * n - 1, 0), dtype=np.int64)
    if n:
        table2[0::2] = cum2
        table2[1::2] = (cum2[:-1] + cum2[1:]) // 2
    return table2.astype(np.float64) / (2 * WEIGHT_SCALE)


def _value_rows(
    positions: npt.NDArray[np.float64], table: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Map half-integer positions through the tabulated transform."""
    return table[(2.0 * positions).astype(np.int64) - 2]


@checked_metric()
def weighted_footrule(
    sigma: PartialRanking,
    tau: PartialRanking,
    weights: npt.ArrayLike | None = None,
) -> float:
    """The weighted footrule ``WF`` between two partial rankings. O(n).

    ``weights`` is the per-rank weight vector (harmonic by default),
    quantized dyadically — see the module docstring for the exactness
    contract.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError(
            f"rankings must share a domain (sizes {len(sigma)} and {len(tau)})"
        )
    table = weight_table(len(sigma), weights)
    if not obs.enabled():
        return float(
            sum(abs(table[int(2 * sigma[x]) - 2] - table[int(2 * tau[x]) - 2]) for x in sigma.domain)
        )
    with obs.trace("metrics.plugins.weighted_footrule", n=len(sigma)):
        obs.add("metrics.plugins.weighted_footrule.items", len(sigma))
        return float(
            sum(abs(table[int(2 * sigma[x]) - 2] - table[int(2 * tau[x]) - 2]) for x in sigma.domain)
        )


def weighted_footrule_naive(
    sigma: PartialRanking,
    tau: PartialRanking,
    weights: npt.ArrayLike | None = None,
) -> float:
    """Plain-Python reference: rebuild ``W`` by hand in integer units.

    Deliberately shares no array code with the kernels — a Python loop
    over ranks accumulates the cumulative transform in exact integer
    double-units, and the distance is a Python ``sum``. Used as the
    auto-contributed verify oracle for this plugin.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("rankings must share a domain")
    n = len(sigma)
    if weights is None:
        # Python round() and np.rint share half-to-even semantics and the
        # division is the same IEEE float64 op, so these units match
        # _weight_units exactly without sharing its code.
        units = [max(1, round(WEIGHT_SCALE / k)) for k in range(1, n + 1)]
    else:
        units = [int(u) for u in _weight_units(n, weights)]
    cums: list[int] = []
    running = 0
    for u in units:
        running += u
        cums.append(running)
    # W over the half grid in exact integer double-units: even slots
    # hold 2*W(k), odd slots W(k) + W(k+1) (the midpoint, doubled)
    table2: list[int] = []
    for k in range(n):
        table2.append(2 * cums[k])
        if k + 1 < n:
            table2.append(cums[k] + cums[k + 1])
    total2 = sum(
        abs(table2[int(2 * sigma[x]) - 2] - table2[int(2 * tau[x]) - 2])
        for x in sigma.domain
    )
    return total2 / (2 * WEIGHT_SCALE)


def _wf_chunk(
    task: tuple[npt.NDArray[np.float64], list[tuple[int, int]]],
) -> list[float]:
    """Pool worker: WF for a chunk of (i, j) index pairs."""
    value_rows, index_pairs = task
    return [
        float(np.abs(value_rows[i] - value_rows[j]).sum()) for i, j in index_pairs
    ]


def weighted_footrule_matrix(
    profile: Profile,
    *,
    weights: npt.ArrayLike | None = None,
    p: float = 0.5,
    jobs: int | None = None,
) -> npt.NDArray[np.float64]:
    """The m×m weighted-footrule matrix of a profile (the batch kernel).

    One cumulative-sum weight table and one ``(m, n)`` transformed-value
    matrix are built for the whole profile, then pairs reduce to
    vectorized L1 gaps — the per-pair scalar path rebuilds the table and
    walks the domain in Python every call, which is what the ≥5× batch
    bar in ``BENCH_PLUGINS.json`` measures. ``p`` is accepted for
    dispatch uniformity and ignored. ``jobs`` spreads the pair chunks
    over a process pool; every summation order is exact (dyadic units),
    so serial, parallel, and arena-backed runs are bit-for-bit identical.
    """
    positions = _profile_position_rows(profile)
    m, n = positions.shape
    table = weight_table(n, weights)
    value_rows = _value_rows(positions, table)
    index_pairs = _upper_triangle(m)
    chunks = _chunk(index_pairs, resolve_jobs(jobs))
    if not obs.enabled():
        results = parallel_map(
            _wf_chunk, [(value_rows, chunk) for chunk in chunks], jobs=jobs
        )
        return _symmetric_from_chunks(m, chunks, results)
    with obs.trace("metrics.plugins.weighted_footrule_matrix", m=m, n=n):
        obs.add("metrics.plugins.weighted_footrule.pairs", len(index_pairs))
        results = parallel_map(
            _wf_chunk, [(value_rows, chunk) for chunk in chunks], jobs=jobs
        )
        return _symmetric_from_chunks(m, chunks, results)


def max_weighted_footrule(n: int) -> float:
    """Proven upper bound on ``WF`` (default weights) over an n-item domain.

    Every transformed position lies in ``[W(1), W(n)]``, so
    ``WF <= n * (W(n) - W(1))`` — term by term. Unlike the unweighted
    footrule, the supremum is **not** attained at a full ranking and its
    reverse (tied buckets can exceed that pair under non-uniform
    weights), so this normalizer guarantees the [0, 1] scale without
    claiming tightness; the test suite verifies the bound dominates the
    exhaustive maximum on small domains.
    """
    table = weight_table(n)
    if n == 0:
        return 0.0
    integer_values = table[0::2]
    return float(n * (integer_values[-1] - integer_values[0]))


WEIGHTED_FOOTRULE_PLUGIN = register_metric(
    MetricPlugin(
        name="weighted_footrule",
        aliases=("wf", "weighted_f"),
        citation="position-weighted Spearman footrule (arXiv 1207.2541)",
        scalar=weighted_footrule,
        batch=weighted_footrule_matrix,
        oracle=weighted_footrule_naive,
        axiom_class="metric",
        p_range=None,
        max_value=max_weighted_footrule,
    )
)
