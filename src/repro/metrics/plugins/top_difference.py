"""The weighted top-difference distance (arXiv 2403.15198), as a plugin.

Two rankings are close when they agree about *who is at the top*. The
weighted top-difference distance makes that precise: for each prefix
depth ``k`` compare the top-k sets and charge the symmetric difference,

    ``TD(sigma, tau) = sum_{k=1}^{n-1} alpha_k |top_k(sigma) DELTA top_k(tau)|``,

with positive depth weights ``alpha_k`` (harmonic by default, so
disagreements near the top dominate). On partial rankings an item
belongs to ``top_k`` when at least half of its bucket fits into the
first ``k`` slots — concretely ``ceil(sigma(x)) <= k``, where
``sigma(x)`` is the half-integer bucket position.

**Prefix-sum collapse.** Item ``x`` flips membership exactly for depths
between its two ceilings, so with ``A`` the prefix sums of ``alpha``
(``A_0 = 0``):

    ``TD(sigma, tau) = sum_x |A[ceil(sigma(x)) - 1] - A[ceil(tau(x)) - 1]|``

— an O(n) kernel after one cumulative sum; the O(n²) loop over depths is
kept as the naive oracle and the verify harness asserts bit-for-bit
agreement. The ceiling vector determines the bucket order uniquely
(consecutive bucket ceilings are strictly increasing), so with strictly
positive ``alpha`` this is a genuine metric on partial rankings (see
THEORY.md, "Top-difference distance").

**Exactness.** ``alpha`` is quantized to the dyadic ``2^-20`` grid like
the weighted-footrule weights, so every prefix sum, |difference|, and
accumulation is exact in float64 and all kernel/summation orders agree
bit for bit.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.analysis.contracts import checked_metric
from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.metrics.batch import (
    Profile,
    _chunk,
    _profile_position_rows,
    _symmetric_from_chunks,
    _upper_triangle,
)
from repro.metrics.registry import MetricPlugin, register_metric
from repro.parallel import parallel_map, resolve_jobs

__all__ = [
    "ALPHA_SCALE",
    "harmonic_alphas",
    "alpha_prefix",
    "top_difference",
    "top_difference_naive",
    "top_difference_matrix",
    "max_top_difference",
    "TOP_DIFFERENCE_PLUGIN",
]

#: Depth weights are quantized to integer multiples of ``1/ALPHA_SCALE``.
ALPHA_SCALE = 1 << 20


def _alpha_units(n: int, alphas: npt.ArrayLike | None) -> npt.NDArray[np.int64]:
    """Depth weights ``alpha_1 .. alpha_{n-1}`` as positive integer units."""
    depths = max(n - 1, 0)
    if alphas is None:
        a = np.asarray(ALPHA_SCALE, dtype=np.float64) / np.arange(
            1, depths + 1, dtype=np.float64
        )
    else:
        a = np.asarray(alphas, dtype=np.float64) * ALPHA_SCALE
        if a.shape != (depths,):
            raise InvalidRankingError(
                f"alphas must have shape ({depths},), got {a.shape}"
            )
        if not np.all(np.isfinite(a)) or not np.all(a > 0):
            raise InvalidRankingError("alphas must be finite and positive")
    units = np.maximum(np.rint(a), 1.0).astype(np.int64)
    if depths and n * int(units.sum()) >= 2**53:
        raise InvalidRankingError(
            "alphas too large for exact float64 arithmetic; scale them down"
        )
    return units


def harmonic_alphas(n: int) -> npt.NDArray[np.float64]:
    """The default depth weights ``alpha_k ~ 1/k``, dyadically quantized."""
    return _alpha_units(n, None).astype(np.float64) / ALPHA_SCALE


def alpha_prefix(n: int, alphas: npt.ArrayLike | None = None) -> npt.NDArray[np.float64]:
    """``A`` with ``A[j] = alpha_1 + ... + alpha_j`` for ``j = 0 .. n-1``.

    Item ``x`` with ceiling ``c`` contributes through ``A[c - 1]``; all
    entries are exact dyadic rationals.
    """
    units = _alpha_units(n, alphas)
    prefix = np.zeros(max(n, 0), dtype=np.int64)
    if n > 1:
        prefix[1:] = np.cumsum(units)
    return prefix.astype(np.float64) / ALPHA_SCALE


def _ceil_position(position: float) -> int:
    """``ceil`` of a half-integer position, exactly, via doubled integers."""
    doubled = int(2 * position)
    return (doubled + 1) // 2


@checked_metric()
def top_difference(
    sigma: PartialRanking,
    tau: PartialRanking,
    alphas: npt.ArrayLike | None = None,
) -> float:
    """The weighted top-difference ``TD`` between two partial rankings. O(n).

    ``alphas`` are the per-depth weights (harmonic by default),
    quantized dyadically — see the module docstring for the exactness
    contract.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError(
            f"rankings must share a domain (sizes {len(sigma)} and {len(tau)})"
        )
    table = alpha_prefix(len(sigma), alphas)
    if not obs.enabled():
        return float(
            sum(
                abs(table[_ceil_position(sigma[x]) - 1] - table[_ceil_position(tau[x]) - 1])
                for x in sigma.domain
            )
        )
    with obs.trace("metrics.plugins.top_difference", n=len(sigma)):
        obs.add("metrics.plugins.top_difference.items", len(sigma))
        return float(
            sum(
                abs(table[_ceil_position(sigma[x]) - 1] - table[_ceil_position(tau[x]) - 1])
                for x in sigma.domain
            )
        )


def top_difference_naive(
    sigma: PartialRanking,
    tau: PartialRanking,
    alphas: npt.ArrayLike | None = None,
) -> float:
    """O(n²) plain-Python reference: literally sum over prefix depths.

    For every depth ``k`` the top-k sets are materialized from the
    ceiling rule and the symmetric difference is counted — no prefix
    sums, no arrays. Accumulates in exact integer units, so it agrees
    with the collapsed kernels bit for bit. Used as the auto-contributed
    verify oracle for this plugin.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("rankings must share a domain")
    n = len(sigma)
    if alphas is None:
        units = [max(1, round(ALPHA_SCALE / k)) for k in range(1, n)]
    else:
        units = [int(u) for u in _alpha_units(n, alphas)]
    ceil_sigma = {x: _ceil_position(sigma[x]) for x in sigma.domain}
    ceil_tau = {x: _ceil_position(tau[x]) for x in tau.domain}
    total_units = 0
    for k in range(1, n):
        top_sigma = {x for x, c in ceil_sigma.items() if c <= k}
        top_tau = {x for x, c in ceil_tau.items() if c <= k}
        total_units += units[k - 1] * len(top_sigma ^ top_tau)
    return total_units / ALPHA_SCALE


def _td_chunk(
    task: tuple[npt.NDArray[np.float64], list[tuple[int, int]]],
) -> list[float]:
    """Pool worker: TD for a chunk of (i, j) index pairs."""
    value_rows, index_pairs = task
    return [
        float(np.abs(value_rows[i] - value_rows[j]).sum()) for i, j in index_pairs
    ]


def top_difference_matrix(
    profile: Profile,
    *,
    alphas: npt.ArrayLike | None = None,
    p: float = 0.5,
    jobs: int | None = None,
) -> npt.NDArray[np.float64]:
    """The m×m top-difference matrix of a profile (the batch kernel).

    One prefix-sum table and one ``(m, n)`` ceiling-value matrix serve
    the whole profile; pairs reduce to vectorized L1 gaps. The per-pair
    scalar path re-derives the table and the ceilings per call — the gap
    the ≥5× batch bar in ``BENCH_PLUGINS.json`` measures. ``p`` is
    accepted for dispatch uniformity and ignored; ``jobs`` spreads pair
    chunks over a process pool, bit-for-bit identically (exact dyadic
    sums in every order).
    """
    positions = _profile_position_rows(profile)
    m, n = positions.shape
    table = alpha_prefix(n, alphas)
    ceilings = ((2.0 * positions).astype(np.int64) + 1) // 2
    value_rows = table[ceilings - 1]
    index_pairs = _upper_triangle(m)
    chunks = _chunk(index_pairs, resolve_jobs(jobs))
    if not obs.enabled():
        results = parallel_map(
            _td_chunk, [(value_rows, chunk) for chunk in chunks], jobs=jobs
        )
        return _symmetric_from_chunks(m, chunks, results)
    with obs.trace("metrics.plugins.top_difference_matrix", m=m, n=n):
        obs.add("metrics.plugins.top_difference.pairs", len(index_pairs))
        results = parallel_map(
            _td_chunk, [(value_rows, chunk) for chunk in chunks], jobs=jobs
        )
        return _symmetric_from_chunks(m, chunks, results)


def max_top_difference(n: int) -> float:
    """Proven upper bound on ``TD`` (default weights) over an n-item domain.

    Every ceiling value lies in ``[A_0, A_{n-1}] = [0, alpha_1 + ... +
    alpha_{n-1}]``, so ``TD <= n * A_{n-1}`` term by term. The supremum
    is not attained at a full ranking and its reverse (disjoint leading
    buckets can beat it), so this normalizer guarantees the [0, 1] scale
    without claiming tightness; the test suite verifies the bound
    dominates the exhaustive maximum on small domains.
    """
    if n == 0:
        return 0.0
    table = alpha_prefix(n)
    return float(n * table[-1])


TOP_DIFFERENCE_PLUGIN = register_metric(
    MetricPlugin(
        name="top_difference",
        aliases=("td", "top_diff"),
        citation="weighted top-difference distance (arXiv 2403.15198)",
        scalar=top_difference,
        batch=top_difference_matrix,
        oracle=top_difference_naive,
        axiom_class="metric",
        p_range=None,
        max_value=max_top_difference,
    )
)
