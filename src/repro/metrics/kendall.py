"""Kendall-style metrics on partial rankings (paper §2.2, §3.1).

For full rankings, the Kendall tau distance ``K`` counts pairwise
disagreements (bubble-sort exchanges). For partial rankings the paper
defines ``K^(p)``: a pair tied in one ranking but not the other incurs
penalty ``p``; a strictly discordant pair incurs penalty 1; every other
pair is free. ``K^(1/2)`` is the profile metric ``K_prof``.

This module provides a fast O(n log n) implementation built on pair-category
counting plus Fenwick-tree discordance counting, and a transparent O(n²)
implementation used as the property-test oracle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Any

from repro import obs
from repro._util import FenwickTree, pairs
from repro.analysis.contracts import checked_metric, near_triangle_constant
from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError

__all__ = [
    "PairCounts",
    "pair_counts",
    "kendall",
    "kendall_naive",
    "kendall_full",
]


@dataclass(frozen=True, slots=True)
class PairCounts:
    """Pair bookkeeping between two partial rankings over a common domain.

    Attributes follow Proposition 6's notation:

    * ``discordant`` — |U|: pairs strictly ordered in both rankings, in
      opposite directions.
    * ``tied_first_only`` — |S|: pairs tied in the first ranking only.
    * ``tied_second_only`` — |T|: pairs tied in the second ranking only.
    * ``tied_both`` — pairs tied in both rankings (never penalized).
    * ``concordant`` — pairs strictly ordered the same way in both.
    """

    discordant: int
    tied_first_only: int
    tied_second_only: int
    tied_both: int
    concordant: int

    @property
    def total(self) -> int:
        """Total number of unordered pairs (n choose 2)."""
        return (
            self.discordant
            + self.tied_first_only
            + self.tied_second_only
            + self.tied_both
            + self.concordant
        )

    def kendall(self, p: float = 0.5) -> float:
        """Evaluate ``K^(p)`` from the pair counts."""
        return self.discordant + p * (self.tied_first_only + self.tied_second_only)

    def kendall_hausdorff(self) -> int:
        """Evaluate ``K_Haus`` via Proposition 6: |U| + max(|S|, |T|)."""
        return self.discordant + max(self.tied_first_only, self.tied_second_only)


def _require_common_domain(sigma: PartialRanking, tau: PartialRanking) -> None:
    # identity first: cached domains are shared between a ranking and its
    # derived rankings, making the common case a pointer comparison
    if sigma.domain is not tau.domain and sigma.domain != tau.domain:
        raise DomainMismatchError(
            f"rankings must share a domain (sizes {len(sigma)} and {len(tau)})"
        )


def pair_counts(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    """Classify all unordered pairs of distinct items in O(n log n).

    The discordant count uses a Fenwick tree: items are processed in
    increasing ``sigma``-bucket order, one bucket at a time; within a bucket
    nothing is counted (those pairs are tied in ``sigma``). For each item we
    count previously inserted items sitting in a strictly *later*
    ``tau``-bucket — exactly the pairs ordered one way by ``sigma`` and the
    opposite way by ``tau``.
    """
    if not obs.enabled():
        return _pair_counts_impl(sigma, tau)
    n = len(sigma)
    with obs.trace("metrics.pair_counts", n=n):
        obs.add("metrics.pairs", pairs(n))
        return _pair_counts_impl(sigma, tau)


def _pair_counts_impl(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    _require_common_domain(sigma, tau)
    n = len(sigma)
    total = pairs(n)

    tied_sigma = sum(pairs(size) for size in sigma.type)
    tied_tau = sum(pairs(size) for size in tau.type)
    joint = Counter((sigma.bucket_index(x), tau.bucket_index(x)) for x in sigma.domain)
    tied_both = sum(pairs(count) for count in joint.values())

    tree = FenwickTree(len(tau.buckets))
    inserted = 0
    discordant = 0
    for bucket in sigma.buckets:
        ranks = [tau.bucket_index(item) for item in bucket]
        for rank in ranks:
            # previously inserted items whose tau-bucket is strictly later
            discordant += inserted - tree.prefix_sum(rank)
        for rank in ranks:
            tree.add(rank)
        inserted += len(ranks)

    tied_first_only = tied_sigma - tied_both
    tied_second_only = tied_tau - tied_both
    concordant = total - discordant - tied_first_only - tied_second_only - tied_both
    return PairCounts(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_second_only=tied_second_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def _kendall_constant(args: tuple[Any, ...], kwargs: dict[str, Any]) -> float:
    """Near-triangle constant of ``K^(p)``: per Proposition 13, 1 in the
    metric regime (p >= 1/2) and 1/(2p) in the near-metric regime."""
    p = args[0] if args else kwargs.get("p", 0.5)
    return near_triangle_constant(p)


@checked_metric(constant_from=_kendall_constant)
def kendall(sigma: PartialRanking, tau: PartialRanking, p: float = 0.5) -> float:
    """The Kendall distance ``K^(p)`` between two partial rankings.

    ``p`` is the penalty for a pair tied in exactly one of the rankings
    (§3.1, Case 3). The default ``p = 1/2`` gives ``K_prof``, the L1
    distance between K-profiles. Per Proposition 13, ``K^(p)`` is a metric
    for ``p in [1/2, 1]``, a near metric for ``p in (0, 1/2)``, and not a
    distance measure at ``p = 0``; values outside [0, 1] are rejected.

    Runs in O(n log n).
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidRankingError(f"penalty parameter p={p} outside [0, 1]")
    return pair_counts(sigma, tau).kendall(p)


def kendall_naive(sigma: PartialRanking, tau: PartialRanking, p: float = 0.5) -> float:
    """O(n²) reference implementation of ``K^(p)``, straight from §3.1.

    Used as the oracle in property tests; prefer :func:`kendall` in
    application code.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidRankingError(f"penalty parameter p={p} outside [0, 1]")
    _require_common_domain(sigma, tau)
    total = 0.0
    for x, y in combinations(sigma.domain, 2):
        tied_sigma = sigma.tied(x, y)
        tied_tau = tau.tied(x, y)
        if tied_sigma and tied_tau:
            continue
        if tied_sigma != tied_tau:
            total += p
            continue
        if sigma.ahead(x, y) != tau.ahead(x, y):
            total += 1.0
    return total


def kendall_full(sigma: PartialRanking, tau: PartialRanking) -> int:
    """Classical Kendall tau between two *full* rankings (§2.2).

    The number of pairwise disagreements, equal to the number of adjacent
    exchanges a bubble sort needs to turn one ranking into the other.
    """
    _require_common_domain(sigma, tau)
    if not sigma.is_full or not tau.is_full:
        raise InvalidRankingError("kendall_full requires full rankings; use kendall() instead")
    counts = pair_counts(sigma, tau)
    return counts.discordant
