"""Distance-measure / metric / near-metric property checking (paper §2.1).

The paper's taxonomy:

* a **distance measure** is non-negative, symmetric and regular
  (``d(x, y) = 0`` iff ``x == y``);
* a **metric** additionally satisfies the triangle inequality;
* a **near metric** satisfies the *relaxed polygonal inequality*
  ``d(x, z) <= c * (d(x, x1) + ... + d(x_{n-1}, z))`` for a constant ``c``
  independent of the domain size — equivalently (Fagin–Kumar–Sivakumar), it
  is within constant multiples of a metric.

These properties quantify over all rankings, so they cannot be *verified*
by sampling — but they can be *refuted*. This module provides samplers and
checkers that either find a concrete counterexample (returned as a
:class:`Violation`) or report that none was found in the sample. Experiment
E1 uses them to map the metric/near-metric regimes of ``K^(p)`` and to
reproduce the paper's two-element counterexamples (§A.2).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.partial_ranking import PartialRanking

Distance = Callable[[PartialRanking, PartialRanking], float]

__all__ = [  # repro: noqa[RP011] — axiom-checking oracles, not runtime kernels
    "Violation",
    "AxiomReport",
    "check_distance_measure",
    "check_triangle_inequality",
    "check_polygonal_inequality",
    "check_axioms",
    "paper_counterexample_rankings",
]

_ABS_TOL = 1e-9


@dataclass(frozen=True, slots=True)
class Violation:
    """A concrete counterexample to one of the axioms."""

    axiom: str
    rankings: tuple[PartialRanking, ...]
    detail: str

    def __str__(self) -> str:
        return f"{self.axiom} violated: {self.detail}"


@dataclass(frozen=True, slots=True)
class AxiomReport:
    """Outcome of checking a distance function over a sample of rankings."""

    checked_pairs: int
    checked_triples: int
    violations: tuple[Violation, ...]

    @property
    def is_distance_measure(self) -> bool:
        return not any(
            v.axiom in ("non-negativity", "symmetry", "regularity") for v in self.violations
        )

    @property
    def satisfies_triangle(self) -> bool:
        return not any(v.axiom == "triangle" for v in self.violations)

    @property
    def clean(self) -> bool:
        return not self.violations


def check_distance_measure(
    dist: Distance,
    rankings: Sequence[PartialRanking],
) -> list[Violation]:
    """Check non-negativity, symmetry, and regularity over all pairs."""
    violations: list[Violation] = []
    for sigma in rankings:
        if abs(dist(sigma, sigma)) > _ABS_TOL:
            violations.append(
                Violation(
                    "regularity",
                    (sigma,),
                    f"d(x, x) = {dist(sigma, sigma)} != 0 for x = {sigma}",
                )
            )
    for i, sigma in enumerate(rankings):
        for tau in rankings[i + 1 :]:
            forward = dist(sigma, tau)
            backward = dist(tau, sigma)
            if forward < -_ABS_TOL:
                violations.append(
                    Violation("non-negativity", (sigma, tau), f"d = {forward} < 0")
                )
            if abs(forward - backward) > _ABS_TOL:
                violations.append(
                    Violation(
                        "symmetry",
                        (sigma, tau),
                        f"d(x, y) = {forward} but d(y, x) = {backward}",
                    )
                )
            if sigma != tau and abs(forward) <= _ABS_TOL:
                violations.append(
                    Violation(
                        "regularity",
                        (sigma, tau),
                        f"d = 0 for distinct rankings {sigma} and {tau}",
                    )
                )
    return violations


def check_triangle_inequality(
    dist: Distance,
    rankings: Sequence[PartialRanking],
) -> list[Violation]:
    """Check ``d(x, z) <= d(x, y) + d(y, z)`` over all ordered triples.

    Distances are cached per pair, so the cost is O(k²) distance
    evaluations plus O(k³) comparisons for k sample rankings.
    """
    cache: dict[tuple[int, int], float] = {}

    def d(i: int, j: int) -> float:
        key = (i, j) if i <= j else (j, i)
        if key not in cache:
            cache[key] = dist(rankings[key[0]], rankings[key[1]])
        return cache[key]

    violations: list[Violation] = []
    k = len(rankings)
    for i in range(k):
        for j in range(k):
            for m in range(k):
                if d(i, m) > d(i, j) + d(j, m) + _ABS_TOL:
                    violations.append(
                        Violation(
                            "triangle",
                            (rankings[i], rankings[j], rankings[m]),
                            f"d(x, z) = {d(i, m)} > {d(i, j)} + {d(j, m)}",
                        )
                    )
    return violations


def check_polygonal_inequality(
    dist: Distance,
    rankings: Sequence[PartialRanking],
    c: float,
    path_length: int = 4,
    samples: int = 200,
    rng: random.Random | int | None = None,
) -> list[Violation]:
    """Sample paths and check the *relaxed polygonal inequality* (Def. 1).

    A near metric must satisfy
    ``d(x, z) <= c * (d(x, x1) + d(x1, x2) + ... + d(x_{k-1}, z))`` for a
    constant ``c`` independent of the domain. The triangle inequality is
    the ``c = 1, k = 2`` case; longer paths are strictly stronger, which
    is why Definition 1 quantifies over them. This checker samples random
    paths of up to ``path_length`` intermediate rankings and reports the
    ones violating the relaxed inequality at the given ``c``.
    """
    generator = rng if isinstance(rng, random.Random) else random.Random(rng)
    if len(rankings) < 2:
        return []
    violations: list[Violation] = []
    for _ in range(samples):
        k = generator.randint(1, max(1, path_length))
        path = [generator.choice(rankings) for _ in range(k + 1)]
        through = sum(dist(a, b) for a, b in zip(path, path[1:]))
        direct = dist(path[0], path[-1])
        if direct > c * through + _ABS_TOL:
            violations.append(
                Violation(
                    "relaxed-polygonal",
                    tuple(path),
                    f"d(x, z) = {direct} > {c} * {through} along a "
                    f"{k}-hop path",
                )
            )
    return violations


def check_axioms(dist: Distance, rankings: Sequence[PartialRanking]) -> AxiomReport:
    """Run every axiom check over a sample and collect violations."""
    violations = check_distance_measure(dist, rankings)
    violations.extend(check_triangle_inequality(dist, rankings))
    k = len(rankings)
    return AxiomReport(
        checked_pairs=k * (k - 1) // 2,
        checked_triples=k**3,
        violations=tuple(violations),
    )


def paper_counterexample_rankings() -> tuple[PartialRanking, PartialRanking, PartialRanking]:
    """The two-element rankings of §A.2 / Proposition 13.

    ``tau_1``: a ahead of b; ``tau_2``: a and b tied; ``tau_3``: b ahead of
    a. They witness that ``K^(0)`` is not a distance measure
    (``K^(0)(tau_1, tau_2) = 0`` with ``tau_1 != tau_2``) and that ``K^(p)``
    violates the triangle inequality for ``0 < p < 1/2``
    (``K^(p)(tau_1, tau_3) = 1 > 2p``).
    """
    tau_1 = PartialRanking([["a"], ["b"]])
    tau_2 = PartialRanking([["a", "b"]])
    tau_3 = PartialRanking([["b"], ["a"]])
    return tau_1, tau_2, tau_3
