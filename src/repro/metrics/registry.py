"""The process-wide metric plugin registry (the pluggable-metric subsystem).

The paper's four metrics used to be hard-wired into
:func:`~repro.metrics.batch.pairwise_distance_matrix`, the verify
registry, and the experiment runner. This module turns "a metric" into a
first-class value — a :class:`MetricPlugin` bundling

* a canonical **name** plus accepted alias spellings,
* the **scalar** two-ranking kernel (the object layer),
* the **batch** all-pairs kernel (must be bit-for-bit equal to the
  scalar kernel on every entry — the repo-wide exactness promise),
* a deliberately naive **oracle** reference the verify harness
  differential-tests both kernels against,
* the **axiom class** (``"metric"`` or ``"near-metric"``) and, where the
  penalty parameter applies, the supported ``p``-range,
* optionally the per-domain **maximum value** used by the normalized
  ([0, 1]-scaled) variant.

The four built-in metrics register themselves when
:mod:`repro.metrics.batch` is imported; the first-party plugins under
:mod:`repro.metrics.plugins` register on import of :mod:`repro.metrics`.
Third-party code registers the same way (see ``docs/METRICS.md``) and
immediately resolves through every name-based dispatch surface —
``pairwise_distance_matrix``, ``aggregate(...)``, the serving layer's
distance route, the experiment runner, and the verify harness, which
auto-contributes an ``oracle:`` and symmetry/regularity ``relation:``
check per plugin.

Unknown names raise :class:`~repro.errors.UnknownMetricError` with one
shared message listing every registered spelling, so all dispatch
surfaces fail identically.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.errors import UnknownMetricError

__all__ = [  # repro: noqa[RP011] — pure name-resolution layer; the resolved kernels are instrumented
    "MetricPlugin",
    "register_metric",
    "unregister_metric",
    "registered_metrics",
    "metric_names",
    "canonical_metric",
    "get_metric",
    "AXIOM_CLASSES",
]

#: Valid ``axiom_class`` values: a genuine metric, or a near metric that
#: satisfies the relaxed triangle inequality with a finite constant.
AXIOM_CLASSES = ("metric", "near-metric")

#: A scalar two-ranking kernel: ``d(sigma, tau, ...)``.
ScalarKernel = Callable[..., float]

#: An all-pairs kernel: ``(profile, ...) -> (m, m) float64 matrix``.
BatchKernel = Callable[..., npt.NDArray[np.float64]]


@dataclass(frozen=True, slots=True)
class MetricPlugin:
    """One pluggable distance: kernels, reference oracle, and metadata.

    ``scalar``, ``batch``, and ``oracle`` must agree **bit for bit** on
    every input (positions are multiples of ½ and plugin weights are
    dyadic rationals, so exact float agreement is achievable and the
    verify harness asserts it with ``==``). ``batch`` accepts the batch
    layer's profile types and the keyword arguments ``p`` and ``jobs``
    (parameters it does not use are accepted and ignored, so dispatch
    stays uniform).
    """

    name: str
    aliases: tuple[str, ...]
    citation: str
    scalar: ScalarKernel
    batch: BatchKernel
    oracle: ScalarKernel
    axiom_class: str
    #: Closed ``[lo, hi]`` range of the supported penalty parameter, or
    #: None when the metric takes no ``p``.
    p_range: tuple[float, float] | None = None
    #: ``n -> bound`` with ``d <= bound`` over all pairs of partial
    #: rankings of an n-item domain (powers the normalized variant).
    #: Exact suprema for the built-ins; plugins may supply a proven
    #: upper bound. None when no closed form is provided.
    max_value: Callable[[int], float] | None = None
    #: True for the four paper metrics (their oracle/relation checks are
    #: hand-curated in repro.verify; plugins get auto-contributed ones).
    builtin: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.axiom_class not in AXIOM_CLASSES:
            raise ValueError(
                f"axiom_class {self.axiom_class!r} not in {AXIOM_CLASSES}"
            )

    def names(self) -> tuple[str, ...]:
        """The canonical name followed by every accepted alias."""
        return (self.name, *self.aliases)


_LOCK = threading.Lock()
#: Canonical name -> plugin, in registration order.
_REGISTRY: dict[str, MetricPlugin] = {}
#: Every accepted spelling -> canonical name.
_ALIASES: dict[str, str] = {}


def register_metric(plugin: MetricPlugin) -> MetricPlugin:
    """Register a plugin process-wide; returns it for decorator-ish use.

    Raises ``ValueError`` on a name/alias collision with an
    already-registered plugin (re-registering the exact same plugin
    object is a no-op, so module re-imports are safe); an invalid
    ``axiom_class`` already fails at :class:`MetricPlugin` construction.
    """
    with _LOCK:
        existing = _REGISTRY.get(plugin.name)
        if existing is plugin:
            return plugin
        taken = [spelling for spelling in plugin.names() if spelling in _ALIASES]
        if taken:
            raise ValueError(
                f"metric name(s) {taken!r} already registered; pick unique "
                "names/aliases or unregister_metric() first"
            )
        _REGISTRY[plugin.name] = plugin
        for spelling in plugin.names():
            _ALIASES[spelling] = plugin.name
    return plugin


def unregister_metric(name: str) -> None:
    """Remove a plugin (tests only; unknown names raise the shared error)."""
    with _LOCK:
        canonical = _ALIASES.get(name)
        if canonical is None:
            raise UnknownMetricError(_unknown_message(name))
        plugin = _REGISTRY.pop(canonical)
        for spelling in plugin.names():
            _ALIASES.pop(spelling, None)


def registered_metrics() -> tuple[MetricPlugin, ...]:
    """Every registered plugin, in registration order."""
    with _LOCK:
        return tuple(_REGISTRY.values())


def metric_names() -> tuple[str, ...]:
    """Every accepted spelling (canonical names and aliases), sorted."""
    with _LOCK:
        return tuple(sorted(_ALIASES))


def _unknown_message(name: str) -> str:
    return f"unknown metric {name!r}; expected one of {sorted(_ALIASES)}"


def canonical_metric(name: str) -> str:
    """Resolve any accepted spelling to the canonical plugin name."""
    return get_metric(name).name


def get_metric(name: str) -> MetricPlugin:
    """The plugin registered under ``name`` (canonical or alias).

    Raises :class:`~repro.errors.UnknownMetricError` — the one shared
    unknown-metric error every dispatch surface produces — listing all
    registered spellings.
    """
    with _LOCK:
        canonical = _ALIASES.get(name)
        if canonical is None:
            raise UnknownMetricError(_unknown_message(name))
        return _REGISTRY[canonical]
