"""Normalized ([0, 1]-scaled) versions of the four metrics.

Cross-domain comparisons ("is this pair of 10-item rankings closer than
that pair of 1000-item rankings?") need scale-free values. Each metric is
divided by its maximum over all pairs of partial rankings of the domain:

* ``K_prof``, ``K_Haus`` — maximum ``n(n-1)/2``, attained by a full
  ranking and its reverse (every pair discordant);
* ``F_prof``, ``F_Haus`` — maximum ``floor(n^2 / 2)``, attained by the
  same pair (the classical extremal value of Spearman's footrule).

The maxima are verified exhaustively for small domains in the test suite.
Normalization divides by a constant per domain, so metric axioms are
preserved and the Theorem 7 equivalence constants carry over up to the
ratio of the two maxima.

Plugin metrics normalize through the registry: :func:`normalized_metric`
builds a [0, 1]-scaled wrapper for any registered metric whose
:class:`~repro.metrics.registry.MetricPlugin` supplies ``max_value``
(for the built-ins an exact supremum; plugins may supply a proven upper
bound, in which case the scaled value stays in [0, 1] without the
maximum necessarily being attained).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall

__all__ = [  # repro: noqa[RP011] — O(1) normalizing wrappers over instrumented kernels
    "max_kendall",
    "max_footrule",
    "normalized_kendall",
    "normalized_footrule",
    "normalized_kendall_hausdorff",
    "normalized_footrule_hausdorff",
    "normalized_metric",
    "NORMALIZED_METRICS",
]


def max_kendall(n: int) -> float:
    """Maximum of ``K_prof`` (and ``K_Haus``) over an n-item domain."""
    return n * (n - 1) / 2


def max_footrule(n: int) -> float:
    """Maximum of ``F_prof`` (and ``F_Haus``) over an n-item domain."""
    return float(n * n // 2)


def _normalize(value: float, maximum: float) -> float:
    return 0.0 if maximum == 0 else value / maximum


def normalized_kendall(sigma: PartialRanking, tau: PartialRanking, p: float = 0.5) -> float:
    """``K^(p)`` scaled into [0, 1]."""
    return _normalize(kendall(sigma, tau, p), max_kendall(len(sigma)))


def normalized_footrule(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``F_prof`` scaled into [0, 1]."""
    return _normalize(footrule(sigma, tau), max_footrule(len(sigma)))


def normalized_kendall_hausdorff(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``K_Haus`` scaled into [0, 1]."""
    return _normalize(
        float(kendall_hausdorff_counts(sigma, tau)), max_kendall(len(sigma))
    )


def normalized_footrule_hausdorff(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``F_Haus`` scaled into [0, 1]."""
    return _normalize(footrule_hausdorff(sigma, tau), max_footrule(len(sigma)))


def normalized_metric(
    name: str,
) -> Callable[[PartialRanking, PartialRanking], float]:
    """A [0, 1]-scaled scalar metric for any registered plugin spelling.

    Resolves ``name`` through the metric plugin registry and divides the
    plugin's scalar kernel by its ``max_value(n)``. Raises the
    registry's :class:`~repro.errors.UnknownMetricError` on unknown
    names and :class:`AggregationError` when the plugin declares no
    ``max_value``.
    """
    # Imported lazily: repro.metrics.batch imports this module for the
    # built-in maxima, so a module-level registry import would cycle.
    import repro.metrics.plugins  # noqa: F401 — registers the first-party plugins
    from repro.metrics.registry import get_metric

    plugin = get_metric(name)
    if plugin.max_value is None:
        raise AggregationError(
            f"metric {plugin.name!r} declares no max_value; it cannot be normalized"
        )
    max_value = plugin.max_value
    scalar = plugin.scalar

    def normalized(sigma: PartialRanking, tau: PartialRanking) -> float:
        return _normalize(scalar(sigma, tau), max_value(len(sigma)))

    normalized.__name__ = f"normalized_{plugin.name}"
    normalized.__qualname__ = f"normalized_{plugin.name}"
    return normalized


#: Name -> normalized metric registry, mirroring objective.METRICS.
NORMALIZED_METRICS = {
    "k_prof": normalized_kendall,
    "f_prof": normalized_footrule,
    "k_haus": normalized_kendall_hausdorff,
    "f_haus": normalized_footrule_hausdorff,
}
