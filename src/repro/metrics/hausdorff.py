"""Hausdorff metrics between partial rankings (paper §3.2, §4).

``K_Haus(sigma, tau)`` and ``F_Haus(sigma, tau)`` are the Hausdorff
distances between the sets of full refinements of ``sigma`` and ``tau``
under the Kendall / footrule metric. A priori these are max–min expressions
over exponentially large sets; Theorem 5 shows both are attained on two
explicitly constructible pairs of full rankings:

    sigma_1 = rho * tau^R * sigma      tau_1 = rho * sigma * tau
    sigma_2 = rho * tau   * sigma      tau_2 = rho * sigma^R * tau

for an arbitrary full ranking ``rho`` (used consistently on both sides), and

    F_Haus = max(F(sigma_1, tau_1), F(sigma_2, tau_2))
    K_Haus = max(K(sigma_1, tau_1), K(sigma_2, tau_2)).

Proposition 6 additionally gives the closed form
``K_Haus = |U| + max(|S|, |T|)`` over pair categories, which this module
uses for the fast path. The exhaustive max–min oracle is provided for the
test suite.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro import obs
from repro.analysis.contracts import checked_metric
from repro.core.partial_ranking import Item, PartialRanking
from repro.core.refine import common_full_ranking, star_chain
from repro.errors import DomainMismatchError
from repro.metrics.footrule import footrule_full
from repro.metrics.kendall import kendall_full, pair_counts

__all__ = [
    "HausdorffWitnesses",
    "hausdorff_witnesses",
    "kendall_hausdorff",
    "kendall_hausdorff_counts",
    "footrule_hausdorff",
    "kendall_hausdorff_bruteforce",
    "footrule_hausdorff_bruteforce",
]


@dataclass(frozen=True, slots=True)
class HausdorffWitnesses:
    """The two candidate full-ranking pairs of Theorem 5.

    One of ``(sigma_1, tau_1)`` and ``(sigma_2, tau_2)`` exhibits the
    Hausdorff distance — the *same* pairs for both the Kendall and the
    footrule version, which is the surprising part of the theorem.
    """

    sigma_1: PartialRanking
    tau_1: PartialRanking
    sigma_2: PartialRanking
    tau_2: PartialRanking


def hausdorff_witnesses(
    sigma: PartialRanking,
    tau: PartialRanking,
    rho: PartialRanking | None = None,
) -> HausdorffWitnesses:
    """Build the Theorem 5 witness pairs.

    ``rho`` is the arbitrary full ranking used to break any ties remaining
    after the cross-refinements; it defaults to the canonical full ranking
    of the domain. Intuitively: ``sigma_1`` breaks sigma's ties *against*
    tau's order, ``tau_1`` breaks tau's ties *along* sigma's order — the
    adversarial/cooperative split that realizes the max–min.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("Hausdorff distance requires a common domain")
    if rho is None:
        rho = common_full_ranking(sigma)
    elif not rho.is_full or rho.domain != sigma.domain:
        raise DomainMismatchError("rho must be a full ranking over the same domain")
    if not obs.enabled():
        return HausdorffWitnesses(
            sigma_1=star_chain(rho, tau.reverse(), sigma),
            tau_1=star_chain(rho, sigma, tau),
            sigma_2=star_chain(rho, tau, sigma),
            tau_2=star_chain(rho, sigma.reverse(), tau),
        )
    with obs.trace("metrics.hausdorff.witnesses", n=len(sigma)):
        obs.add("metrics.hausdorff.witnesses", 4)
        return HausdorffWitnesses(
            sigma_1=star_chain(rho, tau.reverse(), sigma),
            tau_1=star_chain(rho, sigma, tau),
            sigma_2=star_chain(rho, tau, sigma),
            tau_2=star_chain(rho, sigma.reverse(), tau),
        )


@checked_metric()
def footrule_hausdorff(
    sigma: PartialRanking,
    tau: PartialRanking,
    rho: PartialRanking | None = None,
) -> float:
    """``F_Haus`` via the Theorem 5 characterization. O(n log n)."""
    w = hausdorff_witnesses(sigma, tau, rho)
    return max(footrule_full(w.sigma_1, w.tau_1), footrule_full(w.sigma_2, w.tau_2))


def kendall_hausdorff_counts(sigma: PartialRanking, tau: PartialRanking) -> int:
    """``K_Haus`` via the Proposition 6 closed form. O(n log n).

    ``K_Haus = |U| + max(|S|, |T|)`` where U are the strictly discordant
    pairs, S the pairs tied only in ``sigma``, and T the pairs tied only in
    ``tau``.
    """
    return pair_counts(sigma, tau).kendall_hausdorff()


@checked_metric()
def kendall_hausdorff(
    sigma: PartialRanking,
    tau: PartialRanking,
    rho: PartialRanking | None = None,
) -> int:
    """``K_Haus`` via the Theorem 5 witness construction.

    Agrees with :func:`kendall_hausdorff_counts` (property-tested); the
    closed form is faster when the witnesses themselves are not needed.
    """
    w = hausdorff_witnesses(sigma, tau, rho)
    return max(kendall_full(w.sigma_1, w.tau_1), kendall_full(w.sigma_2, w.tau_2))


def _refinement_position_vectors(
    sigma: PartialRanking, items: list[Item]
) -> list[tuple[float, ...]]:
    """Position vectors (aligned to ``items``) of every full refinement.

    Enumerated directly as products of within-bucket position
    permutations — no intermediate :class:`PartialRanking` objects — to
    keep the exponential oracle affordable.
    """
    from itertools import permutations as _permutations
    from itertools import product as _product

    index = {item: i for i, item in enumerate(items)}
    per_bucket: list[list[list[tuple[int, float]]]] = []
    offset = 0
    for bucket in sigma.buckets:
        members = sorted(bucket, key=repr)
        slots = [float(offset + rank) for rank in range(1, len(members) + 1)]
        per_bucket.append(
            [
                [(index[item], pos) for item, pos in zip(members, arrangement)]
                for arrangement in _permutations(slots)
            ]
        )
        offset += len(members)

    vectors: list[tuple[float, ...]] = []
    for combination in _product(*per_bucket):
        vector = [0.0] * len(items)
        for assignment in combination:
            for item_index, pos in assignment:
                vector[item_index] = pos
        vectors.append(tuple(vector))
    return vectors


_VectorDistance = Callable[[tuple[float, ...], tuple[float, ...]], float]


def _hausdorff_bruteforce(
    sigma: PartialRanking, tau: PartialRanking, dist: _VectorDistance
) -> float:
    """Exhaustive max–min over all full refinements (test oracle only).

    Works on plain position vectors to keep the exponential enumeration
    affordable for the exhaustive experiment (E2 checks all 2,850 pairs of
    4-element bucket orders against this oracle).
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("Hausdorff distance requires a common domain")
    items = sorted(sigma.domain, key=repr)
    vectors_sigma = _refinement_position_vectors(sigma, items)
    vectors_tau = _refinement_position_vectors(tau, items)
    from_sigma = max(
        min(dist(u, v) for v in vectors_tau) for u in vectors_sigma
    )
    from_tau = max(
        min(dist(u, v) for u in vectors_sigma) for v in vectors_tau
    )
    return max(from_sigma, from_tau)


def _vector_kendall(u: tuple[float, ...], v: tuple[float, ...]) -> int:
    n = len(u)
    return sum(
        1
        for i in range(n)
        for j in range(i + 1, n)
        if (u[i] - u[j]) * (v[i] - v[j]) < 0
    )


def _vector_footrule(u: tuple[float, ...], v: tuple[float, ...]) -> float:
    return sum(abs(a - b) for a, b in zip(u, v))


def kendall_hausdorff_bruteforce(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Exhaustive ``K_Haus`` — exponential; small domains only."""
    return _hausdorff_bruteforce(sigma, tau, _vector_kendall)


def footrule_hausdorff_bruteforce(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Exhaustive ``F_Haus`` — exponential; small domains only."""
    return _hausdorff_bruteforce(sigma, tau, _vector_footrule)
