"""Top-k distance measures in the Fagin–Kumar–Sivakumar scenario (§A.3).

In the predecessor paper ([10], SODA 2003) a top-k list is a bijection onto
``{1..k}`` with *its own* domain, and two lists are compared over their
**active domain** — the union of their items. Appendix A.3 shows the
definitions of ``K^(p)``, ``F^(ℓ)``, ``K_Haus``, ``F_Haus`` then coincide
with this paper's restricted to top-k lists, *but*: because the active
domain varies with the pair being compared, the measures are only **near
metrics** in the FKS scenario (the triangle inequality can fail across
pairs with different active domains), while they are genuine metrics over
a fixed domain.

This module implements the FKS scenario directly: a top-k list is just a
sequence of distinct items; each comparison projects both lists onto their
active domain (unlisted items of the other list go into a bottom bucket)
and evaluates the fixed-domain machinery. Experiment E12 demonstrates the
near-metric behaviour with concrete triangle violations.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import InvalidRankingError
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall

__all__ = [  # repro: noqa[RP011] — conversion wrappers delegating to instrumented metrics
    "TopKList",
    "active_domain",
    "as_partial_rankings",
    "fks_kendall",
    "fks_footrule",
    "fks_kendall_hausdorff",
    "fks_footrule_hausdorff",
]

TopKList = Sequence[Item]


def _validate(top: TopKList) -> list[Item]:
    items = list(top)
    if not items:
        raise InvalidRankingError("a top-k list must contain at least one item")
    if len(set(items)) != len(items):
        raise InvalidRankingError("a top-k list must not repeat items")
    return items


def active_domain(top1: TopKList, top2: TopKList) -> frozenset[Item]:
    """The union of the two lists' items (§A.3)."""
    return frozenset(_validate(top1)) | frozenset(_validate(top2))


def as_partial_rankings(
    top1: TopKList,
    top2: TopKList,
) -> tuple[PartialRanking, PartialRanking]:
    """Project two FKS top-k lists onto their shared active domain.

    Each becomes a partial ranking: its own items as singleton buckets in
    order, the other list's unseen items as one bottom bucket — this
    paper's top-k shape over the pair-specific domain.
    """
    domain = active_domain(top1, top2)

    def project(top: TopKList) -> PartialRanking:
        items = _validate(top)
        rest = domain - set(items)
        buckets: list[list[Item]] = [[item] for item in items]
        if rest:
            buckets.append(sorted(rest, key=repr))
        return PartialRanking(buckets)

    return project(top1), project(top2)


def fks_kendall(top1: TopKList, top2: TopKList, p: float = 0.5) -> float:
    """``K^(p)`` in the varying-active-domain scenario of [10].

    A *near metric*, not a metric: comparisons of different pairs use
    different domains, so the triangle inequality can fail (by at most a
    constant factor — see E12).
    """
    sigma, tau = as_partial_rankings(top1, top2)
    return kendall(sigma, tau, p)


def fks_footrule(top1: TopKList, top2: TopKList) -> float:
    """``F_prof`` over the pair's active domain (equals ``F^(ℓ)`` at the
    canonical location parameter, by the A.3 identity)."""
    sigma, tau = as_partial_rankings(top1, top2)
    return footrule(sigma, tau)


def fks_kendall_hausdorff(top1: TopKList, top2: TopKList) -> int:
    """``K_Haus`` over the pair's active domain (Critchlow's construction)."""
    sigma, tau = as_partial_rankings(top1, top2)
    return kendall_hausdorff_counts(sigma, tau)


def fks_footrule_hausdorff(top1: TopKList, top2: TopKList) -> float:
    """``F_Haus`` over the pair's active domain."""
    sigma, tau = as_partial_rankings(top1, top2)
    return footrule_hausdorff(sigma, tau)
