"""The four partial-ranking metrics of the paper, plus analysis tools.

Public names:

* :func:`kendall` / :func:`kendall_full` — ``K^(p)`` with penalty parameter
  ``p`` (default 1/2, i.e. ``K_prof``) and the classical Kendall tau on full
  rankings.
* :func:`footrule` / :func:`footrule_full` — ``F_prof`` (L1 on positions)
  and the classical Spearman footrule.
* :func:`kendall_hausdorff` / :func:`footrule_hausdorff` — the Hausdorff
  metrics via the Theorem 5 characterization.
* :mod:`repro.metrics.profiles` — explicit profile vectors (test oracles).
* :mod:`repro.metrics.axioms` — metric / near-metric property checking.
* :mod:`repro.metrics.equivalence` — the Theorem 7 constant-factor bounds.
* :mod:`repro.metrics.related` — tau-b, Goodman–Kruskal gamma, Spearman
  rho, Baggerly footrule (the Related Work section, executable).
* :mod:`repro.metrics.normalized` — [0, 1]-scaled variants.
* :mod:`repro.metrics.topk_fks` — the varying-active-domain top-k scenario
  of Fagin–Kumar–Sivakumar (Appendix A.3).
* :mod:`repro.metrics.fast` / :mod:`repro.metrics.batch` — the array fast
  path (``kendall_large`` etc.) and the all-pairs batch layer
  (:func:`pairwise_distance_matrix`); see ``docs/PERFORMANCE.md``.
* :mod:`repro.metrics.registry` — the metric plugin registry: every
  name-based dispatch surface resolves through it, and third-party
  distances plug in by registering a :class:`MetricPlugin`; see
  ``docs/METRICS.md``.
* :mod:`repro.metrics.plugins` — first-party plugins: the weighted
  Spearman footrule and the weighted top-difference distance.
"""

from repro.metrics.batch import (
    PairCountsMatrix,
    pair_counts_matrix,
    pairwise_distance_matrix,
)
from repro.metrics.fast import (
    count_inversions_array,
    kendall_hausdorff_large,
    kendall_large,
    pair_counts_large,
)
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    hausdorff_witnesses,
    kendall_hausdorff,
    kendall_hausdorff_counts,
)
from repro.metrics.kendall import (
    kendall,
    kendall_full,
    pair_counts,
)
from repro.metrics.normalized import (
    normalized_footrule,
    normalized_footrule_hausdorff,
    normalized_kendall,
    normalized_kendall_hausdorff,
)
from repro.metrics.registry import (
    MetricPlugin,
    canonical_metric,
    get_metric,
    metric_names,
    register_metric,
    registered_metrics,
)
from repro.metrics.related import (
    UndefinedCorrelationError,
    goodman_kruskal_gamma,
    kendall_tau_a,
    kendall_tau_b,
    spearman_rho,
)

# Imported last: registers the first-party plugins (the built-ins
# registered when repro.metrics.batch was imported above).
from repro.metrics.plugins import (
    top_difference,
    top_difference_matrix,
    weighted_footrule,
    weighted_footrule_matrix,
)

__all__ = [
    "kendall",
    "kendall_full",
    "pair_counts",
    "kendall_large",
    "kendall_hausdorff_large",
    "pair_counts_large",
    "count_inversions_array",
    "PairCountsMatrix",
    "pair_counts_matrix",
    "pairwise_distance_matrix",
    "footrule",
    "footrule_full",
    "kendall_hausdorff",
    "kendall_hausdorff_counts",
    "footrule_hausdorff",
    "hausdorff_witnesses",
    "normalized_kendall",
    "normalized_footrule",
    "normalized_kendall_hausdorff",
    "normalized_footrule_hausdorff",
    "kendall_tau_a",
    "kendall_tau_b",
    "goodman_kruskal_gamma",
    "spearman_rho",
    "UndefinedCorrelationError",
    "MetricPlugin",
    "register_metric",
    "registered_metrics",
    "metric_names",
    "canonical_metric",
    "get_metric",
    "weighted_footrule",
    "weighted_footrule_matrix",
    "top_difference",
    "top_difference_matrix",
]
