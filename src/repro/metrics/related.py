"""Related-work rank correlation measures (paper's "Related work" section).

The paper situates its metrics against earlier proposals, each of which
this module implements so the comparison is executable:

* **Kendall's tau-b** (Kendall 1945, [16]) — the classical tie-corrected
  rank correlation. The paper notes one of Kendall's variants "is a
  normalized version of the Kendall tau distance through profiles":
  concretely, ``1 - tau_b`` relates monotonically to ``K_prof``, and on
  tie-free data ``tau_a`` is an affine function of the Kendall distance.
* **Goodman–Kruskal gamma** ([13]) — concordant/discordant odds. The
  paper flags its "serious disadvantage": gamma is **undefined** when
  every pair is tied in at least one ranking (zero concordant + zero
  discordant), which this implementation surfaces as
  :class:`UndefinedCorrelationError` rather than a silent NaN.
* **Baggerly's footrule variants** ([2]) — footrule through positions
  (identical to ``F_prof``) and a normalized version.
* **Spearman's rho with ties** — included for completeness as the other
  classical tie-aware coefficient.

These are *correlations* (higher = more similar, range [-1, 1]), not
metrics; experiment E13 measures how they rank pairs relative to the
paper's metrics and demonstrates the gamma failure mode.
"""

from __future__ import annotations

import math

from repro.core.partial_ranking import PartialRanking
from repro.errors import ReproError
from repro.metrics.footrule import footrule
from repro.metrics.kendall import pair_counts

__all__ = [  # repro: noqa[RP011] — closed-form formulas over the instrumented pair_counts kernel
    "UndefinedCorrelationError",
    "kendall_tau_a",
    "kendall_tau_b",
    "goodman_kruskal_gamma",
    "spearman_rho",
    "baggerly_footrule",
    "normalized_baggerly_footrule",
]


class UndefinedCorrelationError(ReproError, ArithmeticError):
    """A correlation coefficient's denominator vanished.

    Goodman–Kruskal gamma is undefined when no pair is strictly ordered in
    both rankings; tau-b when either ranking is a single bucket. The paper
    singles this out as the serious disadvantage of the Goodman–Kruskal
    approach relative to its metrics, which are always defined.
    """


def kendall_tau_a(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Kendall's tau-a: (concordant - discordant) / all pairs.

    Ties count as neither concordant nor discordant, which silently
    shrinks the magnitude — the standard objection tau-b fixes. On
    tie-free rankings, ``tau_a = 1 - 4 K / (n(n-1))`` (an affine function
    of the Kendall distance).
    """
    counts = pair_counts(sigma, tau)
    if counts.total == 0:
        raise UndefinedCorrelationError("tau-a undefined on a single-item domain")
    return (counts.concordant - counts.discordant) / counts.total


def kendall_tau_b(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Kendall's tau-b: tie-corrected rank correlation (Kendall 1945).

    ``(C - D) / sqrt((N - T_sigma)(N - T_tau))`` where ``T_sigma`` /
    ``T_tau`` count pairs tied in each ranking. Undefined when either
    ranking ties everything.
    """
    counts = pair_counts(sigma, tau)
    tied_sigma = counts.tied_both + counts.tied_first_only
    tied_tau = counts.tied_both + counts.tied_second_only
    denominator = math.sqrt(
        (counts.total - tied_sigma) * (counts.total - tied_tau)
    )
    if denominator == 0:
        raise UndefinedCorrelationError(
            "tau-b undefined: one of the rankings ties every pair"
        )
    return (counts.concordant - counts.discordant) / denominator


def goodman_kruskal_gamma(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Goodman–Kruskal gamma: (C - D) / (C + D).

    Ignores ties entirely. Raises :class:`UndefinedCorrelationError` when
    ``C + D = 0`` — the failure mode the paper cites as the reason this
    approach is unsuitable for heavily tied database rankings. (Haveliwala
    et al. avoided the problem only because their application never
    produced such inputs.)
    """
    counts = pair_counts(sigma, tau)
    strict = counts.concordant + counts.discordant
    if strict == 0:
        raise UndefinedCorrelationError(
            "gamma undefined: no pair is strictly ordered in both rankings"
        )
    return (counts.concordant - counts.discordant) / strict


def spearman_rho(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Spearman's rho on tied data: Pearson correlation of the positions.

    Uses the average-rank (mid-rank) convention, which is exactly the
    paper's ``pos`` assignment, so this is the Pearson correlation of the
    two F-profiles. Undefined when either ranking ties everything (zero
    variance).
    """
    if sigma.domain != tau.domain:
        from repro.errors import DomainMismatchError

        raise DomainMismatchError("spearman_rho requires a common domain")
    items = sorted(sigma.domain, key=repr)
    n = len(items)
    if n == 0:
        raise UndefinedCorrelationError("rho undefined on an empty domain")
    mean = (n + 1) / 2  # positions always average to (n+1)/2
    cov = sum((sigma[x] - mean) * (tau[x] - mean) for x in items)
    var_sigma = sum((sigma[x] - mean) ** 2 for x in items)
    var_tau = sum((tau[x] - mean) ** 2 for x in items)
    if var_sigma == 0 or var_tau == 0:
        raise UndefinedCorrelationError(
            "rho undefined: one of the rankings ties every pair"
        )
    return cov / math.sqrt(var_sigma * var_tau)


def baggerly_footrule(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Baggerly's footrule on partial rankings — identical to ``F_prof``.

    Exposed under its own name so the related-work comparison in E13 can
    refer to it; the paper notes Baggerly "defined two versions of the
    Spearman footrule distance for partial rankings of which one is
    similar to our Spearman footrule metric through profiles".
    """
    return footrule(sigma, tau)


def normalized_baggerly_footrule(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Baggerly's normalized footrule: ``F_prof`` scaled into [0, 1].

    The maximum of the footrule over all pairs of rankings of a common
    n-element domain is ``floor(n^2 / 2)`` (attained by a ranking and its
    reverse), so dividing by it yields a [0, 1] dissimilarity.
    """
    n = len(sigma)
    if n <= 1:
        return 0.0
    return footrule(sigma, tau) / (n * n // 2)
