"""All-pairs distance kernels over a profile (the batch layer).

Computing an m×m distance matrix by calling a two-ranking metric m²/2
times re-derives the same per-ranking state m−1 times per ranking and pays
Python call overhead per pair. This module shares the precomputation once
per profile:

* one interned :class:`~repro.core.codec.DomainCodec` for the common
  domain (so the per-ranking dense arrays cached by
  :meth:`PartialRanking.dense_arrays
  <repro.core.partial_ranking.PartialRanking.dense_arrays>` are encoded
  exactly once);
* stacked ``(m, n)`` bucket-index / position matrices;
* for the Kendall family, an all-pairs pair classifier with two
  interchangeable strategies — a *dense* one that turns the five pair
  categories into four matrix products over ±1 sign tensors (O(m²n²)
  multiply-adds, but inside BLAS), and a *pairs* one that runs the
  O(n log n) lexsort/merge kernel of :mod:`repro.metrics.fast` per pair
  and scales to domains where the dense tensor would not fit.

Every entry is **bit-for-bit equal** to the corresponding two-ranking
metric (``kendall``, ``footrule``, ``kendall_hausdorff``,
``footrule_hausdorff``): counts are integers, positions are multiples of
½, and every float operation here is exact (sums of half-integers, integer
gemms below 2⁵³), so there is no tolerance anywhere — the test suite
asserts equality with ``==``.

The ``jobs`` keyword (default: serial; see :mod:`repro.parallel`) spreads
the per-pair strategies over a process pool; results are reassembled in
input order, so parallel runs are bit-for-bit identical to serial ones.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Union

import numpy as np
import numpy.typing as npt

from repro import obs
from repro._util import pairs
from repro.core.arena import ProfileArena
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.errors import InvalidRankingError
from repro.metrics.fast import count_inversions_array
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import PairCounts, kendall
from repro.metrics.kendall import kendall_naive  # repro: noqa[RP004] — registry metadata: stored as the kendall plugin's oracle for repro.verify; no serving path calls it
from repro.metrics.normalized import max_footrule, max_kendall
from repro.metrics.registry import MetricPlugin, get_metric, register_metric
from repro.parallel import parallel_map, parallel_map_arena, resolve_jobs

#: A batch-layer profile: either the object layer (a sequence of
#: rankings, encoded on the fly) or a shared-memory
#: :class:`~repro.core.arena.ProfileArena` (already encoded, zero-copy
#: across the pool boundary). Every kernel here accepts both and is
#: required to produce bit-identical results for them.
Profile = Union[Sequence[PartialRanking], ProfileArena]

__all__ = [
    "PairCountsMatrix",
    "profile_codec",
    "bucket_index_matrix",
    "position_matrix",
    "sign_tensor",
    "pair_counts_matrix",
    "pairwise_distance_matrix",
    "METRIC_ALIASES",
]

#: Accepted ``metric=`` spellings of the four built-ins, normalized to
#: the canonical name. Retained for back-compat; the metric plugin
#: registry (:mod:`repro.metrics.registry`) is the authoritative
#: name-resolution surface and also covers registered plugins.
METRIC_ALIASES = {
    "kendall": "kendall",
    "k_prof": "kendall",
    "footrule": "footrule",
    "f_prof": "footrule",
    "kendall_hausdorff": "kendall_hausdorff",
    "k_haus": "kendall_hausdorff",
    "footrule_hausdorff": "footrule_hausdorff",
    "f_haus": "footrule_hausdorff",
}

#: Dense pair-classification is used when m·n² stays below this many
#: tensor elements (three float64 tensors of that size are materialized).
_DENSE_BUDGET = 1 << 23

#: The tiled GEMM strategy extends the dense math to m·n² this large by
#: streaming item tiles whose sign tensors stay within ``_DENSE_BUDGET``
#: elements; beyond it, ``auto`` falls back to the per-pair kernel.
_TILED_BUDGET = 1 << 27


@dataclass(frozen=True, slots=True)
class PairCountsMatrix:
    """All-pairs pair-category counts for a profile of m rankings.

    Entry ``[i, j]`` classifies the unordered item pairs between rankings
    ``i`` ("first") and ``j`` ("second"), exactly like
    :class:`~repro.metrics.kendall.PairCounts` — ``tied_first_only[i, j]``
    is |S| with ranking ``i`` in the sigma role. The matrix of |T| values
    is the transpose, so it is exposed as a property rather than stored.
    """

    discordant: npt.NDArray[np.int64]
    tied_first_only: npt.NDArray[np.int64]
    tied_both: npt.NDArray[np.int64]
    concordant: npt.NDArray[np.int64]

    @property
    def tied_second_only(self) -> npt.NDArray[np.int64]:
        """|T| with row index in the sigma role: the transpose of |S|."""
        return self.tied_first_only.T

    def pair_counts(self, i: int, j: int) -> PairCounts:
        """The scalar :class:`PairCounts` between rankings ``i`` and ``j``."""
        return PairCounts(
            discordant=int(self.discordant[i, j]),
            tied_first_only=int(self.tied_first_only[i, j]),
            tied_second_only=int(self.tied_first_only[j, i]),
            tied_both=int(self.tied_both[i, j]),
            concordant=int(self.concordant[i, j]),
        )

    def kendall(self, p: float = 0.5) -> npt.NDArray[np.float64]:
        """The ``K^(p)`` distance matrix (m×m, float64, exact)."""
        if not 0.0 <= p <= 1.0:
            raise InvalidRankingError(f"penalty parameter p={p} outside [0, 1]")
        tied_once = self.tied_first_only + self.tied_first_only.T
        return self.discordant + p * tied_once

    def kendall_hausdorff(self) -> npt.NDArray[np.int64]:
        """The ``K_Haus`` matrix via Proposition 6: |U| + max(|S|, |T|)."""
        return self.discordant + np.maximum(self.tied_first_only, self.tied_first_only.T)


def profile_codec(rankings: Sequence[PartialRanking]) -> DomainCodec:
    """The shared :class:`DomainCodec` of a profile (validates the domain)."""
    return DomainCodec.for_profile(rankings)


def bucket_index_matrix(
    rankings: Sequence[PartialRanking], codec: DomainCodec | None = None
) -> npt.NDArray[np.int64]:
    """Stacked bucket-index vectors, shape ``(m, n)``, codec slot order."""
    if codec is None:
        codec = DomainCodec.for_profile(rankings)
    return np.stack([ranking.dense_arrays(codec)[0] for ranking in rankings])


def position_matrix(
    rankings: Sequence[PartialRanking], codec: DomainCodec | None = None
) -> npt.NDArray[np.float64]:
    """Stacked position vectors, shape ``(m, n)``, codec slot order."""
    if codec is None:
        codec = DomainCodec.for_profile(rankings)
    return np.stack([ranking.dense_arrays(codec)[1] for ranking in rankings])


def _profile_bucket_rows(profile: Profile) -> npt.NDArray[np.signedinteger[Any]]:
    """The ``(m, n)`` bucket-index matrix of either profile representation.

    Arena-backed profiles return their shared-memory view (storage dtype,
    possibly int32 — every consumer accumulates in int64); object-layer
    profiles encode through the codec as before.
    """
    if isinstance(profile, ProfileArena):
        return profile.bucket_rows
    return bucket_index_matrix(profile)


def _profile_position_rows(profile: Profile) -> npt.NDArray[np.float64]:
    """The ``(m, n)`` float64 position matrix of either representation.

    The arena decode (``half · 0.5``) is exact, so both branches return
    bit-identical matrices for the same profile.
    """
    if isinstance(profile, ProfileArena):
        return profile.positions
    return position_matrix(profile, DomainCodec.for_profile(profile))


# ----------------------------------------------------------------------
# Pair classification
# ----------------------------------------------------------------------


def sign_tensor(
    bucket_rows: npt.NDArray[np.signedinteger[Any]],
) -> npt.NDArray[np.float64]:
    """Flattened per-ranking pair-sign tensors, shape ``(m, n·n)``.

    ``S[r, i·n + j] = sign(bucket_r(i) − bucket_r(j))`` — +1 when ranking
    ``r`` places item ``j`` strictly ahead of item ``i``, −1 when behind,
    0 when tied. ``|S|`` is the strict-order indicator and ``1 − |S|`` the
    tie indicator, so one tensor feeds both the dense pair classifier
    here and the Kemeny pair-cost accumulation in
    :mod:`repro.aggregate.kemeny`. Entries are exact small integers in
    float64.
    """
    m, n = bucket_rows.shape
    sign = np.sign(bucket_rows[:, :, None] - bucket_rows[:, None, :]).reshape(m, n * n)
    return sign.astype(np.float64)


def _tied_per_ranking(
    bucket_rows: npt.NDArray[np.signedinteger[Any]],
) -> npt.NDArray[np.int64]:
    """Per ranking: the number of item pairs tied in that ranking."""
    m = bucket_rows.shape[0]
    tied = np.empty(m, dtype=np.int64)
    for r in range(m):
        sizes = np.bincount(bucket_rows[r])
        tied[r] = int((sizes * (sizes - 1) // 2).sum())
    return tied


def _classify_rows(
    x: npt.NDArray[np.signedinteger[Any]], y: npt.NDArray[np.signedinteger[Any]]
) -> tuple[int, int]:
    """(discordant, tied_both) between two bucket-index rows.

    Same lexsort/run-length/merge derivation as
    :func:`repro.metrics.fast.pair_counts_large`.
    """
    order = np.lexsort((y, x))
    xs, ys = x[order], y[order]
    n = len(xs)
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = (xs[1:] != xs[:-1]) | (ys[1:] != ys[:-1])
    run_lengths = np.diff(np.append(np.flatnonzero(change), n))
    tied_both = int((run_lengths * (run_lengths - 1) // 2).sum())
    return count_inversions_array(ys), tied_both


def _classify_chunk(
    task: tuple[npt.NDArray[np.int64], list[tuple[int, int]]],
) -> list[tuple[int, int]]:
    """Pool worker: classify a chunk of (i, j) index pairs."""
    bucket_rows, index_pairs = task
    return [_classify_rows(bucket_rows[i], bucket_rows[j]) for i, j in index_pairs]


def _upper_triangle(m: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(m) for j in range(i + 1, m)]


def _chunk(items: list[tuple[int, int]], n_chunks: int) -> list[list[tuple[int, int]]]:
    """Split into up to ``n_chunks`` contiguous, order-preserving chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    step = -(-len(items) // n_chunks)
    return [items[k : k + step] for k in range(0, len(items), step)]


def _pair_counts_dense(
    bucket_rows: npt.NDArray[np.signedinteger[Any]],
) -> PairCountsMatrix:
    """Classify all pairs at once via four sign-tensor matrix products.

    Per ranking ``r`` build the flattened n×n sign tensor
    ``S[r, i·n+j] = sign(bucket_r(i) − bucket_r(j))``, its magnitude
    ``A = |S|`` and tie indicator ``Z = 1 − A``. Then, writing C/D/S/T/B
    for the five pair categories over *unordered* pairs,

        S·Sᵀ = 2(C − D),   A·Aᵀ = 2(C + D),   Z·Aᵀ = 2|S|,   Z·Zᵀ = 2B + n.

    Every entry is an integer far below 2⁵³, so the float64 products are
    exact and the final rounding is a formality.
    """
    m, n = bucket_rows.shape
    sign = sign_tensor(bucket_rows)
    strict = np.abs(sign)
    tied = 1.0 - strict
    g_ss = sign @ sign.T
    g_aa = strict @ strict.T
    g_za = tied @ strict.T
    g_zz = tied @ tied.T
    discordant = np.rint((g_aa - g_ss) / 4.0).astype(np.int64)
    concordant = np.rint((g_aa + g_ss) / 4.0).astype(np.int64)
    tied_first_only = np.rint(g_za / 2.0).astype(np.int64)
    tied_both = np.rint((g_zz - n) / 2.0).astype(np.int64)
    return PairCountsMatrix(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def _pair_counts_dense_tiled(
    bucket_rows: npt.NDArray[np.signedinteger[Any]],
) -> PairCountsMatrix:
    """The dense classifier, cache-blocked over item tiles.

    Identical math to :func:`_pair_counts_dense`, but the ``(m, n·n)``
    sign tensor is never materialized: item indices ``i`` are processed in
    tiles sized so each partial tensor stays within ``_DENSE_BUDGET``
    elements, and the four gram matrices accumulate per-tile products.
    Each partial product is an exact integer in float64 and integer
    addition in float64 is exact below 2⁵³, so the accumulated grams —
    and therefore the final counts — are **bit-identical** to the untiled
    strategy at any tile size (``relation:tiled-gemm-agreement`` and the
    pair-counts oracle assert this).
    """
    m, n = bucket_rows.shape
    tile = max(1, _DENSE_BUDGET // max(1, m * n))
    g_ss = np.zeros((m, m), dtype=np.float64)
    g_aa = np.zeros((m, m), dtype=np.float64)
    g_za = np.zeros((m, m), dtype=np.float64)
    g_zz = np.zeros((m, m), dtype=np.float64)
    for start in range(0, n, tile):
        block = bucket_rows[:, start : start + tile]
        width = block.shape[1]
        sign = (
            np.sign(block[:, :, None] - bucket_rows[:, None, :])
            .reshape(m, width * n)
            .astype(np.float64)
        )
        strict = np.abs(sign)
        tied = 1.0 - strict
        g_ss += sign @ sign.T
        g_aa += strict @ strict.T
        g_za += tied @ strict.T
        g_zz += tied @ tied.T
        obs.add("metrics.batch.tiles")
    discordant = np.rint((g_aa - g_ss) / 4.0).astype(np.int64)
    concordant = np.rint((g_aa + g_ss) / 4.0).astype(np.int64)
    tied_first_only = np.rint(g_za / 2.0).astype(np.int64)
    tied_both = np.rint((g_zz - n) / 2.0).astype(np.int64)
    return PairCountsMatrix(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def _classify_chunk_arena(
    arena: ProfileArena, index_pairs: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Arena worker twin of :func:`_classify_chunk`: rows come from shm."""
    rows = arena.bucket_rows
    return [_classify_rows(rows[i], rows[j]) for i, j in index_pairs]


def _pair_counts_pairs(
    bucket_rows: npt.NDArray[np.signedinteger[Any]],
    jobs: int | None,
    arena: ProfileArena | None = None,
) -> PairCountsMatrix:
    """Classify all pairs with the per-pair O(n log n) kernel.

    With an arena, pool tasks carry only the handle and index pairs —
    workers map the bucket matrix instead of unpickling it.
    """
    m, n = bucket_rows.shape
    total = pairs(n)
    tied = _tied_per_ranking(bucket_rows)
    index_pairs = _upper_triangle(m)
    chunks = _chunk(index_pairs, resolve_jobs(jobs))
    if arena is not None:
        results = parallel_map_arena(_classify_chunk_arena, chunks, arena, jobs=jobs)
    else:
        results = parallel_map(
            _classify_chunk, [(bucket_rows, chunk) for chunk in chunks], jobs=jobs
        )

    discordant = np.zeros((m, m), dtype=np.int64)
    tied_first_only = np.zeros((m, m), dtype=np.int64)
    tied_both = np.zeros((m, m), dtype=np.int64)
    concordant = np.full((m, m), total, dtype=np.int64)
    for chunk, counts in zip(chunks, results):
        for (i, j), (disc, both) in zip(chunk, counts):
            discordant[i, j] = discordant[j, i] = disc
            tied_both[i, j] = tied_both[j, i] = both
            tied_first_only[i, j] = tied[i] - both
            tied_first_only[j, i] = tied[j] - both
            concordant[i, j] = concordant[j, i] = (
                total - disc - tied_first_only[i, j] - tied_first_only[j, i] - both
            )
    for r in range(m):
        tied_both[r, r] = tied[r]
        concordant[r, r] = total - tied[r]
    return PairCountsMatrix(
        discordant=discordant,
        tied_first_only=tied_first_only,
        tied_both=tied_both,
        concordant=concordant,
    )


def pair_counts_matrix(
    rankings: Profile,
    *,
    strategy: str = "auto",
    jobs: int | None = None,
) -> PairCountsMatrix:
    """All-pairs pair-category counts for a profile.

    ``strategy='dense'`` forces the sign-tensor gemm path (O(m·n²) memory),
    ``'tiled'`` the cache-blocked gemm path (O(m·n) memory per tile, same
    math), ``'pairs'`` the per-pair lexsort/merge path. ``'auto'`` picks
    dense below ``_DENSE_BUDGET`` tensor elements, tiled up to
    ``_TILED_BUDGET``, pairs beyond. All strategies produce identical
    matrices — bit for bit; the test suite and
    ``relation:tiled-gemm-agreement`` assert it. ``rankings`` may be a
    sequence of rankings or a :class:`~repro.core.arena.ProfileArena`.
    """
    arena = rankings if isinstance(rankings, ProfileArena) else None
    bucket_rows = _profile_bucket_rows(rankings)
    m, n = bucket_rows.shape
    if strategy == "auto":
        work = m * n * n
        if work <= _DENSE_BUDGET:
            strategy = "dense"
        elif work <= _TILED_BUDGET:
            strategy = "tiled"
        else:
            strategy = "pairs"
    if strategy not in ("dense", "tiled", "pairs"):
        raise ValueError(
            f"unknown strategy {strategy!r}; expected 'auto', 'dense', 'tiled' or 'pairs'"
        )
    if not obs.enabled():
        if strategy == "dense":
            return _pair_counts_dense(bucket_rows)
        if strategy == "tiled":
            return _pair_counts_dense_tiled(bucket_rows)
        return _pair_counts_pairs(bucket_rows, jobs, arena)
    with obs.trace("metrics.batch.pair_counts_matrix", m=m, n=n, strategy=strategy):
        # every strategy classifies all n-choose-2 item pairs of each of
        # the m rankings' pairings, i.e. m·n(n−1)/2 pair slots per role
        obs.add("metrics.batch.pairs", m * pairs(n))
        obs.add("metrics.batch.ranking_pairs", pairs(m))
        if strategy == "dense":
            return _pair_counts_dense(bucket_rows)
        if strategy == "tiled":
            return _pair_counts_dense_tiled(bucket_rows)
        return _pair_counts_pairs(bucket_rows, jobs, arena)


# ----------------------------------------------------------------------
# Footrule family
# ----------------------------------------------------------------------


def _footrule_chunk(
    task: tuple[npt.NDArray[np.float64], list[tuple[int, int]]],
) -> list[float]:
    """Pool worker: F_prof for a chunk of (i, j) index pairs."""
    position_rows, index_pairs = task
    return [
        float(np.abs(position_rows[i] - position_rows[j]).sum()) for i, j in index_pairs
    ]


def _fhaus_rows(
    x: npt.NDArray[np.signedinteger[Any]], y: npt.NDArray[np.signedinteger[Any]]
) -> float:
    """``F_Haus`` between two bucket-index rows via array Theorem 5 witnesses.

    ``np.lexsort`` is stable, so residual ties break by slot index — i.e.
    by the codec's canonical order, which is exactly the default ``rho`` of
    :func:`repro.metrics.hausdorff.hausdorff_witnesses` (both sort by the
    canonical bucket key). The value is rho-independent anyway (Theorem 5),
    and all sums are integers, so this matches the object path bit for bit.
    """
    n = x.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    pos = np.empty((4, n), dtype=np.float64)
    pos[0, np.lexsort((-y, x))] = ranks  # sigma_1 = rho * tau^R * sigma
    pos[1, np.lexsort((x, y))] = ranks  # tau_1   = rho * sigma * tau
    pos[2, np.lexsort((y, x))] = ranks  # sigma_2 = rho * tau * sigma
    pos[3, np.lexsort((-x, y))] = ranks  # tau_2   = rho * sigma^R * tau
    f_1 = float(np.abs(pos[0] - pos[1]).sum())
    f_2 = float(np.abs(pos[2] - pos[3]).sum())
    return max(f_1, f_2)


def _fhaus_chunk(
    task: tuple[npt.NDArray[np.int64], list[tuple[int, int]]],
) -> list[float]:
    """Pool worker: F_Haus for a chunk of (i, j) index pairs."""
    bucket_rows, index_pairs = task
    return [_fhaus_rows(bucket_rows[i], bucket_rows[j]) for i, j in index_pairs]


def _footrule_chunk_arena(
    arena: ProfileArena, index_pairs: list[tuple[int, int]]
) -> list[float]:
    """Arena worker: F_prof over the integer half-position fast path.

    ``|pos_i − pos_j| = ½·|half_i − half_j|``: the differences are taken
    in int64 (the storage may be int32 — accumulating there could
    overflow, and RP014 would rightly flag it) and halved once at the
    end. Every float64 sum of half-integers in the object path is exact,
    so the two paths agree bit for bit.
    """
    half = arena.half_position_rows
    out: list[float] = []
    for i, j in index_pairs:
        diff = half[i].astype(np.int64) - half[j].astype(np.int64)
        out.append(float(np.abs(diff).sum()) * 0.5)
    return out


def _fhaus_chunk_arena(
    arena: ProfileArena, index_pairs: list[tuple[int, int]]
) -> list[float]:
    """Arena worker twin of :func:`_fhaus_chunk`."""
    rows = arena.bucket_rows
    return [_fhaus_rows(rows[i], rows[j]) for i, j in index_pairs]


def _symmetric_from_chunks(
    m: int,
    chunks: list[list[tuple[int, int]]],
    results: list[list[float]],
) -> npt.NDArray[np.float64]:
    matrix = np.zeros((m, m), dtype=np.float64)
    for chunk, values in zip(chunks, results):
        for (i, j), value in zip(chunk, values):
            matrix[i, j] = matrix[j, i] = value
    return matrix


# ----------------------------------------------------------------------
# The batch entry point
# ----------------------------------------------------------------------


def pairwise_distance_matrix(
    rankings: Profile,
    metric: str = "kendall",
    *,
    p: float = 0.5,
    strategy: str = "auto",
    jobs: int | None = None,
) -> npt.NDArray[np.float64]:
    """The m×m distance matrix of a profile under one of the four metrics.

    ``metric`` accepts any spelling registered in the metric plugin
    registry (:mod:`repro.metrics.registry`): the canonical names
    ``kendall`` / ``footrule`` / ``kendall_hausdorff`` /
    ``footrule_hausdorff``, the paper aliases ``k_prof`` / ``f_prof`` /
    ``k_haus`` / ``f_haus``, and every registered plugin (e.g.
    ``weighted_footrule``, ``top_difference``). Unknown names raise the
    registry's shared :class:`~repro.errors.UnknownMetricError` listing
    all registered spellings. ``p`` applies to the Kendall metric only;
    ``strategy`` to the Kendall-family pair classification (see
    :func:`pair_counts_matrix`; plugin kernels choose their own strategy
    and ignore it); ``jobs`` spreads the per-pair code paths over a
    process pool (:mod:`repro.parallel`). ``rankings`` may be a sequence
    of rankings or a :class:`~repro.core.arena.ProfileArena`, in which
    case pooled workers map the profile zero-copy instead of unpickling
    rows.

    Entries are bit-for-bit equal to the two-ranking metrics; the matrix
    is symmetric with a zero diagonal.
    """
    plugin = get_metric(metric)
    canonical = plugin.name

    if not obs.enabled():
        if plugin.builtin:
            return _pairwise_distance_matrix_impl(
                rankings, canonical, p=p, strategy=strategy, jobs=jobs
            )
        return plugin.batch(rankings, p=p, jobs=jobs)
    with obs.trace(
        "metrics.batch.pairwise_distance_matrix", metric=canonical, m=len(rankings)
    ):
        # exact invocation count: the serving layer's coalescing tests
        # assert "N requests, one matrix call" against this counter
        obs.add("metrics.batch.matrix_calls")
        if canonical in ("footrule", "footrule_hausdorff") or not plugin.builtin:
            # the Kendall family counts its ranking pairs inside
            # pair_counts_matrix; counting here too would double-book
            obs.add("metrics.batch.ranking_pairs", pairs(len(rankings)))
        if plugin.builtin:
            return _pairwise_distance_matrix_impl(
                rankings, canonical, p=p, strategy=strategy, jobs=jobs
            )
        return plugin.batch(rankings, p=p, jobs=jobs)


def _pairwise_distance_matrix_impl(
    rankings: Profile,
    canonical: str,
    *,
    p: float,
    strategy: str,
    jobs: int | None,
) -> npt.NDArray[np.float64]:
    if canonical == "kendall":
        counts = pair_counts_matrix(rankings, strategy=strategy, jobs=jobs)
        return counts.kendall(p)
    if canonical == "kendall_hausdorff":
        counts = pair_counts_matrix(rankings, strategy=strategy, jobs=jobs)
        return counts.kendall_hausdorff().astype(np.float64)

    arena = rankings if isinstance(rankings, ProfileArena) else None
    m = len(rankings)
    index_pairs = _upper_triangle(m)
    chunks = _chunk(index_pairs, resolve_jobs(jobs))
    if canonical == "footrule":
        if arena is not None:
            results = parallel_map_arena(_footrule_chunk_arena, chunks, arena, jobs=jobs)
        else:
            position_rows = _profile_position_rows(rankings)
            results = parallel_map(
                _footrule_chunk, [(position_rows, chunk) for chunk in chunks], jobs=jobs
            )
    else:  # footrule_hausdorff
        if arena is not None:
            results = parallel_map_arena(_fhaus_chunk_arena, chunks, arena, jobs=jobs)
        else:
            bucket_rows = bucket_index_matrix(
                rankings, DomainCodec.for_profile(rankings)
            )
            results = parallel_map(
                _fhaus_chunk, [(bucket_rows, chunk) for chunk in chunks], jobs=jobs
            )
    return _symmetric_from_chunks(m, chunks, results)


# ----------------------------------------------------------------------
# Built-in plugin registration
# ----------------------------------------------------------------------


def _builtin_batch(canonical: str) -> Any:
    """The registry-facing batch kernel of one built-in metric."""

    def call(
        profile: Profile,
        *,
        p: float = 0.5,
        strategy: str = "auto",
        jobs: int | None = None,
    ) -> npt.NDArray[np.float64]:
        return _pairwise_distance_matrix_impl(
            profile, canonical, p=p, strategy=strategy, jobs=jobs
        )

    return call


def _kendall_hausdorff_scalar(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``K_Haus`` as a float-returning scalar kernel (counts are ints)."""
    return float(kendall_hausdorff_counts(sigma, tau))


# The four paper metrics register into the plugin registry on import, so
# every name-based dispatch surface resolves them exactly like plugins.
# Their differential oracles and metamorphic relations stay hand-curated
# in repro.verify (the registry `oracle` below is the independent naive /
# object-layer reference); only non-builtin plugins get auto-contributed
# verify checks.
register_metric(
    MetricPlugin(
        name="kendall",
        aliases=("k_prof",),
        citation="K^(p) with tie penalty p (paper §2.1); near metric for p < 1/2",
        scalar=kendall,
        batch=_builtin_batch("kendall"),
        oracle=kendall_naive,
        axiom_class="near-metric",
        p_range=(0.0, 1.0),
        max_value=max_kendall,
        builtin=True,
    )
)
register_metric(
    MetricPlugin(
        name="footrule",
        aliases=("f_prof",),
        citation="F_prof: L1 on position vectors (paper §2.2)",
        scalar=footrule,
        batch=_builtin_batch("footrule"),
        oracle=footrule,
        axiom_class="metric",
        p_range=None,
        max_value=max_footrule,
        builtin=True,
    )
)
register_metric(
    MetricPlugin(
        name="kendall_hausdorff",
        aliases=("k_haus",),
        citation="K_Haus via the Proposition 6 closed form",
        scalar=_kendall_hausdorff_scalar,
        batch=_builtin_batch("kendall_hausdorff"),
        oracle=_kendall_hausdorff_scalar,
        axiom_class="metric",
        p_range=None,
        max_value=max_kendall,
        builtin=True,
    )
)
register_metric(
    MetricPlugin(
        name="footrule_hausdorff",
        aliases=("f_haus",),
        citation="F_Haus via the Theorem 5 witnesses",
        scalar=footrule_hausdorff,
        batch=_builtin_batch("footrule_hausdorff"),
        oracle=footrule_hausdorff,
        axiom_class="metric",
        p_range=None,
        max_value=max_footrule,
        builtin=True,
    )
)
