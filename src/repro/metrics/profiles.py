"""Explicit profile vectors (paper §3.1).

The paper defines ``K_prof`` and ``F_prof`` as L1 distances between compact
summaries ("profiles") of a partial ranking:

* the **K-profile** is indexed by ordered pairs ``(i, j)`` of distinct
  items, with entry +1/4 if ``sigma(i) < sigma(j)``, 0 if tied, and -1/4 if
  ``sigma(i) > sigma(j)`` (the quarter instead of a half because each
  unordered pair appears twice);
* the **F-profile** is simply the position vector ``d -> sigma(d)``.

These explicit vectors are quadratic-sized, so application code should use
:func:`repro.metrics.kendall.kendall` and
:func:`repro.metrics.footrule.footrule`; the vectors exist to make the
"profile metric = penalty metric" identity directly testable.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import DomainMismatchError

__all__ = ["k_profile", "f_profile", "k_profile_l1", "f_profile_l1"]  # repro: noqa[RP011] — deliberately quadratic reference profiles used as test oracles


def k_profile(sigma: PartialRanking) -> dict[tuple[Item, Item], float]:
    """The K-profile: ordered-pair vector with entries in {-1/4, 0, +1/4}."""
    profile: dict[tuple[Item, Item], float] = {}
    for i, j in permutations(sigma.domain, 2):
        if sigma[i] < sigma[j]:
            profile[(i, j)] = 0.25
        elif sigma[i] > sigma[j]:
            profile[(i, j)] = -0.25
        else:
            profile[(i, j)] = 0.0
    return profile


def f_profile(sigma: PartialRanking) -> dict[Item, float]:
    """The F-profile: the position vector ``d -> sigma(d)``."""
    return sigma.positions


def k_profile_l1(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``K_prof`` computed literally as the L1 distance between K-profiles.

    Quadratic; equals ``kendall(sigma, tau, p=1/2)`` (property-tested).
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("profiles require a common domain")
    ps, pt = k_profile(sigma), k_profile(tau)
    return sum(abs(ps[pair] - pt[pair]) for pair in ps)


def f_profile_l1(sigma: PartialRanking, tau: PartialRanking) -> float:
    """``F_prof`` computed literally as the L1 distance between F-profiles."""
    if sigma.domain != tau.domain:
        raise DomainMismatchError("profiles require a common domain")
    fs, ft = f_profile(sigma), f_profile(tau)
    return sum(abs(fs[item] - ft[item]) for item in fs)
