"""Equivalence of the four metrics (paper §5, Theorem 7).

Theorem 7 proves the four metrics are within constant multiples of each
other via three pairwise inequalities:

* (4)  ``K_Haus <= F_Haus <= 2 K_Haus``      (Theorem 20)
* (5)  ``K_prof <= F_prof <= 2 K_prof``      (Theorem 24, the hard one)
* (6)  ``K_prof <= K_Haus <= 2 K_prof``      (Lemma 25)

together with the classical Diaconis–Graham inequalities (1)
``K <= F <= 2 K`` on full rankings. This module evaluates all four metrics
on a pair at once, checks every proved inequality, and records the observed
ratios so experiment E3 can report empirical tightness.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from statistics import mean

from repro.core.partial_ranking import PartialRanking
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall

__all__ = [  # repro: noqa[RP011] — bound-checking oracles over instrumented metrics
    "MetricBundle",
    "metric_bundle",
    "PROVED_BOUNDS",
    "check_proved_bounds",
    "RatioSummary",
    "summarize_ratios",
]


@dataclass(frozen=True, slots=True)
class MetricBundle:
    """All four metric values for one pair of partial rankings."""

    k_prof: float
    f_prof: float
    k_haus: float
    f_haus: float

    def value(self, name: str) -> float:
        try:
            return {
                "k_prof": self.k_prof,
                "f_prof": self.f_prof,
                "k_haus": self.k_haus,
                "f_haus": self.f_haus,
            }[name]
        except KeyError:
            raise KeyError(f"unknown metric name {name!r}") from None


def metric_bundle(sigma: PartialRanking, tau: PartialRanking) -> MetricBundle:
    """Evaluate ``K_prof``, ``F_prof``, ``K_Haus``, ``F_Haus`` on one pair."""
    return MetricBundle(
        k_prof=kendall(sigma, tau),
        f_prof=footrule(sigma, tau),
        k_haus=float(kendall_hausdorff_counts(sigma, tau)),
        f_haus=footrule_hausdorff(sigma, tau),
    )


#: The inequalities proved in §5, as (lower metric, upper metric, factor)
#: meaning ``lower <= upper <= factor * lower``.
PROVED_BOUNDS: tuple[tuple[str, str, float], ...] = (
    ("k_haus", "f_haus", 2.0),  # eq. (4), Theorem 20
    ("k_prof", "f_prof", 2.0),  # eq. (5), Theorem 24
    ("k_prof", "k_haus", 2.0),  # eq. (6), Lemma 25
)

_ABS_TOL = 1e-9


def check_proved_bounds(bundle: MetricBundle) -> list[str]:
    """Return human-readable descriptions of any violated proved bound.

    An empty list means the pair satisfies every inequality of Theorem 7.
    """
    failures: list[str] = []
    for low_name, high_name, factor in PROVED_BOUNDS:
        low = bundle.value(low_name)
        high = bundle.value(high_name)
        if low > high + _ABS_TOL:
            failures.append(f"{low_name} = {low} exceeds {high_name} = {high}")
        if high > factor * low + _ABS_TOL:
            failures.append(f"{high_name} = {high} exceeds {factor} * {low_name} = {factor * low}")
    return failures


@dataclass(frozen=True, slots=True)
class RatioSummary:
    """Observed ratio statistics for one proved bound over a sample."""

    lower_metric: str
    upper_metric: str
    proved_factor: float
    min_ratio: float
    mean_ratio: float
    max_ratio: float
    samples: int

    @property
    def within_bounds(self) -> bool:
        return 1.0 - _ABS_TOL <= self.min_ratio and self.max_ratio <= self.proved_factor + _ABS_TOL


def summarize_ratios(
    pairs: Iterable[tuple[PartialRanking, PartialRanking]],
) -> list[RatioSummary]:
    """Measure ``upper / lower`` across a sample of ranking pairs.

    Pairs where the lower metric is 0 are skipped (both metrics are then 0
    by regularity plus the proved lower bound). Returns one summary per
    bound in :data:`PROVED_BOUNDS`.
    """
    ratios: dict[tuple[str, str], list[float]] = {
        (low, high): [] for low, high, _ in PROVED_BOUNDS
    }
    for sigma, tau in pairs:
        bundle = metric_bundle(sigma, tau)
        for low_name, high_name, _ in PROVED_BOUNDS:
            low = bundle.value(low_name)
            if low > 0:
                ratios[(low_name, high_name)].append(bundle.value(high_name) / low)
    summaries = []
    for low_name, high_name, factor in PROVED_BOUNDS:
        observed = ratios[(low_name, high_name)]
        if not observed:
            continue
        summaries.append(
            RatioSummary(
                lower_metric=low_name,
                upper_metric=high_name,
                proved_factor=factor,
                min_ratio=min(observed),
                mean_ratio=mean(observed),
                max_ratio=max(observed),
                samples=len(observed),
            )
        )
    return summaries
