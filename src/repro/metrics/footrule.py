"""Spearman footrule metrics on partial rankings (paper §2.2, §3.1).

``F_prof`` is simply the L1 distance between position vectors (the
F-profiles): ``F_prof(sigma, tau) = sum_d |sigma(d) - tau(d)|``. On full
rankings this is the classical Spearman footrule. Because every position is
a multiple of one half, all arithmetic here is exact in floating point.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.analysis.contracts import checked_metric
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError

__all__ = ["footrule", "footrule_full", "l1_distance"]


def l1_distance(f: Mapping[Item, float], g: Mapping[Item, float]) -> float:
    """The L1 distance between two functions given as mappings.

    Both mappings must have exactly the same key set (the shared domain
    ``D`` of the paper's ``L1(f, g)`` notation).
    """
    if f.keys() != g.keys():
        raise DomainMismatchError("L1 distance requires functions on a common domain")
    return sum(abs(f[item] - g[item]) for item in f)


@checked_metric()
def footrule(sigma: PartialRanking, tau: PartialRanking) -> float:
    """The footrule metric ``F_prof`` between two partial rankings.

    This is the L1 distance between the two F-profiles (position vectors);
    it is automatically a metric. Runs in O(n).
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError(
            f"rankings must share a domain (sizes {len(sigma)} and {len(tau)})"
        )
    if not obs.enabled():
        return sum(abs(sigma[item] - tau[item]) for item in sigma.domain)
    with obs.trace("metrics.footrule", n=len(sigma)):
        obs.add("metrics.footrule.items", len(sigma))
        return sum(abs(sigma[item] - tau[item]) for item in sigma.domain)


def footrule_full(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Classical Spearman footrule between two *full* rankings (§2.2)."""
    if not sigma.is_full or not tau.is_full:
        raise InvalidRankingError("footrule_full requires full rankings; use footrule() instead")
    return footrule(sigma, tau)
