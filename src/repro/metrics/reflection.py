"""The reflection construction behind Theorem 24 (§A.5.2).

The paper's hardest equivalence — ``K_prof <= F_prof <= 2 K_prof`` (eq. 5)
— is proved by lifting a pair of partial rankings to a pair of *full*
rankings on a doubled domain and invoking the classical Diaconis–Graham
inequality there. The machinery, all implemented here:

* **Reflection**: each item ``i`` gets a mirror ``i#``; the reflected
  partial ranking ``sigma#`` over ``D ∪ D#`` places ``i`` and ``i#`` in
  the (doubled) bucket of ``i``, so ``sigma#(i) = sigma#(i#) =
  2 sigma(i) - 1/2``.
* **pi-natural**: a full ranking ``pi`` on ``D`` extends to ``pi♮`` on
  ``D ∪ D#`` ranking D in ``pi`` order, then D# in *reverse* ``pi`` order.
* **sigma_pi** ``= pi♮ * sigma#``: a full ranking in which every bucket
  reads ``a, b, c, c#, b#, a#`` — each element faces its mirror across the
  bucket midpoint, giving the *reflected-duplicate* identity (eq. 7)
  ``(sigma_pi(d) + sigma_pi(d#)) / 2 = 2 sigma(d) - 1/2``.
* **Lemma 21**: ``K(sigma_pi, tau_pi) = 4 K_prof(sigma, tau)`` for *every*
  ``pi``.
* **Nesting** (the obstruction for F): ``d`` is nested if the interval
  ``[sigma_pi(d), sigma_pi(d#)]`` strictly contains — or is strictly
  contained in — ``[tau_pi(d), tau_pi(d#)]``.
* **Lemma 22**: with no nested elements,
  ``F(sigma_pi, tau_pi) = 4 F_prof(sigma, tau)``.
* **Lemma 23**: a nesting-free ``pi`` always exists; the paper's proof is
  constructive (repeatedly swap the first-nested element with a carefully
  chosen bucket-mate, strictly increasing the "first nest"), and
  :func:`nesting_free_permutation` implements it verbatim.

Together these make Theorem 24 executable: the property tests rederive
eq. (5) from the classical full-ranking inequality through this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.partial_ranking import Item, PartialRanking
from repro.core.refine import star
from repro.errors import DomainMismatchError, ReproError

__all__ = [  # repro: noqa[RP011] — structural reflection helpers, no kernel work
    "Mirror",
    "reflect",
    "pi_natural",
    "reflected_refinement",
    "mirror_interval",
    "is_nested",
    "nested_elements",
    "nesting_free_permutation",
]


@dataclass(frozen=True, slots=True)
class Mirror:
    """The mirror image ``i#`` of a domain item (the paper's ``i♯``)."""

    item: Item

    def __repr__(self) -> str:
        return f"{self.item!r}#"


def reflect(sigma: PartialRanking) -> PartialRanking:
    """The reflected partial ranking ``sigma#`` over ``D ∪ D#``.

    Each bucket ``B`` becomes ``B ∪ {i# : i in B}``; a direct calculation
    shows the new position of every ``i`` and ``i#`` is
    ``2 sigma(i) - 1/2`` (tested).
    """
    return PartialRanking(
        [list(bucket) + [Mirror(item) for item in bucket] for bucket in sigma.buckets]
    )


def pi_natural(pi: PartialRanking) -> PartialRanking:
    """Extend a full ranking on ``D`` to ``pi♮`` on ``D ∪ D#``.

    ``pi♮`` ranks the original items first (in ``pi`` order) and then the
    mirrors in *reverse* ``pi`` order: ``pi♮(d) = pi(d)``,
    ``pi♮(d#) = 2|D| + 1 - pi(d)``.
    """
    if not pi.is_full:
        raise DomainMismatchError("pi must be a full ranking on the base domain")
    order = pi.items_in_order()
    return PartialRanking.from_sequence(
        order + [Mirror(item) for item in reversed(order)]
    )


def reflected_refinement(sigma: PartialRanking, pi: PartialRanking) -> PartialRanking:
    """The full ranking ``sigma_pi = pi♮ * (sigma#)``.

    Within each doubled bucket the originals appear in ``pi`` order
    followed by the mirrors in reverse ``pi`` order — the palindromic
    ``a, b, c, c#, b#, a#`` layout that makes every element face its
    mirror across the bucket midpoint.
    """
    if pi.domain != sigma.domain:
        raise DomainMismatchError("pi must rank exactly sigma's domain")
    return star(pi_natural(pi), reflect(sigma))


def mirror_interval(
    d: Item, sigma_pi: PartialRanking
) -> tuple[float, float]:
    """The interval ``[sigma_pi(d), sigma_pi(d#)]`` spanned by ``d`` and its mirror."""
    return sigma_pi[d], sigma_pi[Mirror(d)]


def _strictly_contains(
    outer: tuple[float, float], inner: tuple[float, float]
) -> bool:
    """The paper's ``⊐`` relation: containment with both endpoints strict."""
    return outer[0] < inner[0] and inner[1] < outer[1]


def is_nested(d: Item, sigma_pi: PartialRanking, tau_pi: PartialRanking) -> bool:
    """True if ``d``'s sigma-interval and tau-interval strictly nest."""
    sigma_interval = mirror_interval(d, sigma_pi)
    tau_interval = mirror_interval(d, tau_pi)
    return _strictly_contains(sigma_interval, tau_interval) or _strictly_contains(
        tau_interval, sigma_interval
    )


def nested_elements(
    sigma: PartialRanking,
    tau: PartialRanking,
    pi: PartialRanking,
) -> list[Item]:
    """All base-domain elements nested with respect to ``pi``."""
    sigma_pi = reflected_refinement(sigma, pi)
    tau_pi = reflected_refinement(tau, pi)
    return [d for d in sorted(sigma.domain, key=repr) if is_nested(d, sigma_pi, tau_pi)]


def nesting_free_permutation(
    sigma: PartialRanking,
    tau: PartialRanking,
    initial: PartialRanking | None = None,
) -> PartialRanking:
    """Construct a full ranking ``pi`` with no nested elements (Lemma 23).

    Follows the paper's proof: while some element is nested, take the
    nested element ``a`` with minimal ``pi(a)`` (the *first nest*); letting
    the sigma-interval be the outer one (else swap the roles of sigma and
    tau), pick a bucket-mate ``b`` of ``a`` whose own sigma-interval sits
    strictly inside ``a``'s but whose tau-interval does not (such a ``b``
    exists by counting); swapping ``a`` and ``b`` in ``pi`` strictly
    increases the first nest, so at most ``|D|`` rounds suffice.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("rankings must share a domain")
    if initial is None:
        from repro.core.refine import common_full_ranking

        pi = common_full_ranking(sigma)
    else:
        if not initial.is_full or initial.domain != sigma.domain:
            raise DomainMismatchError("initial must be a full ranking of the domain")
        pi = initial

    max_rounds = len(sigma) + 1
    for _ in range(max_rounds):
        sigma_pi = reflected_refinement(sigma, pi)
        tau_pi = reflected_refinement(tau, pi)
        nested = [d for d in sigma.domain if is_nested(d, sigma_pi, tau_pi)]
        if not nested:
            return pi
        a = min(nested, key=lambda d: pi[d])

        # orient so that `outer` is the ranking whose interval for `a`
        # strictly contains the other's
        if _strictly_contains(
            mirror_interval(a, sigma_pi), mirror_interval(a, tau_pi)
        ):
            outer_pi, inner_pi = sigma_pi, tau_pi
        else:
            outer_pi, inner_pi = tau_pi, sigma_pi

        outer_interval = mirror_interval(a, outer_pi)
        candidates = [
            d
            for d in sigma.domain
            if d != a
            and _strictly_contains(outer_interval, mirror_interval(d, outer_pi))
            and not _strictly_contains(outer_interval, mirror_interval(d, inner_pi))
        ]
        if not candidates:  # pragma: no cover - impossible per the proof
            raise ReproError("Lemma 23 invariant violated: no swap candidate")
        b = min(candidates, key=lambda d: pi[d])

        # swap a and b in pi
        order: list[Any] = pi.items_in_order()
        ia, ib = order.index(a), order.index(b)
        order[ia], order[ib] = order[ib], order[ia]
        pi = PartialRanking.from_sequence(order)

    raise ReproError(  # pragma: no cover - the proof bounds the rounds
        "nesting elimination did not converge; Lemma 23 invariant violated"
    )
