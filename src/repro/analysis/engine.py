"""Core engine of the ``repro.analysis`` static-analysis framework.

The engine is deliberately small: a :class:`Rule` registry, a parsed
:class:`SourceFile` wrapper carrying ``# repro: noqa[RPxxx]`` suppression
data, a :class:`Project` giving rules cross-file context (``docs/THEORY.md``,
the test suite, sibling modules), and :func:`analyze_paths`, which runs
every registered rule over every file and returns an
:class:`AnalysisResult`.

Rules come in two flavours:

* **per-file** rules implement :meth:`Rule.check_file` and are invoked once
  per source file;
* **project** rules additionally implement :meth:`Rule.finish`, called once
  after every file has been visited — this is how whole-program facts
  (e.g. RP002's validation call graph) are propagated.

Rule modules live in :mod:`repro.analysis.rules`; importing that package
registers every shipped RP rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import IntEnum
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.flow.fixpoint import FlowAnalysis

__all__ = [
    "Severity",
    "Finding",
    "SourceFile",
    "Project",
    "Rule",
    "AnalysisResult",
    "register",
    "registered_rules",
    "analyze_paths",
    "analyze_source",
    "display_path",
    "find_project_root",
]


class Severity(IntEnum):
    """Per-rule severity; the CLI exit code is gated on a threshold."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}; expected 'warning' or 'error'") from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic produced by a rule at a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False
    #: matched an entry in the committed baseline (deliberate exception)
    baselined: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            severity=Severity.parse(str(payload["severity"])),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            column=int(payload["column"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
            suppressed=bool(payload.get("suppressed", False)),
            baselined=bool(payload.get("baselined", False)),
        )


_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


def _collect_noqa(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule codes for that physical line.

    ``# repro: noqa`` with no bracket suppresses every rule on the line;
    this is recorded as the sentinel code ``"*"``.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = [
            (number, line)
            for number, line in enumerate(text.splitlines(), start=1)
            if "#" in line
        ]
    for line_number, comment in comments:
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[line_number] = frozenset({"*"})
        else:
            parsed = frozenset(code.strip() for code in codes.split(",") if code.strip())
            suppressions[line_number] = suppressions.get(line_number, frozenset()) | parsed
    return suppressions


@dataclass(slots=True)
class SourceFile:
    """A parsed Python source file plus its suppression table."""

    path: Path
    text: str
    tree: ast.Module
    noqa: dict[int, frozenset[str]]

    @classmethod
    def parse(cls, path: Path, text: str | None = None) -> "SourceFile":
        if text is None:
            text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, text=text, tree=tree, noqa=_collect_noqa(text))

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.noqa.get(line)
        return codes is not None and ("*" in codes or code in codes)

    @property
    def posix(self) -> str:
        return self.path.as_posix()


_ROOT_MARKERS = ("pyproject.toml", "setup.py", ".git")


def find_project_root(start: Path) -> Path:
    """Walk upward from ``start`` to the nearest directory holding a
    project marker (pyproject.toml / setup.py / .git); fall back to
    ``start`` itself."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return start


@dataclass(slots=True)
class Project:
    """Cross-file context shared by every rule during one analysis run."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    _doc_cache: dict[str, str | None] = field(default_factory=dict)
    _flow: object | None = None

    def flow(self) -> "FlowAnalysis":
        """The interprocedural flow analysis over this run's file set.

        Built lazily on first use (the flow rules ask for it from their
        ``finish`` hooks, after every file has been parsed) and shared by
        every rule in the run.
        """
        from repro.analysis.flow.fixpoint import FlowAnalysis

        if self._flow is None:
            self._flow = FlowAnalysis.build(self)
        assert isinstance(self._flow, FlowAnalysis)
        return self._flow

    def read_doc(self, relative: str) -> str | None:
        """Read a project document (e.g. ``docs/THEORY.md``); ``None`` if absent."""
        if relative not in self._doc_cache:
            path = self.root / relative
            self._doc_cache[relative] = (
                path.read_text(encoding="utf-8") if path.is_file() else None
            )
        return self._doc_cache[relative]

    def test_sources(self, names: Sequence[str]) -> dict[str, str]:
        """Raw text of the named files under ``tests/`` (missing files skipped)."""
        sources: dict[str, str] = {}
        for name in names:
            text = self.read_doc(f"tests/{name}")
            if text is not None:
                sources[name] = text
        return sources

    def module_name(self, source: SourceFile) -> str:
        """Dotted module path of ``source`` relative to the repo layout.

        Resolves ``src/repro/metrics/kendall.py`` to
        ``repro.metrics.kendall``; files outside a recognizable package
        root keep their stem.
        """
        parts = list(source.path.resolve().parts)
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            dotted = parts[index:]
        else:
            dotted = [source.path.stem]
        if dotted[-1].endswith(".py"):
            dotted[-1] = dotted[-1][:-3]
        if dotted[-1] == "__init__":
            dotted.pop()
        return ".".join(dotted)


class Rule:
    """Base class for RP rules. Subclasses set the class attributes and
    implement :meth:`check_file` (and optionally :meth:`finish`)."""

    code: str = "RP000"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        return iter(())

    def finish(self, project: Project) -> Iterator[Finding]:
        """Called once after all files were visited; project rules emit here."""
        return iter(())

    def finding(
        self,
        source: SourceFile,
        node: ast.AST | int,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a :class:`Finding` at ``node`` (an AST node or a line number),
        honouring any ``# repro: noqa`` suppression on that line."""
        if isinstance(node, int):
            line, column = node, 1
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.code,
            severity=self.severity if severity is None else severity,
            path=source.posix,
            line=line,
            column=column,
            message=message,
            suppressed=source.is_suppressed(self.code, line),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the global registry."""
    if not issubclass(cls, Rule):
        raise TypeError(f"@register expects a Rule subclass, got {cls!r}")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def registered_rules() -> dict[str, Rule]:
    """Fresh instances of the shipped rules, keyed by code.

    Rules may accumulate per-run state in ``check_file`` for use in
    ``finish``, so every analysis run gets its own instances.
    """
    from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

    return {code: _REGISTRY[code]() for code in sorted(_REGISTRY)}


@dataclass(slots=True)
class AnalysisResult:
    """Outcome of one analysis run."""

    findings: list[Finding]
    files_checked: int
    rules_run: tuple[str, ...]
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings not silenced by a ``noqa`` comment or the baseline."""
        return [
            finding
            for finding in self.findings
            if not finding.suppressed and not finding.baselined
        ]

    def worst(self) -> Severity | None:
        severities = [finding.severity for finding in self.active + self.parse_errors]
        return max(severities) if severities else None

    def exit_code(self, fail_on: Severity | None = Severity.ERROR) -> int:
        if self.parse_errors:
            return 1
        if fail_on is None:
            return 0
        worst = self.worst()
        return 1 if worst is not None and worst >= fail_on else 0


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _select_rules(select: Sequence[str] | None) -> dict[str, Rule]:
    rules = registered_rules()
    if select is None:
        return rules
    unknown = [code for code in select if code not in rules]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    return {code: rules[code] for code in select}


#: Codes that share one lazily built flow analysis; scheduling them into
#: the same worker means the call graph is constructed once, not five times.
_FLOW_CODES = ("RP012", "RP013", "RP014", "RP015", "RP016")


def _rule_groups(codes: Sequence[str], jobs: int) -> list[tuple[str, ...]]:
    """Partition rule codes into at most ``jobs`` deterministic groups,
    keeping the flow rules together (they share ``Project.flow()``)."""
    flow = tuple(code for code in codes if code in _FLOW_CODES)
    rest = [code for code in codes if code not in _FLOW_CODES]
    groups: list[tuple[str, ...]] = [flow] if flow else []
    slots = max(1, jobs - len(groups))
    if rest:
        size = -(-len(rest) // slots)  # ceil division
        groups.extend(tuple(rest[i : i + size]) for i in range(0, len(rest), size))
    return groups


def display_path(path: Path, root: Path) -> Path:
    """The path a finding reports. Fingerprints (noqa audits, baseline
    entries) must not depend on how the analyzed path was spelled on the
    command line, so files under ``root`` are rebased relative to it."""
    try:
        return path.resolve().relative_to(root.resolve())
    except ValueError:
        return path


def _run_rules(
    files: Sequence[Path], root: Path, rules: dict[str, Rule]
) -> tuple[list[Finding], list[Finding], int]:
    """Parse ``files`` and run ``rules`` over them (one process's work)."""
    project = Project(root=root)
    findings: list[Finding] = []
    parse_errors: list[Finding] = []
    for file_path in files:
        shown = display_path(file_path, root)
        try:
            source = SourceFile.parse(shown, text=file_path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            parse_errors.append(
                Finding(
                    rule="RP000",
                    severity=Severity.ERROR,
                    path=shown.as_posix(),
                    line=line,
                    column=1,
                    message=f"file could not be parsed: {exc}",
                )
            )
            continue
        project.files.append(source)
        for rule in rules.values():
            findings.extend(rule.check_file(source, project))
    for rule in rules.values():
        findings.extend(rule.finish(project))
    return findings, parse_errors, len(project.files)


def _analyze_group(
    payload: tuple[tuple[str, ...], tuple[str, ...], str],
) -> tuple[list[Finding], list[Finding], int]:
    """Picklable worker: run one rule group over the full file set.

    Every group re-parses the files so each worker has complete
    cross-file context; the parse cost is small next to the rules.
    """
    codes, file_names, root_name = payload
    rules = _select_rules(codes)
    return _run_rules([Path(name) for name in file_names], Path(root_name), rules)


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    select: Sequence[str] | None = None,
    jobs: int | None = None,
) -> AnalysisResult:
    """Run the (selected) rules over every ``.py`` file under ``paths``.

    ``jobs=None`` (the default) runs everything in-process. Any other
    value is handed to :func:`repro.parallel.parallel_map` after
    splitting the rules into groups — results are merged and re-sorted,
    so the findings are identical to a serial run.
    """
    resolved_paths = [Path(p) for p in paths]
    missing = [p for p in resolved_paths if not p.exists()]
    if missing:
        raise FileNotFoundError(f"no such path(s): {', '.join(map(str, missing))}")
    if root is None:
        root = find_project_root(resolved_paths[0]) if resolved_paths else Path.cwd()
    rules = _select_rules(select)
    files = list(_iter_python_files(resolved_paths))

    if jobs is None or jobs == 1 or len(rules) <= 1:
        findings, parse_errors, files_checked = _run_rules(files, root, rules)
    else:
        from repro.parallel import parallel_map, resolve_jobs

        n_jobs = resolve_jobs(jobs if jobs > 0 else None)
        groups = _rule_groups(tuple(rules), n_jobs)
        payloads = [
            (group, tuple(str(path) for path in files), str(root)) for group in groups
        ]
        outcomes = parallel_map(_analyze_group, payloads, jobs=n_jobs)
        findings = [finding for group_findings, _, _ in outcomes for finding in group_findings]
        # every group parses the same files: take errors/count from the first
        parse_errors = outcomes[0][1] if outcomes else []
        files_checked = outcomes[0][2] if outcomes else 0

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return AnalysisResult(
        findings=findings,
        files_checked=files_checked,
        rules_run=tuple(rules),
        parse_errors=parse_errors,
    )


def analyze_source(
    text: str,
    *,
    filename: str = "<snippet>",
    root: Path | None = None,
    select: Sequence[str] | None = None,
) -> AnalysisResult:
    """Analyze an in-memory snippet — the test-fixture entry point."""
    rules = _select_rules(select)
    project = Project(root=root if root is not None else Path.cwd())
    source = SourceFile.parse(Path(filename), text=text)
    project.files.append(source)
    findings: list[Finding] = []
    for rule in rules.values():
        findings.extend(rule.check_file(source, project))
    for rule in rules.values():
        findings.extend(rule.finish(project))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return AnalysisResult(
        findings=findings, files_checked=1, rules_run=tuple(rules)
    )
