"""repro.analysis — domain-aware static analysis and runtime contracts.

Two halves, cross-referencing each other:

* a **static-analysis framework** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`, :mod:`repro.analysis.reporters`) with eight
  shipped RPxxx rules, ``# repro: noqa[RPxxx]`` suppressions, text/JSON
  reporters, and the ``python -m repro.analysis`` CLI — the repository's
  correctness gate;
* a **runtime-contract layer** (:mod:`repro.analysis.contracts`):
  :func:`checked_metric` attaches the paper's distance axioms
  (non-negativity, regularity, symmetry, near-triangle with the
  Proposition 13 constants) to the four shipped metrics as postconditions,
  active under ``REPRO_DEBUG=1``.

This module imports eagerly only the contract layer (stdlib-only, needed
by ``repro.metrics`` at import time); the analysis engine loads lazily on
first attribute access so metric call paths never pay for it.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and how to add rules.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.contracts import (
    ENV_FLAG,
    checked_metric,
    contracts_enabled,
    near_triangle_constant,
)

__all__ = [
    "ENV_FLAG",
    "checked_metric",
    "contracts_enabled",
    "near_triangle_constant",
    # lazily loaded engine API:
    "Severity",
    "Finding",
    "Rule",
    "AnalysisResult",
    "register",
    "registered_rules",
    "analyze_paths",
    "analyze_source",
    "render_text",
    "render_json",
]

_ENGINE_EXPORTS = frozenset(
    {
        "Severity",
        "Finding",
        "Rule",
        "AnalysisResult",
        "register",
        "registered_rules",
        "analyze_paths",
        "analyze_source",
    }
)
_REPORTER_EXPORTS = frozenset({"render_text", "render_json"})


def __getattr__(name: str) -> Any:
    if name in _ENGINE_EXPORTS:
        from repro.analysis import engine

        return getattr(engine, name)
    if name in _REPORTER_EXPORTS:
        from repro.analysis import reporters

        return getattr(reporters, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
