"""Command-line front end: ``python -m repro.analysis <paths>``.

Exit codes: 0 clean (at the chosen ``--fail-on`` threshold), 1 findings at
or above the threshold (or unparseable files), 2 usage error.

The run pipeline is: result cache (keyed on file content hashes and the
rule-set version) -> analysis (optionally parallel across rule groups)
-> baseline application -> report. The baseline is applied *after* the
cache so editing ``analysis-baseline.json`` never forces a cold run.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline, apply_baseline, write_baseline
from repro.analysis.cache import (
    cache_dir_for,
    cache_key,
    load_cached,
    store_cached,
)
from repro.analysis.engine import (
    AnalysisResult,
    Severity,
    _iter_python_files,
    _select_rules,
    analyze_paths,
    display_path,
    find_project_root,
    registered_rules,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-aware static analysis for the repro ranking library: "
            "AST lints RP001–RP011 plus the interprocedural flow rules "
            "RP012–RP016."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. RP001,RP005",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="minimum severity that makes the exit code non-zero (default: error)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="project root for cross-file context (default: auto-detected)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "run rule groups across N worker processes via repro.parallel "
            "(0 = auto; default: in-process)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: <root>/.repro-cache/analysis)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "accepted-findings file; matching findings are reported as "
            "[baselined] and do not gate the exit code"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help=(
            "write every currently active finding to FILE as a baseline "
            "entry (reasons must then be filled in) and exit 0"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include noqa-suppressed and baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, rule in registered_rules().items():
        lines.append(f"{code}  {str(rule.severity):7s}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def _run_with_cache(
    paths: Sequence[str],
    *,
    root: Path | None,
    select: Sequence[str] | None,
    jobs: int | None,
    use_cache: bool,
    cache_dir: Path | None,
) -> AnalysisResult:
    """The cache-wrapped analysis pipeline (pre-baseline)."""
    if not use_cache:
        return analyze_paths(paths, root=root, select=select, jobs=jobs)

    resolved_paths = [Path(p) for p in paths]
    missing = [p for p in resolved_paths if not p.exists()]
    if missing:
        raise FileNotFoundError(f"no such path(s): {', '.join(map(str, missing))}")
    resolved_root = (
        root
        if root is not None
        else (find_project_root(resolved_paths[0]) if resolved_paths else Path.cwd())
    )
    codes = tuple(_select_rules(select))
    hashed = [
        (display_path(path, resolved_root).as_posix(), path.read_bytes())
        for path in _iter_python_files(resolved_paths)
    ]
    key = cache_key(hashed, codes)
    directory = cache_dir if cache_dir is not None else cache_dir_for(resolved_root)
    cached = load_cached(directory, key)
    if cached is not None:
        return cached
    result = analyze_paths(paths, root=resolved_root, select=select, jobs=jobs)
    store_cached(directory, key, result)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    select = None
    if options.select:
        select = [code.strip() for code in options.select.split(",") if code.strip()]
    root = Path(options.root) if options.root else None

    try:
        result = _run_with_cache(
            options.paths,
            root=root,
            select=select,
            jobs=options.jobs,
            use_cache=not options.no_cache,
            cache_dir=Path(options.cache_dir) if options.cache_dir else None,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")

    if options.write_baseline:
        count = write_baseline(result, Path(options.write_baseline))
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {options.write_baseline}")
        return 0

    stale_note = ""
    if options.baseline:
        try:
            baseline = Baseline.load(Path(options.baseline))
        except (OSError, ValueError, KeyError) as exc:
            parser.exit(2, f"error: {exc}\n")
        stale = baseline.stale_entries(result)
        result = apply_baseline(result, baseline)
        if stale:
            stale_note = "\n".join(
                f"note: stale baseline entry ({entry.rule} at {entry.path}) "
                "matches nothing — remove it"
                for entry in stale
            )

    if options.format == "json":
        print(render_json(result))
    elif options.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, show_suppressed=options.show_suppressed))
        if stale_note:
            print(stale_note, file=sys.stderr)

    fail_on = None if options.fail_on == "never" else Severity.parse(options.fail_on)
    return result.exit_code(fail_on)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
