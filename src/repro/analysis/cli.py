"""Command-line front end: ``python -m repro.analysis <paths>``.

Exit codes: 0 clean (at the chosen ``--fail-on`` threshold), 1 findings at
or above the threshold (or unparseable files), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.engine import Severity, analyze_paths, registered_rules
from repro.analysis.reporters import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Domain-aware static analysis for the repro ranking library: "
            "AST lints RP001–RP010 plus contract cross-checks."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all), e.g. RP001,RP005",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="minimum severity that makes the exit code non-zero (default: error)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="project root for cross-file context (default: auto-detected)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include noqa-suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, rule in registered_rules().items():
        lines.append(f"{code}  {str(rule.severity):7s}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    select = None
    if options.select:
        select = [code.strip() for code in options.select.split(",") if code.strip()]
    root = Path(options.root) if options.root else None

    try:
        result = analyze_paths(options.paths, root=root, select=select)
    except (FileNotFoundError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")

    if options.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=options.show_suppressed))

    fail_on = None if options.fail_on == "never" else Severity.parse(options.fail_on)
    return result.exit_code(fail_on)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
