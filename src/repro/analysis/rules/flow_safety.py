"""RP012/RP013 — parallel-safety and determinism, on the flow engine.

**RP012 (parallel-safety).** Every code path that can execute inside a
``parallel_map`` / ``ProcessPoolExecutor`` worker must be free of
module- and class-level state mutation: a worker's copy of module state
is thrown away with the process, so such writes either silently vanish
(fork) or silently diverge (spawn), and the library's bit-for-bit
``jobs``-invariance promise dies with them. The rule walks the
whole-program call graph from every parallel sink and reports each
module-state write reachable from one, citing the witness chain.
Lambdas and nested functions handed to a sink are reported too — they
are unpicklable under the spawn start method. Deliberate sites
(lock-guarded interning, per-process capture sessions whose results are
shipped back) take a **reasoned** ``# repro: noqa[RP012] — why`` on the
write line; a bare noqa is itself a finding, mirroring RP011.

**RP013 (determinism).** Iterating a ``set``/``frozenset`` in an
order-sensitive position — materializing it into a list/tuple, feeding
``.join``/``enumerate``/``zip``, or accumulating over it — makes output
depend on hash-seed iteration order. The rule tracks unordered values
interprocedurally (annotated returns, returned set displays, ``.domain``
-style properties) and flags order-sensitive uses with no intervening
``sorted()``. Order-insensitive consumers (``sum``/``min``/``max``/
``len``/``any``/``all``/membership/set algebra) are fine.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.flow.callgraph import FunctionNode
from repro.analysis.flow.fixpoint import FlowAnalysis

__all__ = ["ParallelSafetyRule", "UnorderedIterationRule"]


def _statements_in_order(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.stmt]:
    """The function's own statements, recursively, in source order —
    nested function bodies excluded (they are separate graph nodes)."""
    ordered: list[ast.stmt] = []

    def visit(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ordered.append(stmt)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list):
                    visit(inner)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    visit(handler.body)

    visit(node.body)
    return ordered


def _noqa_reason_present(source: SourceFile, line: int, code: str) -> bool:
    """A suppression for ``code`` on ``line`` carrying a written reason."""
    text_lines = source.text.splitlines()
    if not 1 <= line <= len(text_lines):
        return False
    raw = text_lines[line - 1]
    marker = f"noqa[{code}" if f"noqa[{code}" in raw else "repro: noqa"
    index = raw.find(marker)
    if index < 0:
        return False
    tail = raw[index + len(marker) :]
    tail = tail.split("]", 1)[-1] if "]" in tail else tail
    return any(char.isalpha() for char in tail)


@register
class ParallelSafetyRule(Rule):
    """RP012 — worker-reachable code mutates shared module/class state."""

    code = "RP012"
    name = "parallel-unsafe-state"
    severity = Severity.ERROR
    description = (
        "Function reachable from a parallel_map/ProcessPoolExecutor entry "
        "point mutates module- or class-level state (lost or divergent in "
        "worker processes), or an unpicklable lambda/nested function is "
        "handed to a pool. Deliberate sites need a reasoned "
        "'# repro: noqa[RP012] — why'."
    )

    def finish(self, project: Project) -> Iterator[Finding]:
        flow = project.flow()
        for qualname in sorted(flow.graph.functions):
            info = flow.graph.functions[qualname]
            chain = flow.parallel_chain(qualname)
            if chain is None:
                continue

            # unpicklable callables handed directly to a pool sink
            if info.kind in ("lambda", "nested") and qualname in flow.graph.parallel_roots:
                sink, line = flow.graph.parallel_roots[qualname]
                yield self.finding(
                    info.source,
                    info.node,
                    f"{info.kind} passed to {sink}() at line {line} is not "
                    "picklable under the spawn start method; hoist it to a "
                    "module-level function",
                )
                continue

            summary = flow.summary(qualname)
            if summary is None:
                continue
            via = " -> ".join(part.rsplit(".", 2)[-1] for part in chain)
            for write in summary.module_writes:
                finding = self.finding(
                    info.source,
                    write.line,
                    f"{write.target} is mutated ({write.via}) on a "
                    f"worker-reachable path [{via}]; module state written in "
                    "a pool worker is lost with the process",
                )
                if finding.suppressed and not _noqa_reason_present(
                    info.source, write.line, self.code
                ):
                    yield Finding(
                        rule=self.code,
                        severity=self.severity,
                        path=finding.path,
                        line=finding.line,
                        column=finding.column,
                        message=(
                            "suppressing RP012 requires a reason: "
                            "'# repro: noqa[RP012] — why this worker-side "
                            "write is safe'"
                        ),
                    )
                else:
                    yield finding


#: Call targets that consume an iterable without depending on its order.
_ORDER_INSENSITIVE = frozenset(
    {
        "sorted",
        "sum",
        "min",
        "max",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
        "Counter",
        "bool",
        "dict",
        "product",
        "combinations",
        "permutations",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "update",
        "intersection_update",
        "difference_update",
        "issubset",
        "issuperset",
        "isdisjoint",
        "count",
        "index",
        "sample",
        "choice",
    }
)

#: Call targets that materialize their argument in iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "join", "enumerate", "zip", "next", "iter"})

#: Methods that keep a set unordered (set algebra returns sets).
_SET_ALGEBRA = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy", "__or__", "__and__"}
)


@register
class UnorderedIterationRule(Rule):
    """RP013 — set iteration order leaks into an order-sensitive result."""

    code = "RP013"
    name = "unordered-iteration"
    severity = Severity.ERROR
    description = (
        "A set/frozenset is iterated in an order-sensitive position "
        "(list/tuple/join/enumerate materialization, ordered accumulation, "
        "or a returned comprehension) without an intervening sorted(); "
        "iteration order varies with the hash seed, so outputs become "
        "nondeterministic."
    )

    def finish(self, project: Project) -> Iterator[Finding]:
        flow = project.flow()
        for qualname in sorted(flow.graph.functions):
            info = flow.graph.functions[qualname]
            if isinstance(info.node, ast.Lambda):
                continue
            yield from self._scan(flow, info)

    # ------------------------------------------------------------------

    def _scan(self, flow: FlowAnalysis, info: FunctionNode) -> Iterator[Finding]:
        resolver = flow.resolver(info)
        returns_unordered = flow.returns_unordered
        unordered_attrs = flow.unordered_attrs
        tainted: set[str] = set()

        def leaf_name(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Attribute):
                return expr.attr
            if isinstance(expr, ast.Name):
                return expr.id
            return None

        def is_unordered(expr: ast.expr) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in tainted
            if isinstance(expr, ast.Attribute):
                return expr.attr in unordered_attrs
            if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
            ):
                return is_unordered(expr.left) or is_unordered(expr.right)
            if isinstance(expr, ast.Call):
                leaf = leaf_name(expr.func)
                if leaf in ("set", "frozenset"):
                    return True
                if leaf in _SET_ALGEBRA and isinstance(expr.func, ast.Attribute):
                    return is_unordered(expr.func.value)
                resolved = resolver.resolve(expr.func)
                return resolved is not None and resolved in returns_unordered
            return False

        def comp_unordered(comp: ast.ListComp | ast.GeneratorExp | ast.SetComp) -> bool:
            return any(is_unordered(generator.iter) for generator in comp.generators)

        findings: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    info.source,
                    node,
                    f"{what} depends on set iteration order; wrap the "
                    "iterable in sorted(...) (or consume it "
                    "order-insensitively)",
                )
            )

        def scan_expr(expr: ast.expr, sensitive: bool) -> None:
            if isinstance(expr, ast.Call):
                leaf = leaf_name(expr.func)
                if leaf in _ORDER_INSENSITIVE:
                    for arg in expr.args:
                        scan_expr(arg, sensitive=False)
                    for keyword in expr.keywords:
                        if keyword.value is not None:
                            scan_expr(keyword.value, sensitive=False)
                    return
                if leaf in _ORDER_SENSITIVE_CALLS:
                    for arg in expr.args:
                        if is_unordered(arg):
                            flag(expr, f"{leaf}() over an unordered collection")
                        elif isinstance(
                            arg, (ast.ListComp, ast.GeneratorExp)
                        ) and comp_unordered(arg):
                            flag(arg, "comprehension over an unordered collection")
                        else:
                            scan_expr(arg, sensitive=True)
                    return
                scan_expr(expr.func, sensitive=False)
                for arg in expr.args:
                    scan_expr(arg, sensitive)
                for keyword in expr.keywords:
                    if keyword.value is not None:
                        scan_expr(keyword.value, sensitive)
                return
            if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
                if sensitive and comp_unordered(expr):
                    flag(expr, "comprehension over an unordered collection")
                    return
                for generator in expr.generators:
                    scan_expr(generator.iter, sensitive=False)
                scan_expr(expr.elt, sensitive=False)
                return
            if isinstance(expr, (ast.SetComp, ast.DictComp)):
                # result is itself unordered / keyed — order-insensitive
                for generator in expr.generators:
                    scan_expr(generator.iter, sensitive=False)
                return
            if isinstance(expr, ast.Starred):
                if is_unordered(expr.value):
                    flag(expr, "star-unpacking an unordered collection")
                return
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    scan_expr(child, sensitive)

        def accumulates(body: list[ast.stmt]) -> bool:
            for stmt in body:
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                        continue
                    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                        if node.func.attr in ("append", "extend", "insert", "write"):
                            return True
                    if isinstance(node, (ast.Yield, ast.YieldFrom)):
                        return True
                    if isinstance(node, ast.AugAssign):
                        return True
                    # keyed stores (``positions[item] = pos``) are
                    # deliberately NOT treated as accumulation: a dict
                    # write per element is order-insensitive
            return False

        # statement-order pass: taint locals, check loops and expressions
        assert not isinstance(info.node, ast.Lambda)
        for stmt in _statements_in_order(info.node):
            if isinstance(stmt, ast.Assign):
                unordered_value = is_unordered(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if unordered_value:
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
                scan_expr(stmt.value, sensitive=False)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    if is_unordered(stmt.value):
                        tainted.add(stmt.target.id)
                    else:
                        tainted.discard(stmt.target.id)
                scan_expr(stmt.value, sensitive=False)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if is_unordered(stmt.iter) and accumulates(stmt.body):
                    flag(
                        stmt.iter,
                        "loop accumulating over an unordered collection",
                    )
                else:
                    scan_expr(stmt.iter, sensitive=False)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                scan_expr(stmt.value, sensitive=True)
            elif isinstance(stmt, ast.Expr):
                sensitive = isinstance(stmt.value, (ast.Yield, ast.YieldFrom))
                scan_expr(stmt.value, sensitive=sensitive)
            elif isinstance(stmt, (ast.If, ast.While)):
                scan_expr(stmt.test, sensitive=False)

        yield from findings
