"""RP002 — public metric/aggregator entry points must validate their domain.

Every distance and aggregation entry point in this library is defined over
a *common domain* (the paper's ``D``); feeding it rankings over different
domains must raise ``DomainMismatchError``, not silently produce a number.
This rule proves, statically, that each public entry point reaches a
domain check before computing.

It is a whole-program rule. Pass one collects, per module-level function:

* **direct evidence** of validation — a call to a ``_require*`` /
  ``require_*`` / ``*validate*`` helper, a ``.domain`` attribute access,
  an explicit ``raise DomainMismatchError``, or decoration with the
  runtime-contract decorator ``@checked_metric`` (the contract layer this
  rule cross-references; see :mod:`repro.analysis.contracts`);
* the set of function names it calls.

Pass two (:meth:`finish`) propagates validation facts along the call graph
to a fixpoint — ``kendall`` validates because it calls ``pair_counts``,
which calls ``_require_common_domain`` — then reports every public entry
point (two ``PartialRanking`` parameters in ``repro/metrics/``, or a
``Sequence[PartialRanking]``-style parameter in ``repro/aggregate/``) with
no validation path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.rules.api_surface import module_all

__all__ = ["DomainValidationRule"]

_VALIDATOR_SUBSTRINGS = ("validate",)
# DomainCodec.for_profile raises DomainMismatchError on empty/mismatched
# profiles — the array kernels' canonical domain check.
_VALIDATOR_PREFIXES = ("_require", "require_", "_check", "check_domain", "for_profile")
_CONTRACT_DECORATOR = "checked_metric"
_DOMAIN_ERROR = "DomainMismatchError"


def _annotation_text(annotation: ast.expr | None) -> str:
    return "" if annotation is None else ast.unparse(annotation)


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _name_of(node.func)
    return None


@dataclass(slots=True)
class _FunctionFacts:
    source: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_candidate: bool
    has_direct_evidence: bool
    calls: set[str] = field(default_factory=set)


def _parameters(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = node.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


def _direct_evidence(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        if _name_of(decorator) == _CONTRACT_DECORATOR:
            return True
    for inner in ast.walk(node):
        if isinstance(inner, ast.Attribute) and inner.attr == "domain":
            return True
        if isinstance(inner, ast.Call):
            name = _name_of(inner.func)
            if name is not None and _is_validator_name(name):
                return True
        if isinstance(inner, ast.Raise) and inner.exc is not None:
            if _name_of(inner.exc) == _DOMAIN_ERROR:
                return True
    return False


def _is_validator_name(name: str) -> bool:
    lowered = name.lower()
    return lowered.startswith(_VALIDATOR_PREFIXES) or any(
        fragment in lowered for fragment in _VALIDATOR_SUBSTRINGS
    )


def _called_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            name = _name_of(inner.func)
            if name is not None:
                names.add(name)
    return names


@register
class DomainValidationRule(Rule):
    """RP002 — entry point computes over rankings without a domain check."""

    code = "RP002"
    name = "missing-domain-validation"
    severity = Severity.ERROR
    description = (
        "Public metric/aggregator entry point has no path to a domain-"
        "validation check (a _require*/… helper, a .domain comparison, "
        "DomainMismatchError, or the @checked_metric contract)."
    )

    def __init__(self) -> None:
        self._facts: dict[str, _FunctionFacts] = {}

    @staticmethod
    def _candidate_kind(source: SourceFile) -> str | None:
        posix = source.posix
        if "repro/metrics/" in posix:
            return "metric"
        if "repro/aggregate/" in posix:
            return "aggregator"
        return None

    def _is_candidate(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        kind: str,
        exported: frozenset[str],
    ) -> bool:
        if node.name.startswith("_") or node.name not in exported:
            return False
        if _annotation_text(node.returns) == "bool":
            return False  # predicates, not distances
        parameters = _parameters(node)
        direct = sum(
            1 for arg in parameters if "PartialRanking" in _annotation_text(arg.annotation)
        )
        if kind == "metric":
            # two rankings compared head-to-head
            plural = any(
                "[PartialRanking" in _annotation_text(arg.annotation) for arg in parameters
            )
            return direct >= 2 and not plural
        # aggregator: a profile of rankings
        return any(
            "[PartialRanking" in _annotation_text(arg.annotation) for arg in parameters
        )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        kind = self._candidate_kind(source)
        _, entries = module_all(source.tree)
        exported = frozenset(entries)
        for node in source.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._facts[node.name] = _FunctionFacts(
                source=source,
                node=node,
                is_candidate=kind is not None and self._is_candidate(node, kind, exported),
                has_direct_evidence=_direct_evidence(node),
                calls=_called_names(node),
            )
        return iter(())

    def finish(self, project: Project) -> Iterator[Finding]:
        validated = {
            name for name, facts in self._facts.items() if facts.has_direct_evidence
        }
        changed = True
        while changed:
            changed = False
            for name, facts in self._facts.items():
                if name in validated:
                    continue
                if facts.calls & validated:
                    validated.add(name)
                    changed = True
        for name, facts in sorted(self._facts.items()):
            if facts.is_candidate and name not in validated:
                yield self.finding(
                    facts.source,
                    facts.node,
                    f"entry point {name}() never reaches a domain-validation "
                    "check; call a validator (or delegate to one) before "
                    "computing",
                )
