"""RP011 — kernel modules must be observable; library code must not print.

The observability layer (:mod:`repro.obs`) only tells the truth if the
hot paths actually report into it. A new kernel module added under
``repro.metrics``, ``repro.aggregate`` or ``repro.db`` without a span or
counter silently disappears from every trace: ``python -m repro.obs
summarize`` shows nothing, the counter cross-checks in the test suite
cannot cover it, and a performance regression in it is invisible.

This project rule enforces two things:

* **Instrumentation coverage** — every module under those three packages
  whose ``__all__`` exports at least one module-level function (a public
  kernel entry point) must contain at least one call into the obs API
  (``trace`` / ``@traced`` / ``add`` / ``set_attr`` / ``kernel_timer``,
  via ``from repro import obs`` or ``from repro.obs import ...``).
  Reference implementations, test oracles and thin wrappers opt out with
  ``# repro: noqa[RP011] — <reason>`` on the ``__all__`` line; the reason
  is *required* — a bare ``noqa[RP011]`` does not suppress the finding.
  Counter-only instrumentation (``obs.add``) counts: exact work counters
  are the layer's primary cross-check currency.

* **No bare prints** — ``print(...)`` without a ``file=`` argument
  anywhere in ``src/repro/`` outside CLI/reporter modules (``cli.py``,
  ``__main__.py``, ``reporters.py``). Library code reports through
  return values, spans and counters; stdout belongs to the CLIs.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.rules.api_surface import module_all

__all__ = ["ObsInstrumentationRule", "obs_evidence", "OBS_API_NAMES"]

#: repro.obs entry points whose use counts as instrumentation evidence.
OBS_API_NAMES = frozenset({"trace", "traced", "add", "set_attr", "kernel_timer"})

#: Modules the instrumentation-coverage check applies to.
_KERNEL_MODULE_RE = re.compile(
    r"repro/(metrics|aggregate|db|serve)/(?!__init__\.py$)[^/]+\.py$"
)

#: Module basenames allowed to write to stdout.
_PRINT_EXEMPT = frozenset({"cli.py", "__main__.py", "reporters.py"})

#: A noqa[RP011] marker followed by its (required) free-text reason.
_NOQA_REASON_RE = re.compile(r"#\s*repro:\s*noqa\[[^\]]*RP011[^\]]*\]\s*(?P<reason>.*)$")


def _obs_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound from the obs package: (module aliases, function names).

    ``from repro import obs`` / ``import repro.obs as o`` contribute
    module aliases; ``from repro.obs import trace, add`` contributes the
    function names directly.
    """
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "obs":
                        modules.add(alias.asname or alias.name)
            elif node.module is not None and node.module.startswith("repro.obs"):
                for alias in node.names:
                    if alias.name in OBS_API_NAMES:
                        functions.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.obs" and alias.asname is not None:
                    modules.add(alias.asname)
    return modules, functions


def obs_evidence(tree: ast.Module) -> bool:
    """Whether the module calls (or decorates with) any obs API entry point."""
    modules, functions = _obs_aliases(tree)
    if not modules and not functions:
        return False

    def is_obs_ref(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute):
            return (
                isinstance(expr.value, ast.Name)
                and expr.value.id in modules
                and expr.attr in OBS_API_NAMES
            )
        return isinstance(expr, ast.Name) and expr.id in functions

    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and is_obs_ref(node.func):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                if is_obs_ref(target):
                    return True
    return False


def _public_functions(tree: ast.Module, entries: tuple[str, ...]) -> list[str]:
    """``__all__`` entries bound by a module-level ``def``."""
    defined = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return [entry for entry in entries if entry in defined]


@register
class ObsInstrumentationRule(Rule):
    """RP011 — uninstrumented kernel module, or bare print in library code."""

    code = "RP011"
    name = "obs-instrumentation-coverage"
    severity = Severity.ERROR
    description = (
        "Module under repro.metrics/aggregate/db exports a public kernel "
        "entry point but never reports into repro.obs (no trace/traced/add "
        "site and no reasoned noqa), or library code prints to stdout."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        yield from self._check_instrumentation(source)
        yield from self._check_prints(source)

    def _check_instrumentation(self, source: SourceFile) -> Iterator[Finding]:
        if _KERNEL_MODULE_RE.search(source.posix) is None:
            return
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        kernels = _public_functions(source.tree, entries)
        if not kernels or obs_evidence(source.tree):
            return
        line = getattr(all_node, "lineno", 1)
        names = ", ".join(repr(name) for name in kernels)
        if source.is_suppressed(self.code, line):
            if self._noqa_has_reason(source, line):
                yield self.finding(
                    source,
                    all_node,
                    f"kernel entry point(s) {names} opted out of obs "
                    "instrumentation (reasoned noqa)",
                )
                return
            # A bare noqa[RP011] must not silence the rule: emit the
            # finding unsuppressed, pointing at the missing reason.
            yield Finding(
                rule=self.code,
                severity=self.severity,
                path=source.posix,
                line=line,
                column=getattr(all_node, "col_offset", 0) + 1,
                message=(
                    f"noqa[RP011] on kernel entry point(s) {names} needs a "
                    "reason — write `# repro: noqa[RP011] — <why this module "
                    "is exempt from obs instrumentation>`"
                ),
                suppressed=False,
            )
            return
        yield self.finding(
            source,
            all_node,
            f"module exports kernel entry point(s) {names} but contains no "
            "repro.obs instrumentation; add a trace/@traced span or an "
            "obs.add counter to the hot path, or opt out with "
            "`# repro: noqa[RP011] — <reason>`",
        )

    @staticmethod
    def _noqa_has_reason(source: SourceFile, line: int) -> bool:
        lines = source.text.splitlines()
        if not 1 <= line <= len(lines):
            return False
        match = _NOQA_REASON_RE.search(lines[line - 1])
        if match is None:
            return False
        return re.search(r"\w", match.group("reason")) is not None

    def _check_prints(self, source: SourceFile) -> Iterator[Finding]:
        posix = source.posix
        if "repro/" not in posix or source.path.name in _PRINT_EXEMPT:
            return
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                continue
            if any(keyword.arg == "file" for keyword in node.keywords):
                continue  # explicit stream choice (stderr diagnostics etc.)
            yield self.finding(
                source,
                node,
                "bare print() in library code writes to stdout; return the "
                "value, record it on a span/counter (repro.obs), or move "
                "the output into a CLI module",
            )
