"""RP009 — per-pair metric calls inside nested loops over a profile.

Calling a two-ranking metric (``kendall``, ``footrule``, ``pair_counts``,
…) from doubly nested loops is the classic way to build an all-pairs
distance matrix — and it re-derives per-ranking state m−1 times per
ranking and pays Python overhead per pair.
:func:`repro.metrics.batch.pairwise_distance_matrix` computes the same
matrix bit for bit from shared precomputation (see ``docs/PERFORMANCE.md``).

The rule is a *warning*, not an error: quadratic loops over tiny fixtures
are fine, and tests/benchmarks (where they are usually oracle
cross-checks) are exempt entirely. Genuine exceptions in serving code can
carry ``# repro: noqa[RP009]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["PairwiseLoopRule", "PER_PAIR_METRIC_NAMES"]

#: Two-ranking distance entry points with a batch equivalent.
PER_PAIR_METRIC_NAMES = frozenset(
    {
        "kendall",
        "footrule",
        "kendall_hausdorff",
        "kendall_hausdorff_counts",
        "footrule_hausdorff",
        "kendall_large",
        "kendall_hausdorff_large",
        "pair_counts",
        "pair_counts_large",
    }
)

#: Path fragments where per-pair loops are oracle checks, not serving code.
#: ``repro/verify/`` builds reference matrices by definition — per-pair
#: loops there are the oracle side of the differential test.
_ALLOWED_FRAGMENTS = ("tests/", "benchmarks/", "repro/verify/", "conftest")


def _is_allowed_location(source: SourceFile) -> bool:
    posix = source.posix
    return any(fragment in posix for fragment in _ALLOWED_FRAGMENTS)


def _called_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _NestedLoopCallVisitor(ast.NodeVisitor):
    """Collect metric calls whose enclosing loop depth is >= 2.

    ``for``/``while`` statements and every comprehension generator count
    one level each, so ``[f(s, t) for s in P for t in P]`` is depth 2 just
    like the statement form.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.hits: list[tuple[ast.Call, str]] = []

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        self.depth += len(node.generators)
        self.generic_visit(node)
        self.depth -= len(node.generators)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if self.depth >= 2:
            name = _called_name(node)
            if name is not None and name in PER_PAIR_METRIC_NAMES:
                self.hits.append((node, name))
        self.generic_visit(node)


@register
class PairwiseLoopRule(Rule):
    """RP009 — all-pairs metric loop that should use the batch layer."""

    code = "RP009"
    name = "per-pair-metric-in-nested-loop"
    severity = Severity.WARNING
    description = (
        "Two-ranking metric called inside nested loops (an all-pairs "
        "pattern); repro.metrics.batch.pairwise_distance_matrix computes "
        "the same matrix from shared precomputation."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if _is_allowed_location(source):
            return
        visitor = _NestedLoopCallVisitor()
        visitor.visit(source.tree)
        for node, name in visitor.hits:
            yield self.finding(
                source,
                node,
                f"per-pair metric {name!r} called at loop depth >= 2; "
                "consider repro.metrics.batch.pairwise_distance_matrix "
                "(bit-for-bit equal, shared precomputation)",
            )
