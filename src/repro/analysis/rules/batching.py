"""RP009 — per-pair / per-item aggregation work inside nested loops.

Calling a two-ranking metric (``kendall``, ``footrule``, ``pair_counts``,
…) from doubly nested loops is the classic way to build an all-pairs
distance matrix — and it re-derives per-ranking state m−1 times per
ranking and pays Python overhead per pair.
:func:`repro.metrics.batch.pairwise_distance_matrix` computes the same
matrix bit for bit from shared precomputation (see ``docs/PERFORMANCE.md``).

The same anti-pattern exists on the *aggregation* side: computing the
median score function with a per-item :func:`repro.aggregate.median.median_of`
call, or gathering ``sigma[item]`` position vectors item by item, inside
nested loops re-reads the profile n times.
:mod:`repro.aggregate.batch` derives every §6 output from one ``(m, n)``
position-matrix encode, bit-for-bit equal to the dict path — so both
shapes are flagged:

* a call to ``median_of`` at loop depth >= 2;
* a call to ``pair_cost_matrix`` / ``pair_cost_array`` at loop depth
  >= 2 — each call is a full O(n^2 m) profile scan, so nested loops
  re-derive the same matrix over and over;
  :func:`repro.aggregate.decompose.kemeny_decomposed` builds it once and
  slices per component instead;
* a subscript ``sigma[item]`` at loop depth >= 2 where both names are
  bound as loop/comprehension targets of *different* enclosing levels and
  the container follows the paper's ranking notation (``sigma``/``tau``/
  ``pi``/``rho``/``*ranking*`` — the convention the codebase uses for
  :class:`~repro.core.partial_ranking.PartialRanking` values), i.e. the
  ``sigma[item] for sigma in rankings for item in domain`` gather.

The rule is a *warning*, not an error: quadratic loops over tiny fixtures
are fine, and tests/benchmarks (where they are usually oracle
cross-checks) are exempt entirely. Genuine exceptions in serving code —
e.g. the retained dict reference implementations — carry
``# repro: noqa[RP009]``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = [
    "PairwiseLoopRule",
    "PER_PAIR_METRIC_NAMES",
    "PER_ITEM_AGGREGATION_NAMES",
    "PROFILE_COST_KERNEL_NAMES",
]

#: Two-ranking distance entry points with a batch equivalent.
PER_PAIR_METRIC_NAMES = frozenset(
    {
        "kendall",
        "footrule",
        "kendall_hausdorff",
        "kendall_hausdorff_counts",
        "footrule_hausdorff",
        "kendall_large",
        "kendall_hausdorff_large",
        "pair_counts",
        "pair_counts_large",
    }
)

#: Per-item aggregation entry points with a position-matrix equivalent.
PER_ITEM_AGGREGATION_NAMES = frozenset({"median_of"})

#: Full-profile cost-matrix builders: one call scans the whole profile,
#: so calling them from nested loops repeats an O(n^2 m) kernel per
#: iteration. Slice one matrix instead (repro.aggregate.decompose does).
PROFILE_COST_KERNEL_NAMES = frozenset({"pair_cost_matrix", "pair_cost_array"})

#: Container names treated as "a ranking" for the gather pattern — the
#: paper's notation, which the codebase follows for PartialRanking values.
#: Keeps the subscript heuristic away from generic dict/row indexing.
_RANKING_NAME_RE = re.compile(r"^(?:sigma|tau|pi|rho)\d*$|ranking")

#: Path fragments where per-pair loops are oracle checks, not serving code.
#: ``repro/verify/`` builds reference matrices by definition — per-pair
#: loops there are the oracle side of the differential test.
_ALLOWED_FRAGMENTS = ("tests/", "benchmarks/", "repro/verify/", "conftest")


def _is_allowed_location(source: SourceFile) -> bool:
    posix = source.posix
    return any(fragment in posix for fragment in _ALLOWED_FRAGMENTS)


def _called_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by a loop/comprehension target (handles tuple unpacking)."""
    return {child.id for child in ast.walk(target) if isinstance(child, ast.Name)}


class _NestedLoopCallVisitor(ast.NodeVisitor):
    """Collect per-pair / per-item work whose enclosing loop depth is >= 2.

    ``for``/``while`` statements and every comprehension generator count
    one level each, so ``[f(s, t) for s in P for t in P]`` is depth 2 just
    like the statement form. Each level also records the names its target
    binds, so the cross-level ``sigma[item]`` gather can be told apart
    from same-level indexing like ``sequence[depth]``.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.calls: list[tuple[ast.Call, str, str]] = []
        self.gathers: list[tuple[ast.Subscript, str]] = []
        self._levels: list[set[str]] = []

    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        bound = _target_names(node.target) if isinstance(node, (ast.For, ast.AsyncFor)) else set()
        self.depth += 1
        self._levels.append(bound)
        self.generic_visit(node)
        self._levels.pop()
        self.depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for generator in node.generators:
            self.depth += 1
            self._levels.append(_target_names(generator.target))
        self.generic_visit(node)
        for _ in node.generators:
            self._levels.pop()
            self.depth -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _binding_level(self, name: str) -> int | None:
        for level in range(len(self._levels) - 1, -1, -1):
            if name in self._levels[level]:
                return level
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self.depth >= 2:
            name = _called_name(node)
            if name is not None and name in PER_PAIR_METRIC_NAMES:
                self.calls.append((node, name, "pair"))
            elif name is not None and name in PER_ITEM_AGGREGATION_NAMES:
                self.calls.append((node, name, "aggregation"))
            elif name is not None and name in PROFILE_COST_KERNEL_NAMES:
                self.calls.append((node, name, "profile-cost"))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self.depth >= 2
            and isinstance(node.value, ast.Name)
            and isinstance(node.slice, ast.Name)
            and node.value.id != node.slice.id
            and _RANKING_NAME_RE.search(node.value.id)
        ):
            value_level = self._binding_level(node.value.id)
            index_level = self._binding_level(node.slice.id)
            if value_level is not None and index_level is not None and value_level != index_level:
                self.gathers.append((node, f"{node.value.id}[{node.slice.id}]"))
        self.generic_visit(node)


@register
class PairwiseLoopRule(Rule):
    """RP009 — nested-loop work that should use a batch kernel layer."""

    code = "RP009"
    name = "per-pair-metric-in-nested-loop"
    severity = Severity.WARNING
    description = (
        "Two-ranking metric, per-item median_of call, or cross-level "
        "sigma[item] gather inside nested loops; the batch layers "
        "(repro.metrics.batch, repro.aggregate.batch) compute the same "
        "results from shared precomputation."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if _is_allowed_location(source):
            return
        visitor = _NestedLoopCallVisitor()
        visitor.visit(source.tree)
        for call, name, kind in visitor.calls:
            if kind == "pair":
                yield self.finding(
                    source,
                    call,
                    f"per-pair metric {name!r} called at loop depth >= 2; "
                    "consider repro.metrics.batch.pairwise_distance_matrix "
                    "(bit-for-bit equal, shared precomputation)",
                )
            elif kind == "profile-cost":
                yield self.finding(
                    source,
                    call,
                    f"profile cost kernel {name!r} called at loop depth >= 2 "
                    "(each call is a full O(n^2 m) profile scan); build the "
                    "matrix once and slice per component, as "
                    "repro.aggregate.decompose.kemeny_decomposed does",
                )
            else:
                yield self.finding(
                    source,
                    call,
                    f"per-item {name!r} called at loop depth >= 2; "
                    "consider the repro.aggregate.batch position-matrix "
                    "kernels (bit-for-bit equal, one profile encode)",
                )
        for subscript, description in visitor.gathers:
            yield self.finding(
                source,
                subscript,
                f"per-item position gather {description!r} at loop depth >= 2; "
                "consider repro.aggregate.batch, which encodes the profile "
                "once into an (m, n) position matrix",
            )
