"""RP006 — docstring citations of nonexistent paper statements.

Docstrings throughout this library cite the source paper by statement
number ("Theorem 5", "Proposition 13"). Those citations are load-bearing
documentation: ``docs/THEORY.md`` maintains the statement index mapping
each cited result to its implementation and tests. A docstring citing a
Theorem/Proposition/Lemma/Corollary number that the index does not know is
either a typo or an undocumented dependency on the paper — both worth
failing the build for.

The index is the ``## Statement index`` section of ``docs/THEORY.md`` when
present (preferred — it is explicit and reviewable); otherwise every
statement reference anywhere in THEORY.md is accepted.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["TheoremCitationRule", "statement_references"]

_STATEMENT_RE = re.compile(
    r"\b(?P<kind>Theorem|Proposition|Lemma|Corollary)s?\s+(?P<numbers>\d+(?:\s*/\s*\d+)*)"
)

_INDEX_HEADING_RE = re.compile(r"^##\s+Statement index\s*$", re.MULTILINE)


def statement_references(text: str) -> set[tuple[str, int]]:
    """All ``(kind, number)`` statement references in ``text``.

    Handles the compact forms "Lemma 26/27" and "Theorems 33/35" as
    multiple references.
    """
    references: set[tuple[str, int]] = set()
    for match in _STATEMENT_RE.finditer(text):
        kind = match.group("kind")
        for number in re.split(r"\s*/\s*", match.group("numbers")):
            references.add((kind, int(number)))
    return references


def _index_section(theory: str) -> str | None:
    """The ``## Statement index`` section body, or None if absent."""
    match = _INDEX_HEADING_RE.search(theory)
    if match is None:
        return None
    rest = theory[match.end():]
    next_heading = re.search(r"^##\s+", rest, re.MULTILINE)
    return rest[: next_heading.start()] if next_heading else rest


@register
class TheoremCitationRule(Rule):
    """RP006 — docstring cites a statement missing from THEORY.md's index."""

    code = "RP006"
    name = "unknown-theorem-citation"
    severity = Severity.ERROR
    description = (
        "Docstring cites a Theorem/Proposition/Lemma/Corollary number that is "
        "not in docs/THEORY.md's statement index."
    )

    _DOC = "docs/THEORY.md"

    def _known_statements(self, project: Project) -> set[tuple[str, int]] | None:
        theory = project.read_doc(self._DOC)
        if theory is None:
            return None
        section = _index_section(theory)
        return statement_references(section if section is not None else theory)

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        known = self._known_statements(project)
        if known is None:  # no THEORY.md — nothing to cross-check against
            return
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if not docstring:
                continue
            line = node.body[0].lineno if isinstance(node, ast.Module) else node.lineno
            owner = getattr(node, "name", "module")
            for kind, number in sorted(statement_references(docstring)):
                if (kind, number) not in known:
                    yield self.finding(
                        source,
                        line,
                        f"docstring of {owner} cites {kind} {number}, which is "
                        f"not in {self._DOC}'s statement index",
                    )
