"""RP015/RP016 — configuration hygiene and exception-safe mutation.

**RP015 (env-var hygiene).** Environment variables are ambient global
state: a library that consults them in arbitrary places cannot be
reasoned about from its call sites, and worker processes may see a
different environment than the parent. All ``os.environ`` access is
therefore confined to three sanctioned modules — :mod:`repro.parallel`
(``REPRO_JOBS`` via ``resolve_jobs``), :mod:`repro.analysis.contracts`
(``REPRO_DEBUG``), and :mod:`repro.obs.spans` (``REPRO_TRACE``) — which
expose the result through ordinary function parameters. A read anywhere
else is a finding; deliberate exceptions go in the committed baseline
with a reason, not a noqa, so they stay visible in one place.

**RP016 (validate-before-mutate).** Public mutating methods on the
aggregator and db classes must be exception-safe in the simplest
possible way: every ``raise`` (including calls to raising helpers such
as ``_encode``) happens *before* the first write to ``self``. A raise
after a partial write leaves the object in a half-updated state that the
caller can still reach — the online aggregator's count/rows/cache
invariants are exactly the kind of thing this corrupts. The rule replays
each method's raise positions, self-writes, and same-class helper calls
(helpers contribute their own raises/writes at the call line) in line
order and reports any raise that follows a write.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, register

__all__ = ["EnvHygieneRule", "ValidateBeforeMutateRule"]

#: Modules allowed to read the environment (each owns one variable).
_SANCTIONED_ENV_MODULES = frozenset(
    {
        "repro.parallel",
        "repro.analysis.contracts",
        "repro.obs.spans",
        "repro.serve.config",
    }
)

#: Module prefixes whose classes carry the validate-before-mutate contract.
_STATEFUL_PREFIXES = ("repro.aggregate.", "repro.db.")


@register
class EnvHygieneRule(Rule):
    """RP015 — environment read outside the sanctioned modules."""

    code = "RP015"
    name = "env-read-outside-sanctioned"
    severity = Severity.ERROR
    description = (
        "os.environ is consulted outside the sanctioned configuration "
        "sites (repro.parallel / repro.analysis.contracts / "
        "repro.obs.spans); ambient reads make behaviour depend on where "
        "a function runs. Thread the value through a parameter, or add "
        "the site to the committed baseline with a reason."
    )

    def finish(self, project: Project) -> Iterator[Finding]:
        flow = project.flow()
        for qualname in sorted(flow.summaries):
            summary = flow.summaries[qualname]
            if not summary.env_reads:
                continue
            info = flow.graph.functions[qualname]
            if info.module in _SANCTIONED_ENV_MODULES:
                continue
            if info.module.startswith("repro.analysis.flow"):
                continue  # the analyzer's own env-idiom matchers
            for read in summary.env_reads:
                variable = read.variable or "<dynamic>"
                yield self.finding(
                    info.source,
                    read.line,
                    f"environment variable {variable} read outside the "
                    "sanctioned configuration modules; pass the value in "
                    "explicitly instead",
                )


@register
class ValidateBeforeMutateRule(Rule):
    """RP016 — a raise can interrupt a half-applied state mutation."""

    code = "RP016"
    name = "mutate-before-validate"
    severity = Severity.ERROR
    description = (
        "A public mutating method on an aggregator/db class raises (or "
        "calls a raising helper) after its first write to self; an "
        "exception there leaves the object half-updated but reachable. "
        "Complete all validation before the first self-write."
    )

    def finish(self, project: Project) -> Iterator[Finding]:
        flow = project.flow()
        for qualname in sorted(flow.graph.functions):
            info = flow.graph.functions[qualname]
            if info.kind != "method" or info.cls is None:
                continue
            if not info.module.startswith(_STATEFUL_PREFIXES):
                continue
            if info.name.startswith("_"):
                continue  # private helpers are validated at their call sites
            summary = flow.summary(qualname)
            if summary is None:
                continue

            methods = flow.class_methods(info.module, info.cls)
            raise_positions: list[tuple[int, str]] = [
                (line, "raise statement") for line in summary.raise_lines
            ]
            write_positions: list[int] = list(summary.self_write_lines)
            for called, line in summary.self_calls:
                callee = methods.get(called)
                if callee is None:
                    continue
                if callee.qualname in flow.may_raise:
                    raise_positions.append((line, f"call to raising helper self.{called}()"))
                callee_summary = flow.summary(callee.qualname)
                if callee_summary is not None and callee_summary.self_write_lines:
                    write_positions.append(line)

            if not write_positions or not raise_positions:
                continue
            first_write = min(write_positions)
            for line, what in sorted(raise_positions):
                if line > first_write:
                    yield self.finding(
                        info.source,
                        line,
                        f"{what} at line {line} follows the first self-write "
                        f"(line {first_write}) in {info.cls}.{info.name}(); "
                        "an exception here leaves the instance half-mutated "
                        "— hoist validation above the first write",
                    )
