"""The shipped RPxxx rules. Importing this package registers every rule
with :mod:`repro.analysis.engine`.

=====  ====================================  =========================================
Code   Module                                What it enforces
=====  ====================================  =========================================
RP001  :mod:`~repro.analysis.rules.numerics`       no exact float equality on distances
RP002  :mod:`~repro.analysis.rules.contracts_xref` entry points validate their domain
RP003  :mod:`~repro.analysis.rules.api_surface`    ``__all__`` matches real bindings
RP004  :mod:`~repro.analysis.rules.oracles`        naive oracles stay out of serving code
RP005  :mod:`~repro.analysis.rules.hygiene`        no mutable default arguments
RP006  :mod:`~repro.analysis.rules.theory`         paper citations exist in THEORY.md
RP007  :mod:`~repro.analysis.rules.hygiene`        no bare/overbroad ``except``
RP008  :mod:`~repro.analysis.rules.api_surface`    exported metrics have axiom coverage
RP009  :mod:`~repro.analysis.rules.batching`       all-pairs loops use the batch layer
RP010  :mod:`~repro.analysis.rules.verify_xref`    exported metrics have a fuzz oracle
RP011  :mod:`~repro.analysis.rules.obs_xref`       kernel modules report into repro.obs
RP012  :mod:`~repro.analysis.rules.flow_safety`    worker-reachable code is state-pure
RP013  :mod:`~repro.analysis.rules.flow_safety`    no order-sensitive set iteration
RP014  :mod:`~repro.analysis.rules.flow_numerics`  kernels stay in the int64 lattice
RP015  :mod:`~repro.analysis.rules.flow_hygiene`   env reads only at sanctioned sites
RP016  :mod:`~repro.analysis.rules.flow_hygiene`   validate before the first self-write
=====  ====================================  =========================================

RP012–RP016 are *interprocedural*: they query the whole-program
:class:`~repro.analysis.flow.fixpoint.FlowAnalysis` built lazily per
run from the call graph and effect summaries in
:mod:`repro.analysis.flow`.
"""

from repro.analysis.rules.api_surface import DunderAllRule, MetricTestMatrixRule
from repro.analysis.rules.batching import PairwiseLoopRule
from repro.analysis.rules.contracts_xref import DomainValidationRule
from repro.analysis.rules.flow_hygiene import EnvHygieneRule, ValidateBeforeMutateRule
from repro.analysis.rules.flow_numerics import DtypeSoundnessRule
from repro.analysis.rules.flow_safety import ParallelSafetyRule, UnorderedIterationRule
from repro.analysis.rules.hygiene import MutableDefaultRule, OverbroadExceptRule
from repro.analysis.rules.numerics import FloatDistanceComparisonRule
from repro.analysis.rules.obs_xref import ObsInstrumentationRule
from repro.analysis.rules.oracles import OracleImportRule
from repro.analysis.rules.theory import TheoremCitationRule
from repro.analysis.rules.verify_xref import OracleCoverageRule

__all__ = [
    "FloatDistanceComparisonRule",
    "DomainValidationRule",
    "DunderAllRule",
    "OracleImportRule",
    "MutableDefaultRule",
    "TheoremCitationRule",
    "OverbroadExceptRule",
    "MetricTestMatrixRule",
    "PairwiseLoopRule",
    "OracleCoverageRule",
    "ObsInstrumentationRule",
    "ParallelSafetyRule",
    "UnorderedIterationRule",
    "DtypeSoundnessRule",
    "EnvHygieneRule",
    "ValidateBeforeMutateRule",
]
