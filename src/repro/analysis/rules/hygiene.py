"""General code-hygiene rules: RP005 (mutable defaults), RP007 (overbroad
``except``)."""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["MutableDefaultRule", "OverbroadExceptRule"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    """RP005 — a mutable default argument is shared across calls; the usual
    Python footgun, doubly dangerous for cached rankings."""

    code = "RP005"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    description = (
        "Function parameter defaults to a mutable object (list/dict/set/...); "
        "use None and create the object inside the function."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            defaults = list(arguments.defaults) + [
                default for default in arguments.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        source,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and build the object in the body",
                    )


@register
class OverbroadExceptRule(Rule):
    """RP007 — bare ``except:`` and ``except Exception:`` handlers that
    swallow everything, including the library's own programming errors.

    ``repro.errors`` exists precisely so callers can write
    ``except ReproError``; a broad handler is accepted only when it
    visibly re-raises."""

    code = "RP007"
    name = "overbroad-except"
    severity = Severity.ERROR
    description = (
        "Bare except / except (Base)Exception without a re-raise; catch "
        "ReproError (or a concrete exception) instead."
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        targets: list[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            targets = list(handler.type.elts)
        else:
            targets = [handler.type]
        for target in targets:
            name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", None)
            if name in self._BROAD:
                return True
        return False

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(inner, ast.Raise) for inner in ast.walk(handler))

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if node.type is not None and self._reraises(node):
                continue
            what = "bare except" if node.type is None else "except Exception"
            yield self.finding(
                source,
                node,
                f"{what} swallows programming errors; catch ReproError or a "
                "concrete exception (or re-raise)",
            )
