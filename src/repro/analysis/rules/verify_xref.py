"""RP010 — public metric exported without an oracle-registry entry.

The verification harness (:mod:`repro.verify`) differential-tests every
metric code path against an independent reference implementation — but
only for entry points some :class:`~repro.verify.oracles.OracleEntry`
declares in its ``covers`` tuple. A metric added to
``repro.metrics.__all__`` without a ``covers`` declaration silently
escapes fuzzing: its fast/batch variants could drift from the object
implementation and nothing automated would notice.

This project rule parses the ``covers=(...)`` keyword tuples out of
``src/repro/verify/oracles.py`` and cross-references them against the
metric-shaped names in ``repro.metrics.__all__`` (the same shape filter
RP008 uses, widened to the pair-count/batch kernels). Related-work
correlation coefficients are excluded: they are not distance entry points
and have no reference/variant split. Like RP008, the rule stays silent
when either side of the cross-reference is missing from the analyzed
project (e.g. when analyzing a lone file).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.rules.api_surface import module_all

__all__ = ["OracleCoverageRule", "oracle_covers"]

#: Exported names that must carry oracle coverage: the metric families of
#: RP008 plus the pair-classification and batch kernels.
_COVERED_NAME_RE = re.compile(
    r"^(kendall|footrule|normalized_|pair_counts|pairwise_|count_inversions)"
)

#: Pattern-matching exports that are not differential-testable distance
#: entry points (correlation coefficients from the related-work module).
_EXEMPT_EXPORTS = frozenset({"kendall_tau_a", "kendall_tau_b"})

_ORACLES_SUFFIX = "repro/verify/oracles.py"
_METRICS_INIT_SUFFIX = "repro/metrics/__init__.py"


def oracle_covers(tree: ast.Module) -> set[str]:
    """All string constants inside ``covers=(...)`` keyword arguments."""
    covered: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg != "covers":
                continue
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                covered.update(
                    element.value
                    for element in keyword.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
    return covered


@register
class OracleCoverageRule(Rule):
    """RP010 — metric in ``repro.metrics.__all__`` with no oracle entry."""

    code = "RP010"
    name = "oracle-registry-coverage"
    severity = Severity.ERROR
    description = (
        "Metric exported by repro.metrics.__init__ is not covered by any "
        "OracleEntry in repro.verify.oracles; the fuzz harness cannot "
        "differential-test it."
    )

    def __init__(self) -> None:
        self._metrics_init: SourceFile | None = None
        self._covered: set[str] | None = None

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        posix = source.posix
        if posix.endswith(_METRICS_INIT_SUFFIX):
            self._metrics_init = source
        elif posix.endswith(_ORACLES_SUFFIX):
            self._covered = oracle_covers(source.tree)
        return iter(())

    def finish(self, project: Project) -> Iterator[Finding]:
        source = self._metrics_init
        covered = self._covered
        self._metrics_init = None
        self._covered = None
        if source is None or covered is None:
            # one side of the cross-reference is outside the analyzed set
            return
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if not _COVERED_NAME_RE.match(entry) or entry in _EXEMPT_EXPORTS:
                continue
            if entry not in covered:
                yield self.finding(
                    source,
                    all_node,
                    f"metric {entry!r} is exported but no OracleEntry in "
                    "repro.verify.oracles declares it in covers=(...); add a "
                    "differential oracle for it",
                )
