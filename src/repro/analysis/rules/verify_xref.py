"""RP010 — public metric/kernel exported without an oracle-registry entry.

The verification harness (:mod:`repro.verify`) differential-tests every
metric code path against an independent reference implementation — but
only for entry points some :class:`~repro.verify.oracles.OracleEntry`
declares in its ``covers`` tuple. A metric added to
``repro.metrics.__all__`` without a ``covers`` declaration silently
escapes fuzzing: its fast/batch variants could drift from the object
implementation and nothing automated would notice.

This project rule parses the ``covers=(...)`` keyword tuples out of
``src/repro/verify/oracles.py`` and cross-references them against two
export surfaces:

* the metric-shaped names in ``repro.metrics.__all__`` (the same shape
  filter RP008 uses, widened to the pair-count/batch kernels); related-
  work correlation coefficients are excluded — they are not distance
  entry points and have no reference/variant split;
* **every** name in ``repro.aggregate.batch.__all__`` — the position-
  matrix aggregation kernels are bit-for-bit claims against the dict
  reference path, so each one must have a differential oracle.

Like RP008, the rule stays silent when a surface (or the oracle registry)
is missing from the analyzed project (e.g. when analyzing a lone file).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.rules.api_surface import module_all

__all__ = ["OracleCoverageRule", "oracle_covers"]

#: Exported names that must carry oracle coverage: the metric families of
#: RP008 plus the pair-classification and batch kernels.
_COVERED_NAME_RE = re.compile(
    r"^(kendall|footrule|normalized_|pair_counts|pairwise_|count_inversions)"
)

#: Pattern-matching exports that are not differential-testable distance
#: entry points (correlation coefficients from the related-work module).
_EXEMPT_EXPORTS = frozenset({"kendall_tau_a", "kendall_tau_b"})

_ORACLES_SUFFIX = "repro/verify/oracles.py"
_METRICS_INIT_SUFFIX = "repro/metrics/__init__.py"
_AGGREGATE_BATCH_SUFFIX = "repro/aggregate/batch.py"


def oracle_covers(tree: ast.Module) -> set[str]:
    """All string constants inside ``covers=(...)`` keyword arguments."""
    covered: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg != "covers":
                continue
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                covered.update(
                    element.value
                    for element in keyword.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
    return covered


@register
class OracleCoverageRule(Rule):
    """RP010 — exported metric/aggregation kernel with no oracle entry."""

    code = "RP010"
    name = "oracle-registry-coverage"
    severity = Severity.ERROR
    description = (
        "Name exported by repro.metrics.__init__ or repro.aggregate.batch "
        "is not covered by any OracleEntry in repro.verify.oracles; the "
        "fuzz harness cannot differential-test it."
    )

    def __init__(self) -> None:
        self._metrics_init: SourceFile | None = None
        self._aggregate_batch: SourceFile | None = None
        self._covered: set[str] | None = None

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        posix = source.posix
        if posix.endswith(_METRICS_INIT_SUFFIX):
            self._metrics_init = source
        elif posix.endswith(_AGGREGATE_BATCH_SUFFIX):
            self._aggregate_batch = source
        elif posix.endswith(_ORACLES_SUFFIX):
            self._covered = oracle_covers(source.tree)
        return iter(())

    def finish(self, project: Project) -> Iterator[Finding]:
        metrics_init = self._metrics_init
        aggregate_batch = self._aggregate_batch
        covered = self._covered
        self._metrics_init = None
        self._aggregate_batch = None
        self._covered = None
        if covered is None:
            # the oracle registry is outside the analyzed set
            return
        if metrics_init is not None:
            yield from self._check_metrics(metrics_init, covered)
        if aggregate_batch is not None:
            yield from self._check_aggregate_batch(aggregate_batch, covered)

    def _check_metrics(
        self, source: SourceFile, covered: set[str]
    ) -> Iterator[Finding]:
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if not _COVERED_NAME_RE.match(entry) or entry in _EXEMPT_EXPORTS:
                continue
            if entry not in covered:
                yield self.finding(
                    source,
                    all_node,
                    f"metric {entry!r} is exported but no OracleEntry in "
                    "repro.verify.oracles declares it in covers=(...); add a "
                    "differential oracle for it",
                )

    def _check_aggregate_batch(
        self, source: SourceFile, covered: set[str]
    ) -> Iterator[Finding]:
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if entry not in covered:
                yield self.finding(
                    source,
                    all_node,
                    f"aggregation kernel {entry!r} is exported but no "
                    "OracleEntry in repro.verify.oracles declares it in "
                    "covers=(...); the dict path is the natural oracle",
                )
