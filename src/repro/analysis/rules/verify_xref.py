"""RP010 — public metric/kernel exported without an oracle-registry entry.

The verification harness (:mod:`repro.verify`) differential-tests every
metric code path against an independent reference implementation — but
only for entry points some :class:`~repro.verify.oracles.OracleEntry`
declares in its ``covers`` tuple. A metric added to
``repro.metrics.__all__`` without a ``covers`` declaration silently
escapes fuzzing: its fast/batch variants could drift from the object
implementation and nothing automated would notice.

This project rule parses the ``covers=(...)`` keyword tuples out of
``src/repro/verify/oracles.py`` and cross-references them against two
export surfaces:

* the metric-shaped names in ``repro.metrics.__all__`` (the same shape
  filter RP008 uses, widened to the pair-count/batch kernels); related-
  work correlation coefficients are excluded — they are not distance
  entry points and have no reference/variant split;
* **every** name in ``repro.aggregate.batch.__all__`` — the position-
  matrix aggregation kernels are bit-for-bit claims against the dict
  reference path, so each one must have a differential oracle.

Plugin metric modules (under ``repro/metrics/plugins/``) are covered
differently: the verify harness auto-contributes an ``oracle:plugin-*``
entry and symmetry/regularity relations for every registered
:class:`~repro.metrics.registry.MetricPlugin` — *provided* the
registration supplies its ``oracle=`` reference and declares an
``axiom_class=``. This rule therefore flags any ``MetricPlugin(...)``
call in a plugin module that omits either keyword: such a plugin would
register, dispatch, and silently escape both the differential and the
metamorphic harness.

Like RP008, the rule stays silent when a surface (or the oracle registry)
is missing from the analyzed project (e.g. when analyzing a lone file);
the plugin-module check is per-file and needs no project context.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register
from repro.analysis.rules.api_surface import module_all

__all__ = ["OracleCoverageRule", "oracle_covers"]

#: Exported names that must carry oracle coverage: the metric families of
#: RP008 plus the pair-classification and batch kernels.
_COVERED_NAME_RE = re.compile(
    r"^(kendall|footrule|normalized_|pair_counts|pairwise_|count_inversions)"
)

#: Pattern-matching exports that are not differential-testable distance
#: entry points (correlation coefficients from the related-work module).
_EXEMPT_EXPORTS = frozenset({"kendall_tau_a", "kendall_tau_b"})

_ORACLES_SUFFIX = "repro/verify/oracles.py"
_METRICS_INIT_SUFFIX = "repro/metrics/__init__.py"
_AGGREGATE_BATCH_SUFFIX = "repro/aggregate/batch.py"
_PLUGINS_DIR = "repro/metrics/plugins/"

#: Keywords a MetricPlugin registration must pass for the verify harness
#: to auto-contribute its differential oracle and axiom relations.
_REQUIRED_PLUGIN_KEYWORDS = ("oracle", "axiom_class")


def oracle_covers(tree: ast.Module) -> set[str]:
    """All string constants inside ``covers=(...)`` keyword arguments."""
    covered: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if keyword.arg != "covers":
                continue
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                covered.update(
                    element.value
                    for element in keyword.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
    return covered


@register
class OracleCoverageRule(Rule):
    """RP010 — exported metric/aggregation kernel with no oracle entry."""

    code = "RP010"
    name = "oracle-registry-coverage"
    severity = Severity.ERROR
    description = (
        "Name exported by repro.metrics.__init__ or repro.aggregate.batch "
        "is not covered by any OracleEntry in repro.verify.oracles; the "
        "fuzz harness cannot differential-test it."
    )

    def __init__(self) -> None:
        self._metrics_init: SourceFile | None = None
        self._aggregate_batch: SourceFile | None = None
        self._covered: set[str] | None = None

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        posix = source.posix
        if posix.endswith(_METRICS_INIT_SUFFIX):
            self._metrics_init = source
        elif posix.endswith(_AGGREGATE_BATCH_SUFFIX):
            self._aggregate_batch = source
        elif posix.endswith(_ORACLES_SUFFIX):
            self._covered = oracle_covers(source.tree)
        if _PLUGINS_DIR in posix and not posix.endswith("__init__.py"):
            return self._check_plugin_module(source)
        return iter(())

    def _check_plugin_module(self, source: SourceFile) -> Iterator[Finding]:
        """Flag MetricPlugin registrations missing oracle= or axiom_class=.

        The verify harness only auto-contributes an ``oracle:plugin-*``
        entry and symmetry/regularity relations when the registration
        carries both keywords; a plugin without them dispatches but is
        never fuzzed.
        """
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name != "MetricPlugin":
                continue
            passed = {keyword.arg for keyword in node.keywords}
            for required in _REQUIRED_PLUGIN_KEYWORDS:
                if required not in passed:
                    yield self.finding(
                        source,
                        node,
                        f"MetricPlugin registration without {required}=: the "
                        "verify harness cannot auto-contribute its "
                        f"{'differential oracle' if required == 'oracle' else 'axiom relations'}; "
                        "the plugin would dispatch but never be fuzzed",
                    )

    def finish(self, project: Project) -> Iterator[Finding]:
        metrics_init = self._metrics_init
        aggregate_batch = self._aggregate_batch
        covered = self._covered
        self._metrics_init = None
        self._aggregate_batch = None
        self._covered = None
        if covered is None:
            # the oracle registry is outside the analyzed set
            return
        if metrics_init is not None:
            yield from self._check_metrics(metrics_init, covered)
        if aggregate_batch is not None:
            yield from self._check_aggregate_batch(aggregate_batch, covered)

    def _check_metrics(
        self, source: SourceFile, covered: set[str]
    ) -> Iterator[Finding]:
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if not _COVERED_NAME_RE.match(entry) or entry in _EXEMPT_EXPORTS:
                continue
            if entry not in covered:
                yield self.finding(
                    source,
                    all_node,
                    f"metric {entry!r} is exported but no OracleEntry in "
                    "repro.verify.oracles declares it in covers=(...); add a "
                    "differential oracle for it",
                )

    def _check_aggregate_batch(
        self, source: SourceFile, covered: set[str]
    ) -> Iterator[Finding]:
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if entry not in covered:
                yield self.finding(
                    source,
                    all_node,
                    f"aggregation kernel {entry!r} is exported but no "
                    "OracleEntry in repro.verify.oracles declares it in "
                    "covers=(...); the dict path is the natural oracle",
                )
