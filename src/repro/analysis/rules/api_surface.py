"""Public-API surface rules: RP003 (``__all__`` consistency) and RP008
(metric exported without axiom/equivalence test coverage)."""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["DunderAllRule", "MetricTestMatrixRule", "module_all"]


def module_all(tree: ast.Module) -> tuple[ast.expr | None, list[str]]:
    """The ``__all__`` assignment node and its string entries (if literal)."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    entries = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant) and isinstance(element.value, str)
                    ]
                    return value, entries
                return value, []
    return None, []


def _defined_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound conditionally (TYPE_CHECKING blocks, fallbacks)
            for inner in ast.walk(node):
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(inner.name)
                elif isinstance(inner, (ast.Import, ast.ImportFrom)):
                    for alias in inner.names:
                        if alias.name != "*":
                            names.add(alias.asname or alias.name.split(".")[0])
    return names


@register
class DunderAllRule(Rule):
    """RP003 — ``__all__`` out of sync with the module's actual bindings."""

    code = "RP003"
    name = "dunder-all-consistency"
    severity = Severity.ERROR
    description = (
        "__all__ lists a name the module does not define/import, lists a "
        "duplicate, or omits a public module-level def/class."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        defined = _defined_names(source.tree)
        seen: set[str] = set()
        if "__getattr__" in defined:
            # PEP 562 module: names may be provided lazily; only the
            # duplicate check remains meaningful.
            for entry in entries:
                if entry in seen:
                    yield self.finding(source, all_node, f"__all__ lists {entry!r} twice")
                seen.add(entry)
            return
        for entry in entries:
            if entry in seen:
                yield self.finding(source, all_node, f"__all__ lists {entry!r} twice")
            seen.add(entry)
            if entry not in defined:
                yield self.finding(
                    source,
                    all_node,
                    f"__all__ lists {entry!r}, which the module neither defines "
                    "nor imports",
                )
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in seen:
                    yield self.finding(
                        source,
                        node,
                        f"public {node.name!r} is missing from __all__",
                        severity=Severity.WARNING,
                    )


#: Exported metric names that must appear in the axiom/equivalence matrix.
_METRIC_NAME_RE = re.compile(r"^(kendall|footrule|normalized_)")

#: Names matching the pattern that are *not* distance entry points:
#: reference oracles and the related-work correlation coefficients
#: (values in [-1, 1]; distance axioms do not apply).
_NON_METRIC_EXPORTS = frozenset({"kendall_naive", "kendall_tau_a", "kendall_tau_b"})

#: The test files constituting the axiom/equivalence matrix.
MATRIX_FILES = ("test_axioms.py", "test_equivalence.py", "test_batch.py")


@register
class MetricTestMatrixRule(Rule):
    """RP008 — metric exported by ``repro.metrics`` but absent from the
    axiom/equivalence test matrix.

    Distance axioms (symmetry, triangle/near-triangle) are the load-bearing
    correctness properties of every aggregation pipeline built on top;
    a metric that ships without appearing in ``tests/test_axioms.py`` or
    ``tests/test_equivalence.py`` has no automated guarantee of them.
    """

    code = "RP008"
    name = "metric-missing-from-axiom-matrix"
    severity = Severity.ERROR
    description = (
        "Metric registered in repro.metrics.__init__ does not appear in the "
        "axiom/equivalence test matrix (tests/test_axioms.py, "
        "tests/test_equivalence.py, tests/test_batch.py)."
    )

    @staticmethod
    def _is_metrics_init(source: SourceFile) -> bool:
        posix = source.posix
        return posix.endswith("repro/metrics/__init__.py")

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not self._is_metrics_init(source):
            return
        matrix = project.test_sources(MATRIX_FILES)
        if not matrix:  # no test suite in reach (e.g. analyzing a lone file)
            return
        corpus = "\n".join(matrix.values())
        mentioned = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", corpus))
        all_node, entries = module_all(source.tree)
        if all_node is None:
            return
        for entry in entries:
            if not _METRIC_NAME_RE.match(entry) or entry in _NON_METRIC_EXPORTS:
                continue
            if entry not in mentioned:
                yield self.finding(
                    source,
                    all_node,
                    f"metric {entry!r} is exported but never exercised by the "
                    f"axiom/equivalence matrix ({', '.join(sorted(matrix))})",
                )
