"""RP014 — dtype soundness in the exact-integer kernel modules.

The batch kernels promise bit-for-bit equality with the object layer
(tier-1 tests assert it on this platform). That equality is a property
of staying inside the int64 lattice; three silent escapes break it only
*elsewhere* — a different OS, a larger n — which is exactly where a
test suite cannot see:

* ``(a / 4).astype(np.int64)`` — float64 round-trip truncated without
  explicit rounding, exact only while the intermediate is small enough;
* ``astype(np.int32)`` / ``dtype=np.int32`` — overflows past ~65k item
  pairs (``n*(n-1)/2`` exceeds int32 at n ≈ 65 536);
* ``mask.sum()`` with no ``dtype=`` — numpy's bool accumulator defaults
  to the *platform* integer, int32 on Windows.

The rule runs the :mod:`repro.analysis.flow.dtypes` inference over every
function in the numeric kernel modules, with interprocedural return
dtypes from annotations (``npt.NDArray[np.int64]``) resolved through the
call graph. Scope is deliberately limited to the kernel allowlist:
dtype discipline is a *contract* there and merely a style question
everywhere else.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, register
from repro.analysis.flow.dtypes import scan_function_dtypes

__all__ = ["DtypeSoundnessRule"]

#: Modules where the int64 lattice is a contract, not a preference.
#: The arena and mmap-list modules are included because they are exactly
#: where the *sanctioned* int32 storage mode lives: narrowing is legal
#: there only in functions that consult ``int32_fits``/``storage_dtype``
#: (the dtype scan suppresses guarded narrowing; accumulator hazards
#: remain unconditional).
_KERNEL_MODULES = frozenset(
    {
        "repro.metrics.batch",
        "repro.metrics.fast",
        "repro.aggregate.batch",
        "repro.aggregate.online",
        "repro.core.arena",
        "repro.db.mmap_lists",
    }
)


@register
class DtypeSoundnessRule(Rule):
    """RP014 — int64-lattice escapes in the exact-integer kernels."""

    code = "RP014"
    name = "dtype-unsound"
    severity = Severity.ERROR
    description = (
        "A numeric kernel module leaves the int64 lattice implicitly: a "
        "float64 intermediate cast to int64 without explicit rounding, a "
        "narrowing to int32/int16, or a reduction over a bool/narrow "
        "array without dtype= (platform-int accumulator). Exactness then "
        "depends on the platform and the input size."
    )

    def finish(self, project: Project) -> Iterator[Finding]:
        flow = project.flow()
        for qualname in sorted(flow.graph.functions):
            info = flow.graph.functions[qualname]
            if info.module not in _KERNEL_MODULES:
                continue
            if isinstance(info.node, ast.Lambda):
                continue
            resolver = flow.resolver(info)
            scan = scan_function_dtypes(
                info.node,
                return_dtypes=flow.return_dtypes,
                resolve=resolver.resolve,
            )
            for issue in scan.issues:
                yield self.finding(
                    info.source,
                    issue.line,
                    f"[{issue.kind}] {issue.message}",
                )
