"""RP004 — quadratic/exponential reference oracles leaking into serving code.

``kendall_naive``, ``*_bruteforce`` and friends exist to validate the fast
paths, not to run in them: the naive Kendall is O(n²) and the Hausdorff
oracles enumerate full-refinement sets (product of factorials). They are
legal in ``tests/``, ``benchmarks/`` and the experiment harness
(``repro/experiments/``) — anywhere else an import is almost certainly an
accidental 1000× slowdown at scale.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["OracleImportRule", "ORACLE_SUFFIXES", "is_oracle_name"]

#: Name suffixes identifying reference oracles.
ORACLE_SUFFIXES = ("_naive", "_bruteforce")

#: Path fragments where oracle imports are measurement, not serving.
#: ``repro/verify/`` is the differential harness — reference oracles are
#: its whole point.
_ALLOWED_FRAGMENTS = (
    "tests/",
    "benchmarks/",
    "repro/experiments/",
    "repro/verify/",
    "conftest",
)


def is_oracle_name(name: str) -> bool:
    return name.endswith(ORACLE_SUFFIXES)


def _is_allowed_location(source: SourceFile) -> bool:
    posix = source.posix
    return any(fragment in posix for fragment in _ALLOWED_FRAGMENTS)


@register
class OracleImportRule(Rule):
    """RP004 — naive-oracle import outside tests/benchmarks/experiments."""

    code = "RP004"
    name = "oracle-import-in-serving-code"
    severity = Severity.ERROR
    description = (
        "O(n²)/exponential reference oracle (…_naive, …_bruteforce) imported "
        "outside tests/, benchmarks/, or repro/experiments/; use the fast "
        "implementation instead."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if _is_allowed_location(source):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if is_oracle_name(alias.name):
                        yield self.finding(
                            source,
                            node,
                            f"reference oracle {alias.name!r} imported in serving "
                            "code; oracles belong in tests/, benchmarks/, or "
                            "repro/experiments/",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if is_oracle_name(alias.name.rsplit(".", 1)[-1]):
                        yield self.finding(
                            source,
                            node,
                            f"reference-oracle module {alias.name!r} imported in "
                            "serving code",
                        )
