"""RP001 — exact float comparison on distance values.

Most of this library's distances are floats (``K^(p)`` with fractional
penalties, ``F_prof`` on half-integral positions, normalized variants).
Comparing them with ``==`` / ``!=`` is a latent bug whenever a value ever
leaves the exact half-integral regime (normalization, ratios, weighted
aggregation); code must use ``math.isclose`` / ``pytest.approx`` or the
tolerance constants the modules define.

The rule is *domain-aware*: it only fires when an operand of the
comparison is, syntactically, a call to a known float-valued distance
function — so ``n == 0`` or ``phi == 1.0`` sentinel checks stay legal.
Integer-exact distances (``kendall_full``, ``kendall_hausdorff_counts``,
``pair_counts``) are deliberately excluded.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, Project, Rule, Severity, SourceFile, register

__all__ = ["FloatDistanceComparisonRule", "FLOAT_DISTANCE_CALLS"]

#: Float-valued distance entry points shipped by the library. A call to any
#: of these (bare name or attribute suffix) taints the comparison.
FLOAT_DISTANCE_CALLS = frozenset(
    {
        "kendall",
        "kendall_naive",
        "footrule",
        "footrule_full",
        "footrule_hausdorff",
        "kendall_hausdorff_bruteforce",
        "footrule_hausdorff_bruteforce",
        "normalized_kendall",
        "normalized_footrule",
        "normalized_kendall_hausdorff",
        "normalized_footrule_hausdorff",
        "k_profile_l1",
        "f_profile_l1",
        "l1_distance",
        "total_distance",
        "total_l1_to_function",
        "kendall_tau_a",
        "kendall_tau_b",
        "goodman_kruskal_gamma",
        "spearman_rho",
        "baggerly_footrule",
        "normalized_baggerly_footrule",
        "fks_kendall",
        "fks_footrule",
        "fks_footrule_hausdorff",
    }
)


def _called_name(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class FloatDistanceComparisonRule(Rule):
    """RP001 — ``==`` / ``!=`` where one side calls a float distance."""

    code = "RP001"
    name = "float-distance-equality"
    severity = Severity.ERROR
    description = (
        "Exact ==/!= comparison on a float-valued distance; use math.isclose "
        "(or pytest.approx in tests) with an explicit tolerance."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            for operand in operands:
                name = _called_name(operand)
                if name in FLOAT_DISTANCE_CALLS:
                    yield self.finding(
                        source,
                        node,
                        f"exact equality comparison on float distance {name}(); "
                        "use math.isclose / pytest.approx with a tolerance",
                    )
                    break
