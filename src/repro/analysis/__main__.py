"""``python -m repro.analysis`` — run the RP rules over source paths."""

import sys

from repro.analysis.cli import main

sys.exit(main())
