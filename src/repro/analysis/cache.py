"""On-disk incremental result cache for whole-program analysis runs.

The flow rules (RP012–RP016) are *interprocedural*: a finding in one
file can depend on any other file in the run (a new ``parallel_map``
call site makes previously clean code worker-reachable). Per-file
caching is therefore unsound; the unit of caching is the **whole run**.
The key is a SHA-256 over

* the cache format version and the rule-set version
  (:data:`RULESET_VERSION` — bumped whenever any rule's behaviour
  changes, which invalidates every prior entry at once),
* the selected rule codes,
* the sorted ``(relative path, content hash)`` pairs of every analyzed
  file.

Any byte changed in any file, any rule added or removed, any engine
release — a different key, a cold run. An unchanged tree re-keys to the
same entry and the stored findings are returned without parsing a
single file beyond the hashing pass, which is what makes warm runs an
order of magnitude faster.

Baseline application deliberately happens *after* the cache layer:
editing ``analysis-baseline.json`` re-gates cached findings without
invalidating them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.engine import AnalysisResult, Finding

__all__ = [
    "RULESET_VERSION",
    "cache_dir_for",
    "cache_key",
    "load_cached",
    "store_cached",
]

#: Bump on any change to rule behaviour or the engine's finding format.
RULESET_VERSION = "2026.08-rp016"

_CACHE_FORMAT = "repro.analysis/cache-1"


def cache_dir_for(root: Path) -> Path:
    """Default cache location under the project root (gitignored)."""
    return root / ".repro-cache" / "analysis"


def cache_key(
    files: list[tuple[str, bytes]], codes: tuple[str, ...], ruleset: str | None = None
) -> str:
    """Deterministic key for one (file set, rule set) combination.

    ``files`` holds ``(relative posix path, raw content)`` pairs; order
    does not matter (pairs are sorted before hashing). ``ruleset``
    defaults to the *current* :data:`RULESET_VERSION` — read at call
    time, so bumping the constant invalidates every existing entry.
    """
    digest = hashlib.sha256()
    digest.update(_CACHE_FORMAT.encode())
    digest.update((ruleset if ruleset is not None else RULESET_VERSION).encode())
    digest.update(",".join(codes).encode())
    for name, content in sorted(files):
        digest.update(name.encode())
        digest.update(hashlib.sha256(content).digest())
    return digest.hexdigest()


def load_cached(cache_dir: Path, key: str) -> AnalysisResult | None:
    """The stored result for ``key``, or ``None`` on miss/corruption.

    A corrupt or unreadable entry is treated as a miss — the caller
    falls back to a cold run and overwrites it.
    """
    entry = cache_dir / f"{key}.json"
    try:
        payload = json.loads(entry.read_text(encoding="utf-8"))
        if payload.get("format") != _CACHE_FORMAT:
            return None
        return AnalysisResult(
            findings=[Finding.from_dict(raw) for raw in payload["findings"]],
            files_checked=int(payload["files_checked"]),
            rules_run=tuple(payload["rules_run"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store_cached(cache_dir: Path, key: str, result: AnalysisResult) -> None:
    """Persist ``result`` under ``key``; runs with parse errors are
    never cached (the error set depends on state the key ignores)."""
    if result.parse_errors:
        return
    cache_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": _CACHE_FORMAT,
        "ruleset": RULESET_VERSION,
        "findings": [finding.to_dict() for finding in result.findings],
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
    }
    entry = cache_dir / f"{key}.json"
    tmp = entry.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    tmp.replace(entry)
