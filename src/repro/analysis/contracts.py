"""Runtime metric contracts — the dynamic half of the analysis subsystem.

:func:`checked_metric` wraps a distance function with the paper's axioms as
executable postconditions, active only when the ``REPRO_DEBUG`` environment
variable is truthy (so production calls pay one ``dict`` lookup and nothing
else):

* **non-negativity** — ``d(sigma, tau) >= 0``;
* **regularity at zero** — ``d(sigma, sigma) == 0`` (within tolerance);
* **symmetry** — ``d(sigma, tau) == d(tau, sigma)``, recomputed;
* **(near-)triangle inequality** — against a small rolling history of
  recent calls sharing the same extra arguments: whenever the history
  holds ``d(x, a) = u`` and the new call computes ``d(a, b) = v``, the
  chained value ``d(x, b)`` must satisfy
  ``d(x, b) <= c * (u + v) + tol``.

The constant ``c`` comes from the paper. Metrics (``F_prof``, ``K_Haus``,
``F_Haus``, and ``K^(p)`` with ``p >= 1/2``) use ``c = 1``. For
``K^(p)`` with ``0 < p < 1/2``, Proposition 13's scaling relation
``K^(p) <= K^(1/2) <= (1/(2p)) K^(p)`` makes the relaxed triangle
inequality hold with ``c = 1/(2p)`` — see :func:`near_triangle_constant`.
At ``p = 0`` the function is not a distance measure and the triangle check
is skipped entirely.

The static rule RP002 cross-references this layer: decorating an entry
point with ``@checked_metric`` counts as domain-validation evidence,
because a symmetric recomputation plus the library's own validators run
under the contract.

Violations raise :class:`repro.errors.MetricContractError`.
"""

from __future__ import annotations

import functools
import math
import os
import threading
from collections import deque
from collections.abc import Callable
from typing import Any, TypeVar

from repro.errors import MetricContractError

__all__ = [
    "ENV_FLAG",
    "contracts_enabled",
    "near_triangle_constant",
    "checked_metric",
    "DEFAULT_TOLERANCE",
    "DEFAULT_HISTORY",
]

ENV_FLAG = "REPRO_DEBUG"
DEFAULT_TOLERANCE = 1e-9
DEFAULT_HISTORY = 4

_FALSY = frozenset({"", "0", "false", "False", "no", "off"})

F = TypeVar("F", bound=Callable[..., Any])


def contracts_enabled() -> bool:
    """True when ``REPRO_DEBUG`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "") not in _FALSY


def near_triangle_constant(p: float) -> float:
    """The relaxed-triangle constant of ``K^(p)`` (Proposition 13).

    ``c = 1`` for ``p >= 1/2`` (a genuine metric), ``c = 1/(2p)`` for
    ``0 < p < 1/2`` (a near metric), and ``inf`` at ``p = 0`` (not a
    distance measure — no triangle guarantee exists, so the check is
    skipped).
    """
    if p <= 0.0:
        return math.inf
    return 1.0 if p >= 0.5 else 1.0 / (2.0 * p)


_guard = threading.local()


def _checking() -> bool:
    return getattr(_guard, "active", False)


class _History:
    """Rolling record of recent calls, keyed by the extra (non-ranking)
    arguments so only like-for-like values are chained."""

    __slots__ = ("_entries", "_maxlen")

    def __init__(self, maxlen: int) -> None:
        self._entries: dict[Any, deque[tuple[Any, Any, float]]] = {}
        self._maxlen = maxlen

    @staticmethod
    def _key(args: tuple[Any, ...], kwargs: dict[str, Any]) -> Any:
        try:
            key = (args, tuple(sorted(kwargs.items())))
            hash(key)
        except TypeError:
            return None
        return key

    def chains_into(
        self, key: Any, first: Any, *, symmetric: bool
    ) -> list[tuple[Any, float]]:
        """Entries ``(x, u)`` with a recorded ``d(x, first) = u``.

        For symmetric metrics a recorded ``d(first, y)`` chains too, since
        it equals ``d(y, first)``.
        """
        if key is None:
            return []
        chained: list[tuple[Any, float]] = []
        for x, y, u in self._entries.get(key, ()):
            if y == first:
                chained.append((x, u))
            elif symmetric and x == first:
                chained.append((y, u))
        return chained

    def record(self, key: Any, sigma: Any, tau: Any, value: float) -> None:
        if key is None:
            return
        bucket = self._entries.setdefault(key, deque(maxlen=self._maxlen))
        bucket.append((sigma, tau, value))
        if len(self._entries) > 16:  # bound the number of distinct arg keys
            self._entries.pop(next(iter(self._entries)))


def _violation(func_name: str, axiom: str, detail: str) -> MetricContractError:
    return MetricContractError(
        f"metric contract violated: {func_name} broke {axiom} — {detail} "
        f"(checked because {ENV_FLAG} is set)"
    )


def checked_metric(
    name: str | None = None,
    *,
    symmetric: bool = True,
    constant: float = 1.0,
    constant_from: Callable[[tuple[Any, ...], dict[str, Any]], float] | None = None,
    history: int = DEFAULT_HISTORY,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Callable[[F], F]:
    """Decorate a distance ``d(sigma, tau, *extras)`` with axiom contracts.

    Parameters
    ----------
    name:
        Display name in violation messages (defaults to the function name).
    symmetric:
        Check ``d(sigma, tau) == d(tau, sigma)`` by recomputation.
    constant:
        The (near-)triangle constant ``c``; ``math.inf`` disables the check.
    constant_from:
        Optional ``(args, kwargs) -> c`` override for parameter-dependent
        constants (``K^(p)``'s regime depends on ``p``).
    history:
        How many recent calls per extra-argument key are retained for
        triangle chaining.
    tolerance:
        Absolute slack applied to every comparison.
    """

    def decorate(func: F) -> F:
        label = name or func.__name__
        call_history = _History(history)

        @functools.wraps(func)
        def wrapper(sigma: Any, tau: Any, *args: Any, **kwargs: Any) -> Any:
            value = func(sigma, tau, *args, **kwargs)
            if not contracts_enabled() or _checking():
                return value
            _guard.active = True
            try:
                numeric = float(value)
                if numeric < -tolerance:
                    raise _violation(
                        label, "non-negativity", f"d = {value!r} < 0"
                    )
                if sigma == tau and numeric > tolerance:
                    raise _violation(
                        label, "regularity", f"d(x, x) = {value!r} != 0"
                    )
                if symmetric:
                    mirrored = float(func(tau, sigma, *args, **kwargs))
                    if abs(mirrored - numeric) > tolerance:
                        raise _violation(
                            label,
                            "symmetry",
                            f"d(x, y) = {value!r} but d(y, x) = {mirrored!r}",
                        )
                c = constant_from(args, kwargs) if constant_from else constant
                key = call_history._key(args, kwargs)
                if math.isfinite(c):
                    for x, u in call_history.chains_into(key, sigma, symmetric=symmetric):
                        chained = float(func(x, tau, *args, **kwargs))
                        bound = c * (u + numeric) + tolerance
                        if chained > bound:
                            raise _violation(
                                label,
                                "near-triangle inequality",
                                f"d(x, z) = {chained!r} > "
                                f"{c!r} * ({u!r} + {value!r}) with c = {c!r}",
                            )
                call_history.record(key, sigma, tau, numeric)
            finally:
                _guard.active = False
            return value

        wrapper.__repro_contract__ = {  # type: ignore[attr-defined]
            "name": label,
            "symmetric": symmetric,
            "constant": constant,
            "history": history,
            "tolerance": tolerance,
        }
        return wrapper  # type: ignore[return-value]

    return decorate
