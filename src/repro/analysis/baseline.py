"""Committed-baseline mechanism for deliberate, documented exceptions.

A baseline is a JSON file (conventionally ``analysis-baseline.json`` at
the repo root) listing findings that are *accepted*, each with a written
reason. Matching is on the ``(rule, path, message)`` fingerprint — line
numbers are deliberately excluded so unrelated edits that shift a file
do not invalidate entries. Matched findings are marked
:attr:`~repro.analysis.engine.Finding.baselined`; they stay visible in
reports but no longer gate the exit code.

The difference from a ``# repro: noqa`` comment is audience: a noqa
lives at the site and suits local, self-evident exceptions; the baseline
collects project-level policy exceptions in one reviewable file, and CI
runs with ``--baseline`` so a *new* finding fails while the accepted
ones do not. Stale entries (matching nothing) are reported so the
baseline cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis.engine import AnalysisResult, Finding

__all__ = ["Baseline", "BaselineEntry", "apply_baseline", "write_baseline"]

_SCHEMA = "repro.analysis/baseline-1"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One accepted finding, with the reason it is accepted."""

    rule: str
    path: str
    message: str
    reason: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass(slots=True)
class Baseline:
    """A parsed baseline file."""

    entries: tuple[BaselineEntry, ...]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("schema") != _SCHEMA:
            raise ValueError(
                f"{path}: unknown baseline schema {payload.get('schema')!r}; "
                f"expected {_SCHEMA!r}"
            )
        entries = []
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                reason=str(raw.get("reason", "")),
            )
            if not entry.reason.strip():
                raise ValueError(
                    f"{path}: baseline entry for {entry.rule} at {entry.path} "
                    "has no reason; every accepted finding must say why"
                )
            entries.append(entry)
        return cls(entries=tuple(entries))

    def matches(self, finding: Finding) -> bool:
        fingerprint = (finding.rule, finding.path, finding.message)
        return any(entry.fingerprint == fingerprint for entry in self.entries)

    def stale_entries(self, result: AnalysisResult) -> list[BaselineEntry]:
        """Entries that matched no finding in ``result`` — candidates for
        deletion (the underlying issue was fixed or the code moved)."""
        seen = {(f.rule, f.path, f.message) for f in result.findings}
        return [entry for entry in self.entries if entry.fingerprint not in seen]


def apply_baseline(result: AnalysisResult, baseline: Baseline) -> AnalysisResult:
    """A copy of ``result`` with matching findings marked ``baselined``."""
    findings = [
        replace(finding, baselined=True)
        if not finding.suppressed and baseline.matches(finding)
        else finding
        for finding in result.findings
    ]
    return AnalysisResult(
        findings=findings,
        files_checked=result.files_checked,
        rules_run=result.rules_run,
        parse_errors=result.parse_errors,
    )


def write_baseline(result: AnalysisResult, path: Path) -> int:
    """Write every currently active finding as a baseline entry.

    Reasons are stamped with a placeholder the author must replace —
    :meth:`Baseline.load` refuses entries whose reason is empty, and the
    placeholder is deliberately conspicuous in review.
    """
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
            "reason": "TODO: justify this accepted finding",
        }
        for finding in result.active
    ]
    payload = {"schema": _SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
