"""Reporters turning an :class:`~repro.analysis.engine.AnalysisResult`
into text for humans, JSON for machines, or SARIF 2.1.0 for code-scanning
services (GitHub code scanning ingests the SARIF form directly)."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult, Finding, Severity, registered_rules

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(result: AnalysisResult, *, show_suppressed: bool = False) -> str:
    """GCC-style ``path:line:col: severity RPxxx message`` lines plus a
    one-line summary."""
    lines: list[str] = []
    for finding in result.parse_errors:
        lines.append(
            f"{finding.location}: error {finding.rule} {finding.message}"
        )
    shown = result.findings if show_suppressed else result.active
    for finding in shown:
        suffix = ""
        if finding.suppressed:
            suffix = "  [suppressed]"
        elif finding.baselined:
            suffix = "  [baselined]"
        lines.append(
            f"{finding.location}: {finding.severity} {finding.rule} "
            f"{finding.message}{suffix}"
        )
    active = result.active
    errors = sum(1 for f in active if f.severity >= Severity.ERROR)
    warnings = sum(1 for f in active if f.severity == Severity.WARNING)
    suppressed = sum(1 for f in result.findings if f.suppressed)
    baselined = sum(1 for f in result.findings if f.baselined)
    summary = (
        f"{result.files_checked} file(s) checked, "
        f"{len(result.rules_run)} rule(s): "
        f"{errors} error(s), {warnings} warning(s), {suppressed} suppressed"
    )
    if baselined:
        summary += f", {baselined} baselined"
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparseable file(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """A machine-readable report: schema version, run metadata, findings."""
    payload = {
        "schema": "repro.analysis/1",
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "errors": sum(1 for f in result.active if f.severity >= Severity.ERROR),
        "warnings": sum(1 for f in result.active if f.severity == Severity.WARNING),
        "findings": [finding.to_dict() for finding in result.findings],
        "parse_errors": [finding.to_dict() for finding in result.parse_errors],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


_SARIF_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _sarif_result(finding: Finding) -> dict[str, object]:
    entry: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _SARIF_LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(1, finding.column),
                    },
                }
            }
        ],
    }
    suppressions: list[dict[str, str]] = []
    if finding.suppressed:
        suppressions.append({"kind": "inSource", "justification": "repro: noqa comment"})
    if finding.baselined:
        suppressions.append({"kind": "external", "justification": "analysis-baseline entry"})
    if suppressions:
        entry["suppressions"] = suppressions
    return entry


def render_sarif(result: AnalysisResult) -> str:
    """A SARIF 2.1.0 log with one run; noqa'd and baselined findings are
    carried as suppressed results so scanners show them as dismissed
    rather than resurfacing them as new."""
    rules_meta = [
        {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "error")
            },
        }
        for code, rule in sorted(registered_rules().items())
        if code in result.rules_run
    ]
    sarif = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules_meta,
                    }
                },
                "results": [
                    _sarif_result(finding)
                    for finding in (*result.parse_errors, *result.findings)
                ],
            }
        ],
    }
    return json.dumps(sarif, indent=2)
