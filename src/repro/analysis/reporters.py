"""Reporters turning an :class:`~repro.analysis.engine.AnalysisResult`
into text for humans or JSON for machines (CI annotations, dashboards)."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult, Severity

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult, *, show_suppressed: bool = False) -> str:
    """GCC-style ``path:line:col: severity RPxxx message`` lines plus a
    one-line summary."""
    lines: list[str] = []
    for finding in result.parse_errors:
        lines.append(
            f"{finding.location}: error {finding.rule} {finding.message}"
        )
    shown = result.findings if show_suppressed else result.active
    for finding in shown:
        suffix = "  [suppressed]" if finding.suppressed else ""
        lines.append(
            f"{finding.location}: {finding.severity} {finding.rule} "
            f"{finding.message}{suffix}"
        )
    active = result.active
    errors = sum(1 for f in active if f.severity >= Severity.ERROR)
    warnings = sum(1 for f in active if f.severity == Severity.WARNING)
    suppressed = len(result.findings) - len(active)
    summary = (
        f"{result.files_checked} file(s) checked, "
        f"{len(result.rules_run)} rule(s): "
        f"{errors} error(s), {warnings} warning(s), {suppressed} suppressed"
    )
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} unparseable file(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """A machine-readable report: schema version, run metadata, findings."""
    payload = {
        "schema": "repro.analysis/1",
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "errors": sum(1 for f in result.active if f.severity >= Severity.ERROR),
        "warnings": sum(1 for f in result.active if f.severity == Severity.WARNING),
        "findings": [finding.to_dict() for finding in result.findings],
        "parse_errors": [finding.to_dict() for finding in result.parse_errors],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
