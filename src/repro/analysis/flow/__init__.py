"""Interprocedural data-flow layer for :mod:`repro.analysis`.

The per-file RP rules of PR 1 see one AST at a time; the whole-program
rules (RP002, RP010) propagate a single boolean fact along a name-level
call graph. This package generalizes both into a reusable flow engine
that rules query:

* :mod:`~repro.analysis.flow.callgraph` builds a **module-qualified call
  graph** over every analyzed file — resolving aliased imports,
  ``self.method()`` dispatch, nested functions and lambdas, plus the two
  indirection patterns this codebase leans on: callables handed to
  :func:`repro.parallel.parallel_map` / ``ProcessPoolExecutor`` (the
  *parallel roots*) and callables registered in the verify
  oracle/relation registry;
* :mod:`~repro.analysis.flow.summaries` extracts one **effect summary**
  per function: writes to module- or class-level mutable state,
  ``os.environ`` reads, explicit ``raise`` sites, writes to ``self``,
  and whether the return value is an unordered collection;
* :mod:`~repro.analysis.flow.dtypes` is a small **numpy dtype lattice**
  (int64 / narrow-int / float64 / bool) with an intraprocedural
  inference pass used by the dtype-soundness rule;
* :mod:`~repro.analysis.flow.fixpoint` propagates the summary facts to a
  **fixpoint** over the call graph and exposes the
  :class:`~repro.analysis.flow.fixpoint.FlowAnalysis` facade that the
  RP012–RP016 rules consume via :meth:`Project.flow
  <repro.analysis.engine.Project.flow>`.

The layer is deliberately *syntactic*: it resolves names, not objects,
and it prefers false negatives over false positives (an aliased write it
cannot see is missed, never misreported). Every fact it derives is keyed
by the function's module-qualified name, so findings can cite the full
reachability chain (``parallel_map -> _classify_chunk -> obs.add``).
"""

from repro.analysis.flow.callgraph import CallGraph, FunctionNode, build_call_graph
from repro.analysis.flow.dtypes import DType, DTypeScan, scan_function_dtypes
from repro.analysis.flow.fixpoint import FlowAnalysis
from repro.analysis.flow.summaries import (
    EffectSummary,
    EnvRead,
    ModuleStateWrite,
    summarize_function,
)

__all__ = [
    "CallGraph",
    "FunctionNode",
    "build_call_graph",
    "EffectSummary",
    "EnvRead",
    "ModuleStateWrite",
    "summarize_function",
    "DType",
    "DTypeScan",
    "scan_function_dtypes",
    "FlowAnalysis",
]
