"""Fixpoint propagation over the call graph and the query facade.

:class:`FlowAnalysis` is what rules actually touch: built once per
analysis run (lazily, via :meth:`Project.flow
<repro.analysis.engine.Project.flow>`), it composes the per-function
effect summaries along the call graph to a fixpoint and answers the
questions the RP012–RP016 rules ask:

* ``parallel_chain(qualname)`` — the witness call path from a
  :func:`~repro.parallel.parallel_map` / executor sink to the function
  (``None`` when the function never runs in a worker);
* ``returns_unordered`` — functions whose return value is a
  ``set``/``frozenset``, seeded from annotations and returned displays
  and propagated through ``return other_call()`` chains;
* ``unordered_attrs`` — property/method *names* (``domain``, …) that
  return unordered collections anywhere in the program, so an
  ``obj.domain`` access is recognized as unordered without type
  inference;
* ``may_raise`` — functions containing an explicit ``raise`` or calling
  one that does (transitively); RP016's ordering check treats a call to
  such a helper as a validation site;
* ``return_dtypes`` — annotated array return dtypes for the dtype pass.

All propagation is a simple worklist to a fixpoint; graphs here are a
few hundred nodes, so clarity beats asymptotics.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionNode,
    _Resolver,
    build_call_graph,
)
from repro.analysis.flow.dtypes import DType, annotation_dtype
from repro.analysis.flow.summaries import EffectSummary, summarize_function

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import Project

__all__ = ["FlowAnalysis"]


@dataclass(slots=True)
class FlowAnalysis:
    """Whole-program facts derived from one analysis run's file set."""

    graph: CallGraph
    summaries: dict[str, EffectSummary] = field(default_factory=dict)
    #: qualname -> immediate parent on a shortest path from a parallel sink
    _parallel_parent: dict[str, str | None] = field(default_factory=dict)
    returns_unordered: set[str] = field(default_factory=set)
    unordered_attrs: set[str] = field(default_factory=set)
    may_raise: set[str] = field(default_factory=set)
    return_dtypes: dict[str, DType] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, project: "Project") -> "FlowAnalysis":
        graph = build_call_graph(project)
        flow = cls(graph=graph)
        for qualname, info in graph.functions.items():
            flow.summaries[qualname] = summarize_function(graph, info)
            if not isinstance(info.node, ast.Lambda):
                dtype = annotation_dtype(info.node.returns)
                if dtype != DType.UNKNOWN:
                    flow.return_dtypes[qualname] = dtype
        flow._propagate_parallel_reachability()
        flow._propagate_unordered_returns()
        flow._propagate_may_raise()
        return flow

    def _propagate_parallel_reachability(self) -> None:
        """BFS from the parallel roots, keeping parent pointers so every
        finding can cite its witness chain."""
        queue: list[str] = []
        for root in sorted(self.graph.parallel_roots):
            if root in self.graph.functions:
                self._parallel_parent[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.graph.callees(current)):
                if callee not in self._parallel_parent:
                    self._parallel_parent[callee] = current
                    queue.append(callee)

    def _propagate_unordered_returns(self) -> None:
        for qualname, summary in self.summaries.items():
            if summary.returns_unordered_seed:
                self.returns_unordered.add(qualname)
        changed = True
        while changed:
            changed = False
            for qualname, summary in self.summaries.items():
                if qualname in self.returns_unordered:
                    continue
                if any(callee in self.returns_unordered for callee in summary.returns_calls):
                    self.returns_unordered.add(qualname)
                    changed = True
        # method/property names returning unordered collections: an
        # ``obj.<name>`` attribute access is then treated as unordered
        for qualname in self.returns_unordered:
            info = self.graph.functions.get(qualname)
            if info is not None and info.kind == "method":
                self.unordered_attrs.add(info.name)

    def _propagate_may_raise(self) -> None:
        for qualname, summary in self.summaries.items():
            if summary.raise_lines:
                self.may_raise.add(qualname)
        changed = True
        while changed:
            changed = False
            for qualname in self.graph.functions:
                if qualname in self.may_raise:
                    continue
                if any(callee in self.may_raise for callee in self.graph.callees(qualname)):
                    self.may_raise.add(qualname)
                    changed = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def summary(self, qualname: str) -> EffectSummary | None:
        return self.summaries.get(qualname)

    def functions(self) -> dict[str, FunctionNode]:
        return self.graph.functions

    def parallel_reachable(self, qualname: str) -> bool:
        return qualname in self._parallel_parent

    def parallel_chain(self, qualname: str) -> list[str] | None:
        """Witness path root -> ... -> qualname, or ``None``."""
        if qualname not in self._parallel_parent:
            return None
        chain = [qualname]
        seen = {qualname}
        parent = self._parallel_parent[qualname]
        while parent is not None and parent not in seen:
            chain.append(parent)
            seen.add(parent)
            parent = self._parallel_parent[parent]
        chain.reverse()
        return chain

    def parallel_sink(self, qualname: str) -> tuple[str, int] | None:
        """The (sink description, line) that makes ``qualname``'s chain
        enter a worker pool."""
        chain = self.parallel_chain(qualname)
        if not chain:
            return None
        return self.graph.parallel_roots.get(chain[0])

    def resolver(self, info: FunctionNode) -> _Resolver:
        """A name resolver scoped to ``info``'s module/class — rules use
        it for their own targeted walks (dtype scan, unordered scan)."""
        return _Resolver(self.graph, self.graph.scopes[info.module], info.cls)

    def class_methods(self, module: str, cls: str) -> dict[str, FunctionNode]:
        prefix = f"{module}.{cls}."
        return {
            info.name: info
            for qualname, info in self.graph.functions.items()
            if qualname.startswith(prefix) and info.kind == "method"
        }
