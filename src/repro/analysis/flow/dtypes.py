"""A small numpy dtype lattice and its intraprocedural inference pass.

The exact-integer kernels (:mod:`repro.metrics.batch`,
:mod:`repro.aggregate.batch`, :mod:`repro.metrics.fast`) promise
bit-for-bit equality with the object layer. That promise rests on
staying inside the **int64 lattice** for counts and positions-as-
half-integers in float64 — and it breaks silently three ways:

* an implicit **float64 upcast** truncated back to int without explicit
  rounding (``(a / 4).astype(np.int64)`` — exact only by luck);
* an **int32 narrowing** (``astype(np.int32)``, ``dtype=np.int32``) that
  overflows past n ≈ 65 536 item pairs;
* a **reduction without an explicit accumulator dtype** on a bool/count
  array (``mask.sum()``), whose result dtype is the *platform* integer —
  int32 on Windows — so the same profile aggregates differently across
  machines.

:func:`scan_function_dtypes` walks one function in statement order,
tracking a ``name -> DType`` environment seeded from parameter
annotations (``npt.NDArray[np.int64]`` …) and interprocedural return-
dtype summaries, and reports each of the three hazards with the line it
occurs on. The lattice is deliberately coarse — INT64 / NARROW_INT /
FLOAT64 / BOOL / UNKNOWN — because the rule only needs to distinguish
"provably exact" from "provably hazardous"; anything murky stays
UNKNOWN and is never reported.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

__all__ = [
    "DType",
    "DTypeIssue",
    "DTypeScan",
    "scan_function_dtypes",
    "annotation_dtype",
    "dtype_of_text",
]


class DType(Enum):
    INT64 = "int64"
    NARROW_INT = "narrow-int"
    FLOAT64 = "float64"
    BOOL = "bool"
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class DTypeIssue:
    """One dtype-soundness hazard at a source line."""

    line: int
    column: int
    kind: str  # "narrowing" | "unrounded-cast" | "default-accumulator"
    message: str


@dataclass(slots=True)
class DTypeScan:
    """Result of scanning one function."""

    issues: list[DTypeIssue]
    return_dtype: DType


_NARROW_RE = re.compile(r"\bu?int(8|16|32)\b")
_INT64_RE = re.compile(r"\bu?int(64|p)?\b")
_FLOAT_RE = re.compile(r"\bfloat(16|32|64)?\b|\bdouble\b")
_BOOL_RE = re.compile(r"\bbool_?\b")

#: numpy constructors whose default dtype is float64 when none is given.
_FLOAT_DEFAULT_CTORS = frozenset({"zeros", "ones", "empty", "linspace", "rand", "randn"})
#: constructors/functions returning the input dtype unchanged.
_PASSTHROUGH = frozenset(
    {
        "sort",
        "partition",
        "argpartition",
        "ascontiguousarray",
        "atleast_2d",
        "copy",
        "flip",
        "flatnonzero",
        "reshape",
        "ravel",
        "transpose",
        "take_along_axis",
        "append",
        "tile",
        "repeat",
        "stack",
        "concatenate",
        "vstack",
        "hstack",
        "where",
        "minimum",
        "maximum",
        "abs",
        "absolute",
        "diff",
        "cumsum",
        "roll",
    }
)
#: reductions whose accumulator dtype defaults to the platform integer
#: when the operand is bool (or stays narrow when the operand is narrow).
_REDUCTIONS = frozenset({"sum", "prod", "cumsum", "cumprod", "dot", "matmul", "trace"})
#: functions that provably return float64 regardless of input.
_FLOAT_RETURNING = frozenset({"rint", "round", "floor", "ceil", "trunc", "median", "mean"})
#: explicit-rounding evidence accepted before a float -> int cast.
_ROUNDING = frozenset({"rint", "round", "floor", "ceil", "trunc", "around", "floor_divide"})
#: functions returning int64 regardless of input.
_INT_RETURNING = frozenset({"bincount", "argsort", "lexsort", "argmax", "argmin", "searchsorted", "count_nonzero"})

#: The arena's fit-check guards (:func:`repro.core.arena.int32_fits` /
#: :func:`~repro.core.arena.storage_dtype`). A function that consults one
#: of these is performing *sanctioned storage narrowing*: int32 is legal
#: for stored ranks because the guard proved ``2n < 2³¹``. Narrowing
#: issues are suppressed in such functions; default-accumulator issues
#: are not — totals must stay int64 no matter how the storage fits.
_FIT_GUARDS = frozenset({"int32_fits", "storage_dtype"})


def dtype_of_text(text: str) -> DType:
    """Classify a dtype expression's source text."""
    if "storage_dtype" in text:
        # the arena's guard-selected dtype *may* be int32: treat the
        # result as narrow so reductions over it still demand dtype=
        return DType.NARROW_INT
    if _NARROW_RE.search(text):
        return DType.NARROW_INT
    if _BOOL_RE.search(text):
        return DType.BOOL
    if _FLOAT_RE.search(text):
        return DType.FLOAT64
    if _INT64_RE.search(text) or text in ("int", "np.int_"):
        return DType.INT64
    return DType.UNKNOWN


def annotation_dtype(annotation: ast.expr | None) -> DType:
    """Dtype encoded in an ``npt.NDArray[np.int64]``-style annotation."""
    if annotation is None:
        return DType.UNKNOWN
    text = ast.unparse(annotation)
    if "NDArray" not in text and "ndarray" not in text:
        return DType.UNKNOWN
    return dtype_of_text(text)


def _leaf(expr: ast.expr) -> str | None:
    """Rightmost attribute/name of a call target (``np.sum`` -> ``sum``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _join(left: DType, right: DType) -> DType:
    """Result dtype of arithmetic between two lattice values."""
    if DType.UNKNOWN in (left, right):
        return DType.UNKNOWN
    if DType.FLOAT64 in (left, right):
        return DType.FLOAT64
    if DType.NARROW_INT in (left, right):
        return DType.NARROW_INT
    if left == DType.BOOL and right == DType.BOOL:
        return DType.BOOL
    return DType.INT64


def _has_rounding(expr: ast.expr) -> bool:
    """Whether the expression tree contains explicit-rounding evidence."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            leaf = _leaf(node.func)
            if leaf in _ROUNDING:
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.FloorDiv):
            return True
    return False


class _Inference:
    def __init__(
        self,
        env: dict[str, DType],
        return_dtypes: dict[str, DType],
        resolve: Callable[[ast.expr], str | None] | None,
        *,
        fit_guarded: bool = False,
    ) -> None:
        self.env = env
        self.return_dtypes = return_dtypes
        self.resolve = resolve
        self.fit_guarded = fit_guarded
        self.issues: list[DTypeIssue] = []

    def _issue(self, node: ast.AST, kind: str, message: str) -> None:
        self.issues.append(
            DTypeIssue(
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                kind=kind,
                message=message,
            )
        )

    def _dtype_kwarg(self, call: ast.Call) -> DType | None:
        for keyword in call.keywords:
            if keyword.arg == "dtype" and keyword.value is not None:
                return dtype_of_text(ast.unparse(keyword.value))
        return None

    def infer(self, expr: ast.expr) -> DType:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, DType.UNKNOWN)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return DType.BOOL
            if isinstance(expr.value, int):
                return DType.INT64
            if isinstance(expr.value, float):
                return DType.FLOAT64
            return DType.UNKNOWN
        if isinstance(expr, ast.Subscript):
            return self.infer(expr.value)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand)
        if isinstance(expr, ast.Compare):
            return DType.BOOL
        if isinstance(expr, ast.BinOp):
            left = self.infer(expr.left)
            right = self.infer(expr.right)
            if isinstance(expr.op, ast.Div):
                return DType.FLOAT64 if DType.UNKNOWN not in (left, right) else DType.UNKNOWN
            if isinstance(expr.op, ast.FloorDiv):
                joined = _join(left, right)
                return DType.INT64 if joined == DType.BOOL else joined
            return _join(left, right)
        if isinstance(expr, ast.IfExp):
            return _join(self.infer(expr.body), self.infer(expr.orelse))
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                return self.infer(expr.value)
            return DType.UNKNOWN
        return DType.UNKNOWN

    def _infer_call(self, call: ast.Call) -> DType:
        leaf = _leaf(call.func)
        explicit = self._dtype_kwarg(call)

        # method-style: operand is the attribute's receiver; np.f style:
        # operand is the first positional argument
        operand: ast.expr | None = None
        if isinstance(call.func, ast.Attribute) and leaf not in ("array", "asarray"):
            operand = call.func.value
        elif call.args:
            operand = call.args[0]
        operand_dtype = self.infer(operand) if operand is not None else DType.UNKNOWN

        if leaf == "astype":
            target = (
                dtype_of_text(ast.unparse(call.args[0])) if call.args else DType.UNKNOWN
            )
            if target == DType.NARROW_INT and not self.fit_guarded:
                self._issue(
                    call,
                    "narrowing",
                    "astype() narrows out of the int64 lattice; pair counts "
                    "overflow int32 past ~65k items — keep counts in np.int64 "
                    "(int32 *storage* is sanctioned only in functions that "
                    "consult the arena's int32_fits()/storage_dtype() guard)",
                )
            if (
                target == DType.INT64
                and operand_dtype == DType.FLOAT64
                and operand is not None
                and not _has_rounding(operand)
            ):
                self._issue(
                    call,
                    "unrounded-cast",
                    "float64 value cast to int64 without explicit rounding "
                    "(np.rint/np.floor/...); C truncation makes the result "
                    "representation-dependent",
                )
            return target if target != DType.UNKNOWN else DType.UNKNOWN

        if leaf in _REDUCTIONS:
            if explicit is None and operand_dtype in (DType.BOOL, DType.NARROW_INT):
                # never sanctioned: the arena guard legalizes narrow
                # *storage*, but totals must still accumulate in int64
                self._issue(
                    call,
                    "default-accumulator",
                    f"{leaf}() on a {operand_dtype.value} array without an "
                    "explicit dtype=; the accumulator defaults to the "
                    "operand/platform integer — pass dtype=np.int64 "
                    "(accumulators stay int64 even for guarded int32 storage)",
                )
            if explicit is not None:
                return explicit
            if operand_dtype in (DType.BOOL, DType.NARROW_INT, DType.UNKNOWN):
                return DType.UNKNOWN
            return operand_dtype

        if explicit is not None:
            if explicit == DType.NARROW_INT and not self.fit_guarded:
                self._issue(
                    call,
                    "narrowing",
                    f"{leaf}(dtype=...) allocates a narrow integer array; "
                    "exact-integer kernels stay in np.int64 (int32 storage "
                    "is sanctioned only under the arena's int32_fits()/"
                    "storage_dtype() guard)",
                )
            return explicit

        if leaf in _FLOAT_RETURNING:
            return DType.FLOAT64
        if leaf in _INT_RETURNING:
            return DType.INT64
        if leaf in _FLOAT_DEFAULT_CTORS:
            return DType.FLOAT64
        if leaf == "int32_fits":
            return DType.BOOL
        if leaf in ("sign",):
            return operand_dtype
        if leaf == "arange":
            return DType.INT64 if operand_dtype == DType.INT64 else operand_dtype
        if leaf in _PASSTHROUGH:
            return operand_dtype
        if leaf in ("array", "asarray", "full", "full_like", "empty_like", "zeros_like"):
            return DType.UNKNOWN

        # interprocedural: annotated return dtype of an analyzed function
        if self.resolve is not None:
            resolved = self.resolve(call.func)
            if resolved is not None and resolved in self.return_dtypes:
                return self.return_dtypes[resolved]
        return DType.UNKNOWN


def scan_function_dtypes(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    return_dtypes: dict[str, DType] | None = None,
    resolve: Callable[[ast.expr], str | None] | None = None,
) -> DTypeScan:
    """Infer dtypes through one function and collect hazards.

    ``return_dtypes`` maps qualified function names to their (annotated)
    array return dtype; ``resolve`` maps a call-target expression to such
    a name. Both default to empty, which degrades gracefully to a purely
    intraprocedural scan.
    """
    env: dict[str, DType] = {}
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        dtype = annotation_dtype(arg.annotation)
        if dtype != DType.UNKNOWN:
            env[arg.arg] = dtype

    # sanctioned storage narrowing: a function that consults the arena's
    # fit guard anywhere in its body may narrow to int32 (the guard
    # proved the values fit); accumulator hazards stay in force
    fit_guarded = any(
        isinstance(inner, ast.Call) and _leaf(inner.func) in _FIT_GUARDS
        for inner in ast.walk(node)
    )

    inference = _Inference(env, return_dtypes or {}, resolve, fit_guarded=fit_guarded)
    return_dtype = annotation_dtype(node.returns)

    # source-order walk of the own body (nested defs excluded)
    statements: list[ast.stmt] = []

    def _collect(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            statements.append(stmt)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if isinstance(inner, list):
                    _collect(inner)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    _collect(handler.body)

    _collect(node.body)

    for stmt in statements:
        if isinstance(stmt, ast.Assign):
            inferred = inference.infer(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = inferred
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotated = annotation_dtype(stmt.annotation)
            if stmt.value is not None:
                inferred = inference.infer(stmt.value)
                env[stmt.target.id] = annotated if annotated != DType.UNKNOWN else inferred
            else:
                env[stmt.target.id] = annotated
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, DType.UNKNOWN)
                env[stmt.target.id] = _join(current, inference.infer(stmt.value))
            else:
                inference.infer(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            inferred = inference.infer(stmt.value)
            if (
                return_dtype == DType.INT64
                and inferred == DType.FLOAT64
                and not _has_rounding(stmt.value)
            ):
                inference._issue(
                    stmt,
                    "unrounded-cast",
                    "function annotated to return an int64 array returns a "
                    "float64 expression without explicit rounding",
                )
        elif isinstance(stmt, ast.Expr):
            inference.infer(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            inference.infer(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            inference.infer(stmt.iter)

    return DTypeScan(issues=inference.issues, return_dtype=return_dtype)
