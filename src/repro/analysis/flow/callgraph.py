"""Whole-program call-graph construction over the analyzed file set.

Nodes are *module-qualified* function names (``repro.metrics.batch.
_classify_chunk``, ``repro.aggregate.online.OnlineMedianAggregator.add``,
``repro.parallel.parallel_map.<lambda@L12>``). Edges come from three
sources:

* **direct calls** — ``f()``, ``mod.f()``, ``self.m()`` — resolved
  through the file's import aliases, module-level definitions, and the
  enclosing class;
* **function references** — a function-valued argument in any call
  (``OracleEntry(reference=_pair(...))``, ``sorted(key=rank_of)``,
  decorator application) adds a *ref edge* from the enclosing function,
  so effects still propagate through registry indirection;
* **parallel sinks** — the first argument of
  :func:`repro.parallel.parallel_map` and any callable handed to
  ``.map``/``.submit`` of a name bound from ``ProcessPoolExecutor(...)``
  is recorded as a **parallel root**: the entry point of a worker
  process. Lambdas and nested functions reaching a sink are recorded
  too (they are unpicklable — RP012 reports them directly).

The resolver is name-level and conservative: a call it cannot resolve
becomes an *external* edge (kept for heuristics such as ``sorted``),
never a wrong internal one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import Project, SourceFile

__all__ = ["FunctionNode", "ModuleScope", "CallGraph", "build_call_graph", "own_statements"]

#: Callables whose first positional argument runs inside a worker process.
_PARALLEL_MAP_NAMES = frozenset({"repro.parallel.parallel_map", "parallel_map"})

#: Constructors whose instances expose ``.map``/``.submit`` pool sinks.
_EXECUTOR_NAMES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "ProcessPoolExecutor",
        "multiprocessing.Pool",
    }
)

#: Registry constructors whose function-valued arguments are invoked later
#: by the verify harness (oracle/relation indirection).
_REGISTRY_NAMES = frozenset({"OracleEntry", "Relation"})

#: Module-level bindings considered mutable containers when assigned one
#: of these constructor calls (beyond display literals).
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
        "WeakValueDictionary",
        "WeakKeyDictionary",
    }
)


@dataclass(slots=True)
class FunctionNode:
    """One function in the whole-program graph."""

    qualname: str
    module: str
    name: str
    source: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    cls: str | None = None
    kind: str = "function"  # "function" | "method" | "nested" | "lambda"

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass(slots=True)
class ModuleScope:
    """Per-module name tables used during resolution."""

    module: str
    source: SourceFile
    #: local alias -> dotted qualified name (import table)
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function / class names defined here
    definitions: set[str] = field(default_factory=set)
    #: class name -> method names
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers (dict/list/set/...)
    mutable_state: dict[str, int] = field(default_factory=dict)
    #: module-level names bound to arbitrary instances (``_LOCAL = _Local()``)
    instances: dict[str, int] = field(default_factory=dict)
    #: class name -> class-level mutable attribute names
    class_state: dict[str, dict[str, int]] = field(default_factory=dict)


@dataclass(slots=True)
class CallGraph:
    """The resolved whole-program graph plus its entry-point sets."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)
    scopes: dict[str, ModuleScope] = field(default_factory=dict)
    #: caller qualname -> resolved callee qualnames (analyzed set only)
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: caller qualname -> unresolved dotted callee names
    external_calls: dict[str, set[str]] = field(default_factory=dict)
    #: qualname -> (sink description, line) for functions entering a pool
    parallel_roots: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: functions registered as oracle/relation callables
    registry_roots: set[str] = field(default_factory=set)

    def callees(self, qualname: str) -> frozenset[str]:
        return frozenset(self.calls.get(qualname, ()))


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        callee = _dotted(value.func)
        return callee is not None and callee.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _is_instance_call(value: ast.expr) -> bool:
    """``NAME = SomeClass()`` at module scope — a shared instance."""
    if not isinstance(value, ast.Call):
        return False
    callee = _dotted(value.func)
    if callee is None:
        return False
    leaf = callee.rsplit(".", 1)[-1]
    # heuristic: CapWord constructor that is not a known immutable builtin
    return leaf[:1].isupper() and leaf not in {"Path", "Severity"}


def _dotted(expr: ast.expr) -> str | None:
    """Flatten ``a.b.c`` / ``a`` to a dotted string; ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    if isinstance(expr, ast.Call):
        return _dotted(expr.func)
    return None


def _collect_scope(module: str, source: SourceFile) -> ModuleScope:
    scope = ModuleScope(module=module, source=source)
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                scope.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:  # relative import: anchor inside this package
                package = module.rsplit(".", stmt.level)[0] if "." in module else module
                base = f"{package}.{base}" if base else package
            for alias in stmt.names:
                scope.imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.definitions.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            scope.definitions.add(stmt.name)
            methods = {
                inner.name
                for inner in stmt.body
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            scope.classes[stmt.name] = methods
            attrs: dict[str, int] = {}
            for inner in stmt.body:
                if isinstance(inner, ast.Assign):
                    for target in inner.targets:
                        if isinstance(target, ast.Name) and _is_mutable_literal(inner.value):
                            attrs[target.id] = inner.lineno
                elif isinstance(inner, ast.AnnAssign):
                    if (
                        isinstance(inner.target, ast.Name)
                        and inner.value is not None
                        and _is_mutable_literal(inner.value)
                    ):
                        attrs[inner.target.id] = inner.lineno
            if attrs:
                scope.class_state[stmt.name] = attrs
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else ([stmt.target] if stmt.value is not None else [])
            )
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_mutable_literal(value):
                    scope.mutable_state[target.id] = stmt.lineno
                elif _is_instance_call(value):
                    scope.instances[target.id] = stmt.lineno
    return scope


class _Resolver:
    """Resolve call/reference expressions to module-qualified names."""

    def __init__(self, graph: CallGraph, scope: ModuleScope, cls: str | None) -> None:
        self.graph = graph
        self.scope = scope
        self.cls = cls

    def resolve(self, expr: ast.expr) -> str | None:
        """Qualified name of ``expr`` if it denotes an analyzed function."""
        dotted = _dotted(expr)
        if dotted is None:
            return None
        return self.resolve_dotted(dotted)

    def resolve_dotted(self, dotted: str) -> str | None:
        head, _, rest = dotted.partition(".")
        scope = self.scope
        if head == "self" and self.cls is not None and rest:
            candidate = f"{scope.module}.{self.cls}.{rest}"
            if candidate in self.graph.functions:
                return candidate
            return None
        if head in scope.definitions:
            candidate = f"{scope.module}.{dotted}"
            if candidate in self.graph.functions:
                return candidate
            # ``Class(...)`` resolves to the constructor when analyzed
            init = f"{scope.module}.{dotted}.__init__"
            return init if init in self.graph.functions else None
        if head in scope.imports:
            qualified = scope.imports[head] + (f".{rest}" if rest else "")
            if qualified in self.graph.functions:
                return qualified
            init = f"{qualified}.__init__"
            return init if init in self.graph.functions else None
        return None

    def canonical(self, expr: ast.expr) -> str | None:
        """Dotted name with the head resolved through the import table.

        Unlike :meth:`resolve` this does not require the target to be an
        analyzed function — it is how sinks (``parallel_map``,
        ``ProcessPoolExecutor``) and external calls are recognized.
        """
        dotted = _dotted(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.scope.imports:
            head = self.scope.imports[head]
        elif head in self.scope.definitions:
            head = f"{self.scope.module}.{head}"
        return f"{head}.{rest}" if rest else head


def _function_nodes(
    graph: CallGraph, module: str, source: SourceFile
) -> list[FunctionNode]:
    """Register every function/method/nested def/lambda in one file."""
    nodes: list[FunctionNode] = []

    def add(
        node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
        qualname: str,
        name: str,
        cls: str | None,
        kind: str,
    ) -> None:
        info = FunctionNode(
            qualname=qualname,
            module=module,
            name=name,
            source=source,
            node=node,
            cls=cls,
            kind=kind,
        )
        graph.functions[qualname] = info
        nodes.append(info)

    def visit_body(
        body: list[ast.stmt], prefix: str, cls: str | None, nested: bool
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                kind = "nested" if nested else ("method" if cls else "function")
                add(stmt, qualname, stmt.name, cls, kind)
                visit_body(stmt.body, qualname, cls, nested=True)
                _register_lambdas(stmt, qualname, cls)
            elif isinstance(stmt, ast.ClassDef) and not nested:
                visit_body(stmt.body, f"{prefix}.{stmt.name}", stmt.name, nested=False)

    def _register_lambdas(
        owner: ast.FunctionDef | ast.AsyncFunctionDef, prefix: str, cls: str | None
    ) -> None:
        own_nested = {
            inner
            for stmt in owner.body
            for inner in ast.walk(stmt)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)) and inner is not owner
        }
        for stmt in owner.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Lambda) and not any(
                    inner in set(ast.walk(nested_def)) for nested_def in own_nested
                ):
                    qualname = f"{prefix}.<lambda@L{inner.lineno}>"
                    if qualname not in graph.functions:
                        add(inner, qualname, "<lambda>", cls, "lambda")

    visit_body(source.tree.body, module, cls=None, nested=False)
    return nodes


def _function_refs(call: ast.Call) -> list[ast.expr]:
    """Every argument expression that may denote a callable, including
    callables nested inside tuple/list literals (registry ``variants=``)."""
    refs: list[ast.expr] = []

    def collect(expr: ast.expr) -> None:
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                collect(element)
        elif isinstance(expr, (ast.Name, ast.Attribute, ast.Lambda)):
            refs.append(expr)

    for arg in call.args:
        collect(arg)
    for keyword in call.keywords:
        if keyword.value is not None:
            collect(keyword.value)
    return refs


def _body_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> list[ast.stmt]:
    if isinstance(node, ast.Lambda):
        return [ast.Expr(value=node.body)]
    return node.body


def own_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> list[ast.AST]:
    """AST nodes of a function's own body, excluding nested defs/lambdas
    (those are separate graph nodes)."""
    result: list[ast.AST] = []
    stack: list[ast.AST] = list(_body_statements(node))
    while stack:
        current = stack.pop()
        result.append(current)
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)
    return result


def _edges_for_function(graph: CallGraph, info: FunctionNode) -> None:
    scope = graph.scopes[info.module]
    resolver = _Resolver(graph, scope, info.cls)
    calls = graph.calls.setdefault(info.qualname, set())
    external = graph.external_calls.setdefault(info.qualname, set())

    # names locally bound from ProcessPoolExecutor(...) — their .map/.submit
    # arguments run in worker processes
    executor_names: set[str] = set()
    for stmt in own_statements(info.node):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            callee = resolver.canonical(stmt.value.func)
            if callee in _EXECUTOR_NAMES:
                executor_names.update(
                    target.id for target in stmt.targets if isinstance(target, ast.Name)
                )
        elif isinstance(stmt, ast.withitem) and isinstance(stmt.context_expr, ast.Call):
            callee = resolver.canonical(stmt.context_expr.func)
            if callee in _EXECUTOR_NAMES and isinstance(stmt.optional_vars, ast.Name):
                executor_names.add(stmt.optional_vars.id)

    def note_root(expr: ast.expr, sink: str, line: int) -> None:
        if isinstance(expr, ast.Lambda):
            qualname = f"{info.qualname}.<lambda@L{expr.lineno}>"
            if qualname in graph.functions:
                graph.parallel_roots.setdefault(qualname, (sink, line))
            return
        target = resolver.resolve(expr)
        if target is not None:
            graph.parallel_roots.setdefault(target, (sink, line))

    for node in own_statements(info.node):
        if not isinstance(node, ast.Call):
            continue
        canonical = resolver.canonical(node.func)
        resolved = resolver.resolve(node.func)
        if resolved is not None:
            calls.add(resolved)
        elif canonical is not None:
            external.add(canonical)

        # ref edges: function-valued arguments keep effect propagation
        # alive through registries, key=-style callbacks and decorators
        leaf = canonical.rsplit(".", 1)[-1] if canonical else ""
        for ref in _function_refs(node):
            target = resolver.resolve(ref)
            if target is not None:
                calls.add(target)
                if leaf in _REGISTRY_NAMES:
                    graph.registry_roots.add(target)

        # parallel sinks
        if canonical in _PARALLEL_MAP_NAMES and node.args:
            note_root(node.args[0], "parallel_map", node.lineno)
        elif isinstance(node.func, ast.Attribute) and node.func.attr in ("map", "submit"):
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id in executor_names and node.args:
                note_root(node.args[0], f"pool.{node.func.attr}", node.lineno)

    # lambdas defined directly inside this function are reachable from it
    for qualname, other in graph.functions.items():
        if other.kind in ("lambda", "nested") and qualname.startswith(info.qualname + "."):
            remainder = qualname[len(info.qualname) + 1 :]
            if "." not in remainder:
                calls.add(qualname)


def build_call_graph(project: Project) -> CallGraph:
    """Build the whole-program graph over ``project.files``."""
    graph = CallGraph()
    modules: list[tuple[str, SourceFile]] = []
    for source in project.files:
        module = project.module_name(source)
        modules.append((module, source))
        graph.scopes[module] = _collect_scope(module, source)
    for module, source in modules:
        _function_nodes(graph, module, source)
    for info in list(graph.functions.values()):
        _edges_for_function(graph, info)
    return graph
