"""Per-function effect summaries.

One AST pass per function extracts the facts the RP012–RP016 rules need:

* **module/class-state writes** — ``global`` rebinds, subscript or
  augmented stores into module-level mutable containers, mutating method
  calls (``append``/``add``/``setdefault``/…) on them, and attribute
  stores on module-level instances. Attribute chains rooted at an
  imported module alias (``_spans._LOCAL.stack.clear()``) resolve into
  the *target* module's state table, so cross-module writes are seen.
* **environment reads** — ``os.environ[...]``, ``os.environ.get``,
  ``os.getenv``, and ``in os.environ`` membership tests, with the
  variable name when it is a literal or a resolvable module constant.
* **raise/self-write positions** — line numbers of explicit ``raise``
  statements (bare re-raises excluded) and of the first/every write to
  ``self``, plus ``self.method()`` call sites; RP016 replays these in
  statement order interprocedurally.
* **unordered returns** — whether the function's return value is a
  ``set``/``frozenset`` (from the return annotation, a returned set
  display/constructor, or — after fixpoint — a returned call to another
  unordered-returning function).

Summaries are *syntactic over-approximations of nothing*: a write routed
through a local alias (``cache = _CACHE; cache[k] = v``) is missed, a
reported write is always real. The fixpoint layer composes them along
the call graph.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionNode,
    ModuleScope,
    _dotted,
    _Resolver,
    own_statements,
)

__all__ = [
    "ModuleStateWrite",
    "EnvRead",
    "EffectSummary",
    "summarize_function",
]

#: Methods that mutate the builtin containers in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

#: The *outer* type must be a set — ``tuple[frozenset[Item], ...]`` is
#: ordered even though sets appear nested inside it.
_UNORDERED_ANNOTATION_RE = re.compile(
    r"^(?:typing\.)?(?:frozenset|set|Set|FrozenSet|AbstractSet)\b"
)


@dataclass(frozen=True, slots=True)
class ModuleStateWrite:
    """One write to module- or class-level mutable state."""

    target: str  # dotted description, e.g. "repro.obs.spans._SESSIONS"
    line: int
    via: str  # "global-rebind" | "store" | "call:append" | ...


@dataclass(frozen=True, slots=True)
class EnvRead:
    """One ``os.environ`` consultation."""

    variable: str | None
    line: int


@dataclass(slots=True)
class EffectSummary:
    """The per-function facts the flow rules consume."""

    qualname: str
    module_writes: tuple[ModuleStateWrite, ...] = ()
    env_reads: tuple[EnvRead, ...] = ()
    raise_lines: tuple[int, ...] = ()
    self_write_lines: tuple[int, ...] = ()
    #: ``self.method()`` call sites as (method name, line)
    self_calls: tuple[tuple[str, int], ...] = ()
    #: return annotation or returned display says set/frozenset
    returns_unordered_seed: bool = False
    #: qualnames whose return value this function returns unmodified
    returns_calls: tuple[str, ...] = ()


def _binding_names(target: ast.expr) -> set[str]:
    """Names a store to ``target`` actually binds. ``x.y[k] = v`` binds
    nothing — only plain names and tuple/list destructuring do."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_binding_names(element))
        return names
    return set()


def _local_bindings(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> set[str]:
    """Names bound locally (parameters + assignments): these shadow
    module-level state inside the function."""
    names: set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    if isinstance(node, ast.Lambda):
        return names
    globals_declared: set[str] = set()
    for stmt in own_statements(node):
        if isinstance(stmt, ast.Global):
            globals_declared.update(stmt.names)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                names.update(_binding_names(target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            names.update(_binding_names(stmt.target))
        elif isinstance(stmt, ast.withitem) and stmt.optional_vars is not None:
            names.update(_binding_names(stmt.optional_vars))
        elif isinstance(stmt, ast.comprehension):
            names.update(_binding_names(stmt.target))
    return names - globals_declared


def _state_target(
    expr: ast.expr,
    graph: CallGraph,
    scope: ModuleScope,
    locals_: set[str],
    cls: str | None,
) -> str | None:
    """Resolve an expression to a dotted module/class-state target.

    Recognized roots: a module-level mutable container or instance of the
    current module, the same through an imported module alias, and
    ``ClassName.attr`` for class-level mutable attributes. Locally bound
    names shadow everything.
    """
    chain: list[str] = []
    inner = expr
    while isinstance(inner, ast.Subscript):
        inner = inner.value
    while isinstance(inner, ast.Attribute):
        chain.append(inner.attr)
        inner = inner.value
        while isinstance(inner, ast.Subscript):
            inner = inner.value
    if not isinstance(inner, ast.Name):
        return None
    head = inner.id
    chain.reverse()
    if head in locals_ or head == "self":
        return None

    def lookup(target_scope: ModuleScope, name: str, rest: list[str]) -> str | None:
        if name in target_scope.mutable_state:
            return ".".join([target_scope.module, name, *rest])
        if name in target_scope.instances and rest:
            # attribute state on a module-level instance (_LOCAL.stack)
            return ".".join([target_scope.module, name, *rest])
        if name in target_scope.class_state and rest:
            if rest[0] in target_scope.class_state[name]:
                return ".".join([target_scope.module, name, *rest])
        return None

    found = lookup(scope, head, chain)
    if found is not None:
        return found
    if head in scope.imports:
        imported = scope.imports[head]
        target_scope = graph.scopes.get(imported)
        if target_scope is not None and chain:
            return lookup(target_scope, chain[0], chain[1:])
        # ``from mod import _CACHE`` binds the container directly
        owner, _, leaf = imported.rpartition(".")
        owner_scope = graph.scopes.get(owner)
        if owner_scope is not None:
            return lookup(owner_scope, leaf, chain)
    return None


def _returns_unordered_annotation(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> bool:
    if isinstance(node, ast.Lambda) or node.returns is None:
        return False
    return bool(_UNORDERED_ANNOTATION_RE.search(ast.unparse(node.returns)))


def _is_unordered_display(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
        return dotted in ("set", "frozenset")
    return False


def _env_read(node: ast.AST) -> EnvRead | None:
    """Match the ``os.environ`` access idioms on one AST node."""

    def is_environ(expr: ast.expr) -> bool:
        return _dotted(expr) in ("os.environ", "environ")

    def variable_of(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        dotted = _dotted(expr)
        return dotted  # module constant like ENV_JOBS — keep the name

    if isinstance(node, ast.Subscript) and is_environ(node.value):
        return EnvRead(variable_of(node.slice), node.lineno)
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted in ("os.getenv", "getenv") and node.args:
            return EnvRead(variable_of(node.args[0]), node.lineno)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and is_environ(node.func.value)
            and node.args
        ):
            return EnvRead(variable_of(node.args[0]), node.lineno)
    if isinstance(node, ast.Compare) and any(
        isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
    ):
        for comparator in node.comparators:
            if is_environ(comparator):
                return EnvRead(None, node.lineno)
    return None


def summarize_function(graph: CallGraph, info: FunctionNode) -> EffectSummary:
    """One-pass effect extraction over the function's own body."""
    scope = graph.scopes[info.module]
    resolver = _Resolver(graph, scope, info.cls)
    locals_ = _local_bindings(info.node)
    globals_declared: set[str] = set()

    module_writes: list[ModuleStateWrite] = []
    env_reads: list[EnvRead] = []
    raise_lines: list[int] = []
    self_write_lines: list[int] = []
    self_calls: list[tuple[str, int]] = []
    returns_calls: list[str] = []
    returns_unordered_seed = _returns_unordered_annotation(info.node)

    def note_write(target: str | None, line: int, via: str) -> None:
        if target is not None:
            module_writes.append(ModuleStateWrite(target=target, line=line, via=via))

    def is_self_rooted(expr: ast.expr) -> bool:
        inner = expr
        while isinstance(inner, (ast.Attribute, ast.Subscript)):
            inner = inner.value if isinstance(inner, ast.Attribute) else inner.value
        return isinstance(inner, ast.Name) and inner.id == "self"

    body = own_statements(info.node)
    for node in body:
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)

    for node in body:
        # --- raises (bare ``raise`` re-raises excluded) ---------------
        if isinstance(node, ast.Raise) and node.exc is not None:
            raise_lines.append(node.lineno)

        # --- env reads -------------------------------------------------
        read = _env_read(node)
        if read is not None:
            env_reads.append(read)

        # --- stores ----------------------------------------------------
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in globals_declared:
                    note_write(f"{info.module}.{target.id}", node.lineno, "global-rebind")
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    if is_self_rooted(target):
                        if info.cls is not None:
                            self_write_lines.append(node.lineno)
                        continue
                    note_write(
                        _state_target(target, graph, scope, locals_, info.cls),
                        node.lineno,
                        "store",
                    )

        # --- mutating method calls, self calls -------------------------
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                self_calls.append((attr, node.lineno))
            elif is_self_rooted(receiver):
                if attr in _MUTATING_METHODS and info.cls is not None:
                    self_write_lines.append(node.lineno)
            elif attr in _MUTATING_METHODS:
                note_write(
                    _state_target(receiver, graph, scope, locals_, info.cls),
                    node.lineno,
                    f"call:{attr}",
                )

        # --- returns ---------------------------------------------------
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if _is_unordered_display(value):
                returns_unordered_seed = True
            elif isinstance(value, ast.Call):
                resolved = resolver.resolve(value.func)
                if resolved is not None:
                    returns_calls.append(resolved)

    return EffectSummary(
        qualname=info.qualname,
        module_writes=tuple(module_writes),
        env_reads=tuple(env_reads),
        raise_lines=tuple(raise_lines),
        self_write_lines=tuple(self_write_lines),
        self_calls=tuple(self_calls),
        returns_unordered_seed=returns_unordered_seed,
        returns_calls=tuple(returns_calls),
    )
