"""Synthetic catalogs mirroring the paper's motivating databases.

The paper motivates partial rankings with dine.com restaurant search and
travelocity flight search — proprietary web databases we cannot ship. These
generators build deterministic synthetic relations with the same schema
*shape*: a few categorical attributes with very few distinct values (the
tie drivers) plus numeric attributes users coarsen into bins. Both take a
seed, so experiments are reproducible, and both are documented substitutes
per DESIGN.md §3.
"""

from __future__ import annotations

import random

from repro.db.relation import Relation

__all__ = [  # repro: noqa[RP011] — static dataset catalogs; access costs are counted at the cursor
    "CUISINES",
    "AIRLINES",
    "SUBJECT_AREAS",
    "restaurant_catalog",
    "flight_catalog",
    "bibliography_catalog",
]

#: The few-valued categorical attribute of the restaurant example.
CUISINES = ("italian", "chinese", "mexican", "indian", "thai", "french")

#: The few-valued categorical attribute of the flight example.
AIRLINES = ("AA", "UA", "DL", "WN", "B6")

#: The few-valued categorical attribute of the bibliography example.
SUBJECT_AREAS = ("databases", "algorithms", "learning", "systems", "theory")


def restaurant_catalog(n: int = 100, seed: int = 0) -> Relation:
    """A synthetic restaurant relation (cf. the dine.com example).

    Attributes:

    * ``cuisine`` — one of 6 values (categorical; huge buckets when sorted);
    * ``price`` — 1..4 dollar signs (4 values);
    * ``stars`` — 1.0..5.0 in half-star steps (9 values);
    * ``distance_miles`` — continuous, but users bin it ("up to 10 miles is
      the same");
    * ``seats`` — a wider-range numeric attribute for contrast.
    """
    if n <= 0:
        raise ValueError(f"catalog size must be positive, got {n}")
    rng = random.Random(seed)
    rows = []
    for index in range(n):
        rows.append(
            {
                "id": f"r{index:04d}",
                "cuisine": rng.choice(CUISINES),
                "price": rng.randint(1, 4),
                "stars": rng.randint(2, 10) / 2,
                "distance_miles": round(rng.uniform(0.1, 30.0), 1),
                "seats": rng.randint(10, 250),
            }
        )
    return Relation.from_rows("restaurants", "id", rows)


def flight_catalog(n: int = 100, seed: int = 0) -> Relation:
    """A synthetic flight-plan relation (cf. the travelocity example).

    Attributes:

    * ``connections`` — 0..3 (the paper's example of a numeric attribute
      that "usually has no more than four values");
    * ``airline`` — one of 5 carriers;
    * ``price_usd`` — continuous fare;
    * ``duration_minutes`` — flight time, correlated with connections so
      that attribute rankings are realistically non-independent;
    * ``departure_hour`` — 0..23.
    """
    if n <= 0:
        raise ValueError(f"catalog size must be positive, got {n}")
    rng = random.Random(seed)
    rows = []
    for index in range(n):
        connections = rng.choices((0, 1, 2, 3), weights=(30, 45, 20, 5))[0]
        base_duration = rng.randint(90, 360)
        rows.append(
            {
                "id": f"f{index:04d}",
                "connections": connections,
                "airline": rng.choice(AIRLINES),
                "price_usd": round(rng.uniform(79, 980) - 40 * connections, 2),
                "duration_minutes": base_duration + connections * rng.randint(45, 120),
                "departure_hour": rng.randint(0, 23),
            }
        )
    return Relation.from_rows("flights", "id", rows)


def bibliography_catalog(n: int = 100, seed: int = 0) -> Relation:
    """A synthetic bibliography relation (cf. the MathSciNet example).

    Attributes per the paper's "searching for an article in scientific
    bibliography databases ... using preference criteria on attributes
    such as title, year of publication, number of citations":

    * ``year`` — publication year (a couple of dozen values → ties);
    * ``citations`` — heavy-tailed citation count (many zeros → a huge
      tied bucket at the bottom);
    * ``area`` — one of 5 subject areas;
    * ``pages`` — article length;
    * ``num_authors`` — 1..8.
    """
    if n <= 0:
        raise ValueError(f"catalog size must be positive, got {n}")
    rng = random.Random(seed)
    rows = []
    for index in range(n):
        # heavy-tailed citations: most papers have none, a few have many
        citations = int(rng.paretovariate(1.2)) - 1 if rng.random() < 0.6 else 0
        rows.append(
            {
                "id": f"p{index:04d}",
                "year": rng.randint(1998, 2004),
                "citations": citations,
                "area": rng.choice(SUBJECT_AREAS),
                "pages": rng.randint(4, 40),
                "num_authors": rng.randint(1, 8),
            }
        )
    return Relation.from_rows("bibliography", "id", rows)
