"""Sorted-access cursors with exact access accounting.

The access model of the paper (after Fagin–Lotem–Naor): an aggregation
algorithm may only read each ranked list *sequentially from the top*, and
its cost is the number of elements read. :class:`SortedCursor` wraps a
partial ranking as such a stream; :class:`CursorPool` drives a round-robin
front over several cursors and reports total accesses, which experiment E8
uses to demonstrate the "reads essentially as few elements as necessary"
claim.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import ReproError

__all__ = ["CursorExhausted", "SortedCursor", "CursorPool"]


class CursorExhausted(ReproError, RuntimeError):
    """A sorted access was attempted past the end of a list."""


class SortedCursor:
    """Sorted access over one partial ranking.

    ``next_item()`` returns ``(item, position)`` pairs in ranked order
    (canonical order within a bucket) and counts every call. ``peek_position``
    exposes the position of the bucket the cursor is currently entering —
    the lower bound any unseen item's position must respect — without
    consuming an access (the paper's model charges for elements read, and
    the frontier position is known from the elements already read).
    """

    __slots__ = ("_ranking", "_order", "_index", "_accesses")

    def __init__(self, ranking: PartialRanking) -> None:
        self._ranking = ranking
        self._order = ranking.items_in_order()
        self._index = 0
        self._accesses = 0

    @property
    def ranking(self) -> PartialRanking:
        return self._ranking

    @property
    def accesses(self) -> int:
        """Number of sorted accesses performed so far."""
        return self._accesses

    @property
    def depth(self) -> int:
        """Number of items consumed so far."""
        return self._index

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._order)

    def next_item(self) -> tuple[Item, float]:
        """Consume and return the next ``(item, position)`` pair."""
        if self.exhausted:
            raise CursorExhausted(f"cursor over {len(self._order)} items is exhausted")
        item = self._order[self._index]
        self._index += 1
        self._accesses += 1
        obs.add("db.cursor.accesses")
        return item, self._ranking[item]

    def peek_position(self) -> float:
        """Position of the next unread item's bucket (frontier bound).

        After exhaustion this is the last bucket's position — no unseen
        items remain, so the bound is vacuous but still safe.
        """
        index = min(self._index, len(self._order) - 1)
        return self._ranking[self._order[index]]


@dataclass
class CursorPool:
    """A round-robin front over several sorted cursors."""

    cursors: list[SortedCursor]

    @classmethod
    def over(cls, rankings: Sequence[PartialRanking]) -> "CursorPool":
        """Open one cursor per input ranking."""
        return cls(cursors=[SortedCursor(ranking) for ranking in rankings])

    @property
    def total_accesses(self) -> int:
        return sum(cursor.accesses for cursor in self.cursors)

    @property
    def exhausted(self) -> bool:
        return all(cursor.exhausted for cursor in self.cursors)

    def advance_round(self) -> list[tuple[int, Item, float]]:
        """One sorted access on every non-exhausted cursor.

        Returns ``(cursor index, item, position)`` triples for the round.
        """
        seen: list[tuple[int, Item, float]] = []
        for index, cursor in enumerate(self.cursors):
            if not cursor.exhausted:
                item, position = cursor.next_item()
                seen.append((index, item, position))
        return seen
