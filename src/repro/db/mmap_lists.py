"""Memory-mapped sorted lists: the out-of-core face of the cursor layer.

:class:`~repro.db.cursor.SortedCursor` wraps in-RAM
:class:`~repro.core.partial_ranking.PartialRanking` objects; at the
paper's database scale (n ≈ 10⁶ items per list) the lists themselves no
longer belong in object memory. A :class:`SortedListStore` persists a
profile's sorted-access orders — one row per list, each row the slots of
the domain in that list's sorted-access order — as a single ``.npy``
file and reads them back **memory-mapped**: an aggregation algorithm
that touches only the top of each list faults in only the top pages,
which is exactly the sequential-access economy MEDRANK's
instance-optimality claim is about.

Layout: an ``(m, n)`` integer matrix, row-major, so each list's sorted
accesses walk one row front to back — sequential within a page and
across pages. Slots are stored in the arena's sanctioned storage dtype
(int32 when :func:`~repro.core.arena.int32_fits` says ranks fit, int64
otherwise); counts and totals derived from them stay in int64.

Row ``r`` is the stable argsort of list ``r``'s bucket-index row, which
is *definitionally* :meth:`PartialRanking.items_in_order
<repro.core.partial_ranking.PartialRanking.items_in_order>` in slot
space: items ordered by bucket, canonically (= by slot) within a
bucket. :func:`repro.aggregate.medrank.medrank_out_of_core` therefore
reads exactly the same item at every (list, depth) coordinate as the
in-memory :func:`~repro.aggregate.medrank.medrank`, reaches the same
depth, and reports identical access counts — the oracle and the scale
benchmark both assert it.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.core.arena import ProfileArena, int32_fits
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.db.cursor import CursorExhausted
from repro.errors import InvalidRankingError

__all__ = ["SortedListStore", "MmapSortedCursor"]


class SortedListStore:
    """m sorted-access lists over an n-slot domain, one ``.npy`` on disk.

    Build once with :meth:`build` (from rankings or an arena) or
    :meth:`from_rows` (from precomputed access-order rows, for synthetic
    scale runs); reopen any time with :meth:`open`. ``mmap=True`` (the
    default on open) maps the file instead of reading it, so access cost
    tracks pages touched, not file size.
    """

    def __init__(self, path: Path, rows: npt.NDArray) -> None:
        if rows.ndim != 2:
            raise InvalidRankingError(
                f"sorted-list store must be 2-dimensional, got shape {rows.shape}"
            )
        self._path = path
        self._rows = rows

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        path: str | Path,
        profile: Sequence[PartialRanking] | ProfileArena,
    ) -> "SortedListStore":
        """Persist a profile's sorted-access orders and reopen them mapped.

        Each row is the stable argsort of the profile's bucket-index row —
        the slot-space ``items_in_order()`` of that list.
        """
        if isinstance(profile, ProfileArena):
            bucket_rows = profile.bucket_rows
        else:
            codec = DomainCodec.for_profile(profile)
            bucket_rows = np.stack(
                [ranking.dense_arrays(codec)[0] for ranking in profile]
            )
        order = np.argsort(bucket_rows, axis=1, kind="stable")
        return cls.from_rows(path, order)

    @classmethod
    def from_rows(cls, path: str | Path, rows: npt.NDArray) -> "SortedListStore":
        """Persist precomputed access-order rows and reopen them mapped.

        ``rows[r]`` must be a permutation of ``0..n-1`` (list ``r``'s
        sorted-access order). Stored in the sanctioned storage dtype.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise InvalidRankingError(
                f"sorted-list rows must be 2-dimensional, got shape {rows.shape}"
            )
        n = rows.shape[1]
        if int32_fits(n):
            # sanctioned storage narrowing: slots < n fit by the guard;
            # every consumer counts and totals in int64
            stored = rows.astype(np.int32)
        else:
            stored = rows.astype(np.int64)
        target = Path(path)
        np.save(target, stored)
        written = target if target.suffix == ".npy" else target.with_suffix(
            target.suffix + ".npy"
        )
        obs.add("db.mmap.builds")
        obs.add("db.mmap.bytes", int(stored.nbytes))
        return cls.open(written)

    @classmethod
    def open(cls, path: str | Path, *, mmap: bool = True) -> "SortedListStore":
        """Reopen a persisted store, memory-mapped unless ``mmap=False``.

        ``mmap=False`` reads the whole file into RAM — the in-memory
        control the scale benchmark compares page-thrift against.
        """
        target = Path(path)
        rows = np.load(target, mmap_mode="r" if mmap else None)
        if not mmap:
            rows.setflags(write=False)
        return cls(target, rows)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_lists(self) -> int:
        return int(self._rows.shape[0])

    @property
    def domain_size(self) -> int:
        return int(self._rows.shape[1])

    @property
    def storage(self) -> str:
        """Storage dtype name: ``int32`` (fast path) or ``int64``."""
        return str(self._rows.dtype.name)

    @property
    def is_mmap(self) -> bool:
        return isinstance(self._rows, np.memmap)

    def cursor(self, index: int) -> "MmapSortedCursor":
        """A sorted-access cursor over list ``index``."""
        if not 0 <= index < self.num_lists:
            raise IndexError(f"list index {index} out of range for {self.num_lists} lists")
        return MmapSortedCursor(self._rows[index])

    def cursors(self) -> list["MmapSortedCursor"]:
        """One cursor per list, in list order (the round-robin front)."""
        return [MmapSortedCursor(self._rows[index]) for index in range(self.num_lists)]

    def __repr__(self) -> str:
        kind = "mmap" if self.is_mmap else "ram"
        return (
            f"SortedListStore(m={self.num_lists}, n={self.domain_size}, "
            f"storage={self.storage}, {kind})"
        )


class MmapSortedCursor:
    """Sorted access over one stored list, with exact access accounting.

    The slot-space twin of :class:`~repro.db.cursor.SortedCursor`:
    ``next_slot()`` returns domain slots in ranked order and counts every
    call (``db.mmap.accesses``). Reads walk the row front to back, so on
    a mapped store the pages faulted in are exactly the prefix touched.
    """

    __slots__ = ("_row", "_index", "_accesses")

    def __init__(self, row: npt.NDArray) -> None:
        self._row = row
        self._index = 0
        self._accesses = 0

    @property
    def accesses(self) -> int:
        """Number of sorted accesses performed so far."""
        return self._accesses

    @property
    def depth(self) -> int:
        """Number of slots consumed so far."""
        return self._index

    @property
    def exhausted(self) -> bool:
        return self._index >= self._row.shape[0]

    def next_slot(self) -> int:
        """Consume and return the next slot in sorted-access order."""
        if self.exhausted:
            raise CursorExhausted(
                f"cursor over {self._row.shape[0]} slots is exhausted"
            )
        slot = int(self._row[self._index])
        self._index += 1
        self._accesses += 1
        obs.add("db.mmap.accesses")
        return slot
