"""Declarative multi-criteria preference queries over a relation.

A :class:`PreferenceQuery` is the paper's "advanced search" page: one
:class:`AttributePreference` per criterion (direction, optional numeric
binning, optional explicit value order). Executing a query sorts the
relation once per preference — producing one partial ranking each, almost
always with heavy ties — and aggregates them with median rank aggregation,
returning the top-k records together with the sorted-access cost of the
sequential algorithm.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.aggregate.median import MedianAggregator
from repro.aggregate.medrank import AccessLog, medrank
from repro.core.partial_ranking import Item, PartialRanking
from repro.db.relation import Relation, SchemaError

__all__ = ["AttributePreference", "PreferenceQuery", "QueryResult"]


@dataclass(frozen=True, slots=True)
class AttributePreference:
    """One user criterion: how to rank records by one attribute.

    ``bins`` coarsens numeric values ("distance up to 10 miles is the
    same"): a sorted sequence of right-inclusive cut points; values are
    replaced by the index of the first cut point not below them.
    """

    attribute: str
    reverse: bool = False
    bins: Sequence[float] | None = None
    value_order: Sequence[Any] | None = None

    def binning(self) -> Callable[[Any], Any] | None:
        if self.bins is None:
            return None
        cuts = sorted(self.bins)

        def assign(value: Any) -> int:
            for index, cut in enumerate(cuts):
                if value <= cut:
                    return index
            return len(cuts)

        return assign

    def rank(self, relation: Relation) -> PartialRanking:
        """Compile this preference to a partial ranking over record ids."""
        return relation.rank_by(
            self.attribute,
            reverse=self.reverse,
            binning=self.binning(),
            value_order=self.value_order,
        )


@dataclass(frozen=True, slots=True)
class QueryResult:
    """The answer to a preference query."""

    top_items: tuple[Item, ...]
    ranking: PartialRanking
    input_rankings: tuple[PartialRanking, ...]
    access_log: AccessLog

    @property
    def ties_per_input(self) -> tuple[int, ...]:
        """Largest bucket size of each input ranking (tie pressure)."""
        return tuple(max(sigma.type) for sigma in self.input_rankings)


@dataclass(frozen=True, slots=True)
class PreferenceQuery:
    """A multi-criteria search compiled to partial rankings + aggregation."""

    preferences: tuple[AttributePreference, ...]
    k: int = 5

    def __post_init__(self) -> None:
        if not self.preferences:
            raise SchemaError("a preference query needs at least one criterion")
        if self.k <= 0:
            raise SchemaError(f"k={self.k} must be positive")

    @classmethod
    def build(cls, *preferences: AttributePreference, k: int = 5) -> "PreferenceQuery":
        """Convenience constructor from positional preferences."""
        return cls(preferences=tuple(preferences), k=k)

    def compile(self, relation: Relation) -> tuple[PartialRanking, ...]:
        """Sort the relation once per criterion."""
        return tuple(preference.rank(relation) for preference in self.preferences)

    def execute(self, relation: Relation) -> QueryResult:
        """Run the query with the sequential-access median algorithm.

        Uses :func:`repro.aggregate.medrank.medrank` so the result carries
        a faithful sorted-access cost; the returned ranking is the top-k
        list of the first k majority winners.
        """
        rankings = self.compile(relation)
        k = min(self.k, len(relation))
        result = medrank(rankings, k=k)
        return QueryResult(
            top_items=result.winners,
            ranking=result.ranking,
            input_rankings=rankings,
            access_log=result.access_log,
        )

    def execute_offline(self, relation: Relation) -> PartialRanking:
        """Run the query with full-information median aggregation.

        Returns the Theorem 9 top-k list computed from complete median
        scores — the quality reference point for :meth:`execute`.
        """
        rankings = self.compile(relation)
        aggregator = MedianAggregator(rankings)
        return aggregator.top_k(min(self.k, len(relation)))
