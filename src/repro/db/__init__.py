"""In-memory database substrate for the paper's motivating scenario.

The paper's setting: an underlying database of records is sorted several
ways — once per user preference criterion — and because many attributes
have few distinct values, each sort is a partial ranking with large
buckets. This package provides:

* :class:`Relation` — a typed in-memory table whose ``rank_by`` produces a
  :class:`~repro.core.partial_ranking.PartialRanking` over record ids;
* :class:`AttributePreference` / :class:`PreferenceQuery` — declarative
  multi-criteria queries (with numeric binning, e.g. "any distance up to
  ten miles is the same") that compile to a profile of partial rankings
  and run an aggregation;
* :class:`SortedCursor` — the sorted-access-only cursor of the paper's
  access model, with exact access accounting;
* :class:`SortedListStore` / :class:`MmapSortedCursor` — the out-of-core
  variant: sorted-access orders persisted as one memory-mapped ``.npy``
  per profile, so million-item MEDRANK runs fault in only the list
  prefixes they actually read;
* :mod:`repro.db.similarity` — "find records like this one" via rank
  aggregation of per-attribute closeness rankings (the [11] application);
* :mod:`repro.db.sources` — deterministic synthetic restaurant, flight,
  and bibliography catalogs mirroring the paper's motivating examples.
"""

from repro.db.cursor import SortedCursor
from repro.db.mmap_lists import MmapSortedCursor, SortedListStore
from repro.db.query import AttributePreference, PreferenceQuery, QueryResult
from repro.db.relation import Relation
from repro.db.similarity import SimilarityResult, similarity_rankings, similarity_search
from repro.db.sources import bibliography_catalog, flight_catalog, restaurant_catalog

__all__ = [
    "Relation",
    "AttributePreference",
    "PreferenceQuery",
    "QueryResult",
    "SortedCursor",
    "SortedListStore",
    "MmapSortedCursor",
    "similarity_search",
    "similarity_rankings",
    "SimilarityResult",
    "restaurant_catalog",
    "flight_catalog",
    "bibliography_catalog",
]
