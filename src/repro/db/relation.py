"""A minimal typed in-memory relation with ranking-producing sorts.

This is the substrate under the paper's catalog/fielded/parametric search
examples: records with a handful of attributes, sorted per user criterion.
``rank_by`` is the operation the whole paper is about — sorting a column
with few distinct values yields a bucket order, not a permutation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.partial_ranking import PartialRanking
from repro.errors import ReproError

__all__ = ["Relation", "SchemaError"]


class SchemaError(ReproError, ValueError):
    """A record or query referenced attributes not in the relation schema."""


@dataclass(frozen=True, slots=True)
class Relation:
    """An immutable in-memory table keyed by a record id attribute.

    Parameters
    ----------
    name:
        Display name of the relation.
    key:
        The attribute holding the unique record id.
    rows:
        Mapping records; every row must carry the same attribute set.
    """

    name: str
    key: str
    rows: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.rows:
            raise SchemaError(f"relation {self.name!r} has no rows")
        attributes = frozenset(self.rows[0])
        if self.key not in attributes:
            raise SchemaError(f"key attribute {self.key!r} missing from schema")
        seen_keys: set[Any] = set()
        for row in self.rows:
            if frozenset(row) != attributes:
                raise SchemaError(
                    f"row {row.get(self.key)!r} does not match schema {sorted(attributes)}"
                )
            row_key = row[self.key]
            if row_key in seen_keys:
                raise SchemaError(f"duplicate key {row_key!r}")
            seen_keys.add(row_key)

    @classmethod
    def from_rows(cls, name: str, key: str, rows: Iterable[Mapping[str, Any]]) -> "Relation":
        """Build a relation from an iterable of row mappings."""
        return cls(name=name, key=key, rows=tuple(dict(row) for row in rows))

    # ------------------------------------------------------------------

    @property
    def attributes(self) -> frozenset[str]:
        """The schema: the attribute names shared by every row."""
        return frozenset(self.rows[0])

    @property
    def keys(self) -> frozenset[Any]:
        """The set of record ids (the ranking domain)."""
        return frozenset(row[self.key] for row in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        return iter(self.rows)

    def row(self, key: Any) -> Mapping[str, Any]:
        """Return the row with the given record id."""
        for candidate in self.rows:
            if candidate[self.key] == key:
                return candidate
        raise KeyError(f"no row with key {key!r} in relation {self.name!r}")

    def column(self, attribute: str) -> dict[Any, Any]:
        """Return ``record id -> attribute value``."""
        self._require_attribute(attribute)
        return {row[self.key]: row[attribute] for row in self.rows}

    def distinct_values(self, attribute: str) -> int:
        """Number of distinct values in a column — the paper's tie driver."""
        self._require_attribute(attribute)
        return len({row[attribute] for row in self.rows})

    # ------------------------------------------------------------------

    def where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "Relation":
        """Select the rows satisfying a predicate (same schema).

        The paper's queries filter before ranking ("restaurants within the
        city", "nonstop flights only"); filtering can make an attribute
        constant on the result set, which is how degenerate single-bucket
        rankings arise in practice.
        """
        selected = tuple(row for row in self.rows if predicate(row))
        if not selected:
            raise SchemaError(
                f"selection on relation {self.name!r} produced no rows"
            )
        return Relation(name=f"{self.name}#where", key=self.key, rows=selected)

    def project(self, attributes: Iterable[str]) -> "Relation":
        """Keep only the given attributes (the key is always kept)."""
        keep = set(attributes) | {self.key}
        missing = keep - self.attributes
        if missing:
            raise SchemaError(
                f"cannot project onto unknown attributes {sorted(missing)}"
            )
        rows = tuple(
            {name: row[name] for name in keep} for row in self.rows
        )
        return Relation(name=f"{self.name}#project", key=self.key, rows=rows)

    def rank_by(
        self,
        attribute: str,
        *,
        reverse: bool = False,
        binning: Callable[[Any], Any] | None = None,
        value_order: Sequence[Any] | None = None,
    ) -> PartialRanking:
        """Sort the relation by one attribute, producing a partial ranking.

        Records with equal (binned) values are tied — one bucket per
        distinct value. Options:

        ``reverse``
            Rank larger values first (e.g. star ratings).
        ``binning``
            A callable collapsing values before comparison — the paper's
            "any distance up to ten miles is the same" coarsening.
        ``value_order``
            Explicit preference order over the (binned) values, for
            non-numeric attributes such as cuisine. Values not listed rank
            after all listed ones, grouped in one bucket.
        """
        self._require_attribute(attribute)
        values = self.column(attribute)
        if binning is not None:
            values = {key: binning(value) for key, value in values.items()}
        if value_order is None:
            return PartialRanking.from_scores(values, reverse=reverse)
        preference = {value: index for index, value in enumerate(value_order)}
        unlisted = len(preference)
        scored = {
            key: preference.get(value, unlisted) for key, value in values.items()
        }
        return PartialRanking.from_scores(scored, reverse=reverse)

    def rank_by_lex(
        self,
        criteria: Sequence[tuple[str, bool]],
    ) -> PartialRanking:
        """Lexicographic multi-attribute sort ("ORDER BY a, b DESC, ...").

        ``criteria`` is a sequence of ``(attribute, reverse)`` pairs, most
        significant first. In the paper's algebra this is exactly a chain
        of ``*`` refinements: the secondary sort breaks the primary sort's
        ties, i.e. ``rank_by_lex([(a, ...), (b, ...)])`` equals
        ``star(rank_by(b), rank_by(a))`` — a fact the tests verify.
        Records tied on every listed attribute remain tied.
        """
        if not criteria:
            raise SchemaError("rank_by_lex requires at least one criterion")
        rankings = [
            self.rank_by(attribute, reverse=reverse) for attribute, reverse in criteria
        ]
        result = rankings[0]
        for ranking in rankings[1:]:
            result = result.refined_by(ranking)
        return result

    def _require_attribute(self, attribute: str) -> None:
        if attribute not in self.attributes:
            raise SchemaError(
                f"attribute {attribute!r} not in relation {self.name!r} "
                f"(schema: {sorted(self.attributes)})"
            )
