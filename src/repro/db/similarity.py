"""Similarity search via rank aggregation (the paper's [11] application).

The introduction lists "similarity search" among rank aggregation's
applications, citing Fagin–Kumar–Sivakumar (SIGMOD 2003): to find records
similar to a query record, rank the database once per attribute by
closeness to the query's value, then aggregate the per-attribute rankings
with median rank. Each per-attribute ranking is a *partial* ranking —
categorical attributes produce exactly two buckets (match / mismatch), and
coarse numeric attributes produce few distinct distances — which is
precisely the regime this paper's machinery handles.

:func:`similarity_search` runs the pipeline end to end with the
sequential-access MEDRANK algorithm, so it inherits the access-efficiency
guarantees measured in E8.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from numbers import Number
from typing import Any

from repro import obs
from repro.aggregate.medrank import AccessLog, medrank
from repro.core.partial_ranking import Item, PartialRanking
from repro.db.relation import Relation, SchemaError

__all__ = ["SimilarityResult", "similarity_rankings", "similarity_search"]


def _closeness_score(value: Any, query_value: Any) -> float:
    """Distance of an attribute value from the query's value.

    Numeric attributes use absolute difference; everything else is a
    match/mismatch indicator (0 or 1), yielding the two-bucket rankings
    that make this a partial-ranking aggregation problem.
    """
    both_numeric = (
        isinstance(value, Number)
        and isinstance(query_value, Number)
        and not isinstance(value, bool)
        and not isinstance(query_value, bool)
    )
    if both_numeric:
        return abs(float(value) - float(query_value))
    return 0.0 if value == query_value else 1.0


def similarity_rankings(
    relation: Relation,
    query_key: Item,
    attributes: Sequence[str] | None = None,
) -> list[PartialRanking]:
    """One closeness ranking per attribute, relative to the query record.

    Records closest to the query record's value rank first; equal
    closeness means tied. The query record itself sits in the top bucket
    of every ranking (distance zero to itself).
    """
    query_row = relation.row(query_key)
    if attributes is None:
        chosen = sorted(relation.attributes - {relation.key})
    else:
        chosen = list(attributes)
        unknown = set(chosen) - relation.attributes
        if unknown:
            raise SchemaError(f"unknown attributes {sorted(unknown)}")
        if not chosen:
            raise SchemaError("similarity search needs at least one attribute")
    rankings = []
    for attribute in chosen:
        scores = {
            row[relation.key]: _closeness_score(row[attribute], query_row[attribute])
            for row in relation
        }
        rankings.append(PartialRanking.from_scores(scores))
    return rankings


@dataclass(frozen=True, slots=True)
class SimilarityResult:
    """The k nearest neighbours of a query record, with access accounting."""

    query_key: Item
    neighbors: tuple[Item, ...]
    ranking: PartialRanking
    input_rankings: tuple[PartialRanking, ...]
    access_log: AccessLog


def similarity_search(
    relation: Relation,
    query_key: Item,
    k: int = 10,
    attributes: Sequence[str] | None = None,
) -> SimilarityResult:
    """Find the k records most similar to ``query_key``.

    Aggregates the per-attribute closeness rankings with the
    sequential-access median algorithm. The query record trivially
    dominates every ranking, so it is excluded from the reported
    neighbours (but still participates in the aggregation domain, exactly
    as in [11]).
    """
    with obs.trace("db.similarity.search", k=k, rows=len(relation)):
        rankings = similarity_rankings(relation, query_key, attributes)
        obs.add("db.similarity.rankings", len(rankings))
        if not 0 < k < len(relation):
            raise SchemaError(
                f"k={k} out of range for a relation of size {len(relation)}"
            )
        # ask for one extra winner: the query record itself always wins
        result = medrank(rankings, k=min(k + 1, len(relation)))
    neighbors = tuple(item for item in result.winners if item != query_key)[:k]
    return SimilarityResult(
        query_key=query_key,
        neighbors=neighbors,
        ranking=result.ranking,
        input_rankings=tuple(rankings),
        access_log=result.access_log,
    )
