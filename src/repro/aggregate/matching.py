"""Optimal footrule aggregation via minimum-cost perfect matching.

The paper's footnote 4 recalls that computing an *optimal* solution to the
Spearman footrule aggregation problem (full-ranking output) requires a
minimum-cost perfect matching: match each item ``x`` to an output position
``p`` in ``1..n`` at cost ``sum_i |sigma_i(x) - p|``; an optimal matching is
an optimal full-ranking aggregation, because ``F_prof`` only depends on the
positions. The median algorithm's selling point is matching this quality to
within a small constant *without* solving a matching — experiments E7 and
E9 quantify the gap.

The assignment problem is solved with SciPy's Jonker–Volgenant solver.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt
from scipy.optimize import linear_sum_assignment

from repro import obs
from repro.aggregate.objective import validate_profile
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.parallel import parallel_map, resolve_jobs

__all__ = ["optimal_footrule_aggregation"]


def _matching_cost_chunk(position_rows: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Pool worker: item×slot cost contribution of a chunk of rankings.

    One O(n²) broadcast per ranking instead of the former per-item Python
    loop; every entry is a sum of half-integers, hence exact in float64 —
    partial matrices can be summed in any grouping without changing a bit.
    """
    n = position_rows.shape[1]
    positions = np.arange(1, n + 1, dtype=float)
    cost = np.zeros((n, n))
    for row in position_rows:
        cost += np.abs(row[:, None] - positions[None, :])
    return cost


def optimal_footrule_aggregation(
    rankings: Sequence[PartialRanking],
    *,
    jobs: int | None = None,
) -> tuple[PartialRanking, float]:
    """Return an optimal full-ranking footrule aggregation and its cost.

    Minimizes ``sum_i F_prof(out, sigma_i)`` over all full rankings
    ``out``. Runs in O(n³) via the assignment problem — the expensive exact
    comparator to median aggregation. ``jobs`` spreads the O(m·n²)
    cost-matrix construction over a process pool (:mod:`repro.parallel`);
    the result is identical for any job count.
    """
    validate_profile(rankings)
    codec = DomainCodec.for_profile(rankings)
    items = list(codec.items)  # canonical key order, as before
    n = len(items)

    with obs.trace("aggregate.matching.assignment", m=len(rankings), n=n):
        obs.add("aggregate.matching.cells", len(rankings) * n * n)
        position_rows = np.stack([sigma.dense_arrays(codec)[1] for sigma in rankings])
        n_jobs = min(resolve_jobs(jobs), len(rankings))
        bounds = np.linspace(0, len(rankings), max(1, n_jobs) + 1).astype(int)
        chunks = [position_rows[a:b] for a, b in zip(bounds, bounds[1:]) if a < b]
        cost = sum(
            parallel_map(_matching_cost_chunk, chunks, jobs=jobs), np.zeros((n, n))
        )

        rows, cols = linear_sum_assignment(cost)
        order: list = [None] * n
        for row, col in zip(rows, cols):
            order[col] = items[row]
        total_cost = float(cost[rows, cols].sum())
        return PartialRanking.from_sequence(order), total_cost
