"""Optimal footrule aggregation via minimum-cost perfect matching.

The paper's footnote 4 recalls that computing an *optimal* solution to the
Spearman footrule aggregation problem (full-ranking output) requires a
minimum-cost perfect matching: match each item ``x`` to an output position
``p`` in ``1..n`` at cost ``sum_i |sigma_i(x) - p|``; an optimal matching is
an optimal full-ranking aggregation, because ``F_prof`` only depends on the
positions. The median algorithm's selling point is matching this quality to
within a small constant *without* solving a matching — experiments E7 and
E9 quantify the gap.

The assignment problem is solved with SciPy's Jonker–Volgenant solver.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.aggregate.objective import validate_profile
from repro.core.partial_ranking import PartialRanking

__all__ = ["optimal_footrule_aggregation"]


def optimal_footrule_aggregation(
    rankings: Sequence[PartialRanking],
) -> tuple[PartialRanking, float]:
    """Return an optimal full-ranking footrule aggregation and its cost.

    Minimizes ``sum_i F_prof(out, sigma_i)`` over all full rankings
    ``out``. Runs in O(n³) via the assignment problem — the expensive exact
    comparator to median aggregation.
    """
    domain = validate_profile(rankings)
    items = sorted(domain, key=lambda item: (type(item).__name__, repr(item)))
    n = len(items)
    positions = np.arange(1, n + 1, dtype=float)

    cost = np.zeros((n, n))
    for row, item in enumerate(items):
        for sigma in rankings:
            cost[row] += np.abs(sigma[item] - positions)

    rows, cols = linear_sum_assignment(cost)
    order: list = [None] * n
    for row, col in zip(rows, cols):
        order[col] = items[row]
    total_cost = float(cost[rows, cols].sum())
    return PartialRanking.from_sequence(order), total_cost
