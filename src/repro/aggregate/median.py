"""Median rank aggregation (paper §6, Theorems 9–11 and Corollaries 30–32).

Given input partial rankings ``sigma_1, ..., sigma_m`` over a common domain,
the median score function ``f(d) = median(sigma_1(d), ..., sigma_m(d))``
minimizes ``sum_i L1(g, sigma_i)`` over all functions ``g`` (Lemma 8). The
paper then derives constant-factor-approximate aggregations from ``f``:

* **top-k output** (Theorem 9 / Corollary 30): sort by median score, take
  the first k — a factor-3 approximation w.r.t. ``F_prof`` among top-k
  lists (factor 2 if the inputs all have the output's type).
* **full-ranking output** (Theorem 11 / Corollary 32): any refinement of
  the partial ranking induced by ``f`` — factor 2 for full-ranking inputs.
* **partial-ranking output** (Theorem 10 / Corollary 31): the partial
  ranking ``f†`` closest in L1 to ``f`` (computed by the Figure 1 dynamic
  program in :mod:`repro.aggregate.dp`) — factor 2 against all partial
  rankings when the inputs are partial rankings.

When ``m`` is even the paper's ``median(a_1..a_m)`` is a *set*
``{a_{m/2}, a_{m/2+1}, (a_{m/2}+a_{m/2+1})/2}``; every member satisfies
Lemma 8, and the ``tie`` parameter selects which one to use.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Literal

from repro.aggregate.dp import optimal_partial_ranking
from repro.aggregate.objective import validate_profile
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

MedianTie = Literal["mid", "low", "high"]

__all__ = [
    "median_of",
    "median_scores",
    "median_top_k",
    "median_full_ranking",
    "median_partial_ranking",
    "median_fixed_type",
    "MedianAggregator",
]


def median_of(
    values: Sequence[float],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> float:
    """Return a member of the paper's median set of a list of numbers.

    For odd length this is the middle element. For even length the median
    set is ``{lower middle, upper middle, their average}``; ``tie`` picks
    which member to return.

    With ``weights`` (positive, one per value), returns a *weighted*
    median: a point minimizing ``sum_i w_i |x - a_i|``. When the optimal
    set is an interval, ``tie`` selects its lower end, upper end, or
    midpoint — mirroring the unweighted median-set semantics. Lemma 8
    generalizes verbatim: any weighted median minimizes the weighted L1
    objective, which the property tests verify.
    """
    if not values:
        raise AggregationError("median of an empty list is undefined")
    if tie not in ("low", "mid", "high"):
        raise AggregationError(f"unknown median tie rule {tie!r}")
    if weights is None:
        ordered = sorted(values)
        m = len(ordered)
        if m % 2 == 1:
            return ordered[m // 2]
        low, high = ordered[m // 2 - 1], ordered[m // 2]
    else:
        if len(weights) != len(values):
            raise AggregationError(
                f"{len(weights)} weights for {len(values)} values"
            )
        if any(w <= 0 for w in weights):
            raise AggregationError("weights must be strictly positive")
        pairs = sorted(zip(values, weights))
        total = sum(weight for _, weight in pairs)
        half = total / 2
        # lower weighted median: first value whose prefix weight reaches
        # half the total; upper: last value whose suffix weight reaches it
        cumulative = 0.0
        low = high = pairs[-1][0]
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= half:
                low = value
                break
        cumulative = 0.0
        for value, weight in reversed(pairs):
            cumulative += weight
            if cumulative >= half:
                high = value
                break
    if tie == "low":
        return low
    if tie == "high":
        return high
    return (low + high) / 2


def median_scores(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> dict[Item, float]:
    """The median score function ``f(d) = median_i sigma_i(d)``.

    By Lemma 8 this minimizes ``sum_i L1(f, sigma_i)`` over all functions.
    Optional ``weights`` (one positive weight per input ranking) give the
    weighted-voter generalization: the weighted median minimizes
    ``sum_i w_i L1(f, sigma_i)``.
    """
    domain = validate_profile(rankings)
    if weights is not None and len(weights) != len(rankings):
        raise AggregationError(
            f"{len(weights)} weights for {len(rankings)} rankings"
        )
    return {
        item: median_of(
            [sigma[item] for sigma in rankings], tie=tie, weights=weights
        )
        for item in domain
    }


def _order_by_scores(scores: dict[Item, float]) -> list[Item]:
    """Items sorted by score, ties broken canonically (deterministic)."""
    return sorted(scores, key=lambda item: (scores[item], type(item).__name__, repr(item)))


def median_top_k(
    rankings: Sequence[PartialRanking],
    k: int,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Theorem 9: the median top-k list.

    The first k items of the median order become singleton buckets;
    everything else is the bottom bucket. Guaranteed within factor 3 of the
    optimal top-k list w.r.t. ``sum_i F_prof``.
    """
    scores = median_scores(rankings, tie=tie, weights=weights)
    if not 0 < k <= len(scores):
        raise AggregationError(f"k={k} out of range for domain of size {len(scores)}")
    ordered = _order_by_scores(scores)
    return PartialRanking.top_k(ordered[:k], scores.keys())


def median_full_ranking(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Theorem 11: a full ranking refining the median-induced ranking.

    Ties in the median scores are broken canonically. For full-ranking
    inputs this is a factor-2 approximation w.r.t. ``sum_i F``.
    """
    scores = median_scores(rankings, tie=tie, weights=weights)
    return PartialRanking.from_sequence(_order_by_scores(scores))


def median_partial_ranking(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Theorem 10: the partial ranking ``f†`` closest in L1 to the median.

    Uses the O(n²) dynamic program of Figure 1; a factor-2 approximation
    against all partial rankings (for partial-ranking inputs).
    """
    scores = median_scores(rankings, tie=tie, weights=weights)
    return optimal_partial_ranking(scores)


def median_fixed_type(
    rankings: Sequence[PartialRanking],
    bucket_type: Sequence[int],
    tie: MedianTie = "mid",
) -> PartialRanking:
    """Corollary 30: the median aggregation constrained to a given type.

    Items in median order are grouped into consecutive buckets of the
    prescribed sizes; the result is the type-``alpha`` partial ranking
    consistent with the median scores, within factor 3 of the optimum over
    that type.
    """
    scores = median_scores(rankings, tie=tie)
    if sum(bucket_type) != len(scores):
        raise AggregationError(
            f"type {tuple(bucket_type)} does not partition a domain of size {len(scores)}"
        )
    if any(size <= 0 for size in bucket_type):
        raise AggregationError("bucket sizes must be positive")
    ordered = _order_by_scores(scores)
    buckets: list[list[Item]] = []
    start = 0
    for size in bucket_type:
        buckets.append(ordered[start : start + size])
        start += size
    return PartialRanking(buckets)


@dataclass(frozen=True, slots=True)
class MedianAggregator:
    """Convenience object bundling all median-aggregation outputs.

    Example
    -------
    >>> from repro.core import PartialRanking
    >>> inputs = [
    ...     PartialRanking([["a"], ["b", "c"]]),
    ...     PartialRanking([["a", "b"], ["c"]]),
    ...     PartialRanking([["b"], ["a"], ["c"]]),
    ... ]
    >>> agg = MedianAggregator(tuple(inputs))
    >>> agg.full_ranking().items_in_order()
    ['a', 'b', 'c']
    """

    rankings: tuple[PartialRanking, ...]
    tie: MedianTie = "mid"
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        validate_profile(self.rankings)
        if self.weights is not None and len(self.weights) != len(self.rankings):
            raise AggregationError(
                f"{len(self.weights)} weights for {len(self.rankings)} rankings"
            )

    def scores(self) -> dict[Item, float]:
        """The median score function."""
        return median_scores(self.rankings, tie=self.tie, weights=self.weights)

    def top_k(self, k: int) -> PartialRanking:
        """Theorem 9 output."""
        return median_top_k(self.rankings, k, tie=self.tie, weights=self.weights)

    def full_ranking(self) -> PartialRanking:
        """Theorem 11 output."""
        return median_full_ranking(self.rankings, tie=self.tie, weights=self.weights)

    def partial_ranking(self) -> PartialRanking:
        """Theorem 10 output (dynamic program)."""
        return median_partial_ranking(self.rankings, tie=self.tie, weights=self.weights)

    def fixed_type(self, bucket_type: Sequence[int]) -> PartialRanking:
        """Corollary 30 output."""
        return median_fixed_type(self.rankings, bucket_type, tie=self.tie)
