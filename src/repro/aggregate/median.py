"""Median rank aggregation (paper §6, Theorems 9–11 and Corollaries 30–32).

Given input partial rankings ``sigma_1, ..., sigma_m`` over a common domain,
the median score function ``f(d) = median(sigma_1(d), ..., sigma_m(d))``
minimizes ``sum_i L1(g, sigma_i)`` over all functions ``g`` (Lemma 8). The
paper then derives constant-factor-approximate aggregations from ``f``:

* **top-k output** (Theorem 9 / Corollary 30): sort by median score, take
  the first k — a factor-3 approximation w.r.t. ``F_prof`` among top-k
  lists (factor 2 if the inputs all have the output's type).
* **full-ranking output** (Theorem 11 / Corollary 32): any refinement of
  the partial ranking induced by ``f`` — factor 2 for full-ranking inputs.
* **partial-ranking output** (Theorem 10 / Corollary 31): the partial
  ranking ``f†`` closest in L1 to ``f`` (computed by the Figure 1 dynamic
  program in :mod:`repro.aggregate.dp`) — factor 2 against all partial
  rankings when the inputs are partial rankings.

When ``m`` is even the paper's ``median(a_1..a_m)`` is a *set*
``{a_{m/2}, a_{m/2+1}, (a_{m/2}+a_{m/2+1})/2}``; every member satisfies
Lemma 8, and the ``tie`` parameter selects which one to use.

Two interchangeable engines compute every output. The ``dict`` engine
below is the readable reference — per-item gathers and scalar
:func:`median_of` calls. The ``array`` engine
(:mod:`repro.aggregate.batch`) encodes the profile once into an ``(m, n)``
position matrix and is bit-for-bit equal; ``engine="auto"`` (the default)
delegates to it once the profile is large enough to amortize the numpy
call overhead.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Literal

from repro import obs
from repro.aggregate.dp import optimal_partial_ranking
from repro.aggregate.objective import validate_profile
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

MedianTie = Literal["mid", "low", "high"]
MedianEngine = Literal["auto", "dict", "array"]

__all__ = [
    "median_of",
    "median_scores",
    "median_top_k",
    "median_full_ranking",
    "median_partial_ranking",
    "median_fixed_type",
    "MedianAggregator",
]

#: ``engine="auto"`` switches to the array kernels once the position
#: matrix has at least this many cells (m·n); below it the dict path's
#: lack of numpy call overhead wins (see docs/PERFORMANCE.md).
_ARRAY_MIN_CELLS = 1024


def _check_tie(tie: str) -> None:
    if tie not in ("low", "mid", "high"):
        raise AggregationError(f"unknown median tie rule {tie!r}")


def _validated_weights(
    weights: Sequence[float] | None, count: int, noun: str = "values"
) -> list[float] | None:
    """Validate a weight vector once, up front (not once per item).

    Returns the weights as a plain list (so an exhausted iterator or a
    numpy array behave identically downstream), or ``None`` for the
    unweighted path.
    """
    if weights is None:
        return None
    checked = list(weights)
    if len(checked) != count:
        raise AggregationError(f"{len(checked)} weights for {count} {noun}")
    if any(w <= 0 for w in checked):
        raise AggregationError("weights must be strictly positive")
    return checked


def _resolve_engine(engine: str, cells: int) -> str:
    if engine == "auto":
        engine = "array" if cells >= _ARRAY_MIN_CELLS else "dict"
    elif engine not in ("dict", "array"):
        raise AggregationError(f"unknown median engine {engine!r}")
    if obs.enabled():
        # one shared instrumentation site for every median_* entry point:
        # the crossover decision lands on the caller's @traced span
        obs.add(f"aggregate.engine.{engine}")
        obs.set_attr("engine", engine)
    return engine


def median_of(
    values: Sequence[float],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> float:
    """Return a member of the paper's median set of a list of numbers.

    For odd length this is the middle element. For even length the median
    set is ``{lower middle, upper middle, their average}``; ``tie`` picks
    which member to return.

    With ``weights`` (positive, one per value), returns a *weighted*
    median: a point minimizing ``sum_i w_i |x - a_i|``. When the optimal
    set is an interval, ``tie`` selects its lower end, upper end, or
    midpoint — mirroring the unweighted median-set semantics. Lemma 8
    generalizes verbatim: any weighted median minimizes the weighted L1
    objective, which the property tests verify.
    """
    if not values:
        raise AggregationError("median of an empty list is undefined")
    _check_tie(tie)
    return _median_of_checked(values, tie, _validated_weights(weights, len(values)))


def _median_of_checked(
    values: Sequence[float], tie: MedianTie, weights: Sequence[float] | None
) -> float:
    """:func:`median_of` with validation already performed by the caller."""
    if weights is None:
        ordered = sorted(values)
        m = len(ordered)
        if m % 2 == 1:
            return ordered[m // 2]
        low, high = ordered[m // 2 - 1], ordered[m // 2]
    else:
        pairs = sorted(zip(values, weights))
        total = sum(weight for _, weight in pairs)
        half = total / 2
        # lower weighted median: first value whose prefix weight reaches
        # half the total; upper: last value whose suffix weight reaches it
        cumulative = 0.0
        low = high = pairs[-1][0]
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= half:
                low = value
                break
        cumulative = 0.0
        for value, weight in reversed(pairs):
            cumulative += weight
            if cumulative >= half:
                high = value
                break
    if tie == "low":
        return low
    if tie == "high":
        return high
    return (low + high) / 2


@obs.traced("aggregate.median_scores")
def median_scores(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    engine: MedianEngine = "auto",
) -> dict[Item, float]:
    """The median score function ``f(d) = median_i sigma_i(d)``.

    By Lemma 8 this minimizes ``sum_i L1(f, sigma_i)`` over all functions.
    Optional ``weights`` (one positive weight per input ranking) give the
    weighted-voter generalization: the weighted median minimizes
    ``sum_i w_i L1(f, sigma_i)`` (see docs/THEORY.md, Lemma 8W).

    ``engine`` selects the dict reference path or the position-matrix
    kernels of :mod:`repro.aggregate.batch`; the two are bit-for-bit
    interchangeable.
    """
    domain = validate_profile(rankings)
    _check_tie(tie)
    checked = _validated_weights(weights, len(rankings), noun="rankings")
    if _resolve_engine(engine, len(rankings) * len(domain)) == "array":
        from repro.aggregate.batch import median_scores_batch

        return median_scores_batch(rankings, tie=tie, weights=checked)
    return {
        item: _median_of_checked(
            [sigma[item] for sigma in rankings], tie, checked  # repro: noqa[RP009] — the dict engine is the retained reference path
        )
        for item in domain
    }


def _order_by_scores(scores: dict[Item, float]) -> list[Item]:
    """Items sorted by score, ties broken canonically (deterministic)."""
    return sorted(scores, key=lambda item: (scores[item], type(item).__name__, repr(item)))


@obs.traced("aggregate.median_top_k")
def median_top_k(
    rankings: Sequence[PartialRanking],
    k: int,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    engine: MedianEngine = "auto",
) -> PartialRanking:
    """Theorem 9: the median top-k list.

    The first k items of the median order become singleton buckets;
    everything else is the bottom bucket. Guaranteed within factor 3 of the
    optimal top-k list w.r.t. ``sum_i F_prof``.
    """
    domain = validate_profile(rankings)
    if _resolve_engine(engine, len(rankings) * len(domain)) == "array":
        from repro.aggregate.batch import median_top_k_batch

        return median_top_k_batch(rankings, k, tie=tie, weights=weights)
    scores = median_scores(rankings, tie=tie, weights=weights, engine="dict")
    if not 0 < k <= len(scores):
        raise AggregationError(f"k={k} out of range for domain of size {len(scores)}")
    ordered = _order_by_scores(scores)
    return PartialRanking.top_k(ordered[:k], scores.keys())


@obs.traced("aggregate.median_full_ranking")
def median_full_ranking(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    engine: MedianEngine = "auto",
) -> PartialRanking:
    """Theorem 11: a full ranking refining the median-induced ranking.

    Ties in the median scores are broken canonically. For full-ranking
    inputs this is a factor-2 approximation w.r.t. ``sum_i F``.
    """
    domain = validate_profile(rankings)
    if _resolve_engine(engine, len(rankings) * len(domain)) == "array":
        from repro.aggregate.batch import median_full_ranking_batch

        return median_full_ranking_batch(rankings, tie=tie, weights=weights)
    scores = median_scores(rankings, tie=tie, weights=weights, engine="dict")
    return PartialRanking.from_sequence(_order_by_scores(scores))


@obs.traced("aggregate.median_partial_ranking")
def median_partial_ranking(
    rankings: Sequence[PartialRanking],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    engine: MedianEngine = "auto",
) -> PartialRanking:
    """Theorem 10: the partial ranking ``f†`` closest in L1 to the median.

    Uses the O(n²) dynamic program of Figure 1; a factor-2 approximation
    against all partial rankings (for partial-ranking inputs).
    """
    domain = validate_profile(rankings)
    if _resolve_engine(engine, len(rankings) * len(domain)) == "array":
        from repro.aggregate.batch import median_partial_ranking_batch

        return median_partial_ranking_batch(rankings, tie=tie, weights=weights)
    scores = median_scores(rankings, tie=tie, weights=weights, engine="dict")
    return optimal_partial_ranking(scores)


@obs.traced("aggregate.median_fixed_type")
def median_fixed_type(
    rankings: Sequence[PartialRanking],
    bucket_type: Sequence[int],
    tie: MedianTie = "mid",
    *,
    engine: MedianEngine = "auto",
) -> PartialRanking:
    """Corollary 30: the median aggregation constrained to a given type.

    Items in median order are grouped into consecutive buckets of the
    prescribed sizes; the result is the type-``alpha`` partial ranking
    consistent with the median scores, within factor 3 of the optimum over
    that type.
    """
    domain = validate_profile(rankings)
    if _resolve_engine(engine, len(rankings) * len(domain)) == "array":
        from repro.aggregate.batch import median_fixed_type_batch

        return median_fixed_type_batch(rankings, bucket_type, tie=tie)
    scores = median_scores(rankings, tie=tie, engine="dict")
    if sum(bucket_type) != len(scores):
        raise AggregationError(
            f"type {tuple(bucket_type)} does not partition a domain of size {len(scores)}"
        )
    if any(size <= 0 for size in bucket_type):
        raise AggregationError("bucket sizes must be positive")
    ordered = _order_by_scores(scores)
    buckets: list[list[Item]] = []
    start = 0
    for size in bucket_type:
        buckets.append(ordered[start : start + size])
        start += size
    return PartialRanking(buckets)


@dataclass(frozen=True, slots=True)
class MedianAggregator:
    """Convenience object bundling all median-aggregation outputs.

    Example
    -------
    >>> from repro.core import PartialRanking
    >>> inputs = [
    ...     PartialRanking([["a"], ["b", "c"]]),
    ...     PartialRanking([["a", "b"], ["c"]]),
    ...     PartialRanking([["b"], ["a"], ["c"]]),
    ... ]
    >>> agg = MedianAggregator(tuple(inputs))
    >>> agg.full_ranking().items_in_order()
    ['a', 'b', 'c']
    """

    rankings: tuple[PartialRanking, ...]
    tie: MedianTie = "mid"
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        validate_profile(self.rankings)
        if self.weights is not None and len(self.weights) != len(self.rankings):
            raise AggregationError(
                f"{len(self.weights)} weights for {len(self.rankings)} rankings"
            )

    def scores(self) -> dict[Item, float]:
        """The median score function."""
        return median_scores(self.rankings, tie=self.tie, weights=self.weights)

    def top_k(self, k: int) -> PartialRanking:
        """Theorem 9 output."""
        return median_top_k(self.rankings, k, tie=self.tie, weights=self.weights)

    def full_ranking(self) -> PartialRanking:
        """Theorem 11 output."""
        return median_full_ranking(self.rankings, tie=self.tie, weights=self.weights)

    def partial_ranking(self) -> PartialRanking:
        """Theorem 10 output (dynamic program)."""
        return median_partial_ranking(self.rankings, tie=self.tie, weights=self.weights)

    def fixed_type(self, bucket_type: Sequence[int]) -> PartialRanking:
        """Corollary 30 output."""
        return median_fixed_type(self.rankings, bucket_type, tie=self.tie)
