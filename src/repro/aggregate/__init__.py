"""Rank aggregation algorithms (paper §6) and baselines.

The centerpiece is median rank aggregation, which the paper proves is a
constant-factor approximation with respect to all four partial-ranking
metrics:

* :func:`median_scores` / :class:`MedianAggregator` — the median score
  function and its top-k / full-ranking / fixed-type / partial-ranking
  outputs (Theorems 9, 10, 11 and their generalizations).
* :mod:`repro.aggregate.batch` — the position-matrix kernel layer behind
  ``engine="array"``: every median output computed from one ``(m, n)``
  encode, bit-for-bit equal to the dict reference path.
* :func:`optimal_bucketing` — the Figure 1 dynamic program producing the
  partial ranking closest in L1 to an arbitrary score function.
* :func:`medrank` / :func:`nra_median` — sequential-access algorithms with
  access accounting (the database-friendly instantiation of §6).
* :mod:`repro.aggregate.baselines` — Borda, MC4, pick-a-perm, best-input.
* :func:`optimal_footrule_aggregation` — the exact (matching-based)
  comparator the paper contrasts the median algorithm with.
* :mod:`repro.aggregate.exact` — brute-force optima for small domains.
* :func:`kemeny_decomposed` / :func:`kemeny_optimal` — SCC-condensed
  exact ``K^(p)`` aggregation (per-component Held–Karp over the
  :func:`pair_cost_array` dominance digraph, pluggable
  :class:`ScoringScheme` penalties).
* :func:`aggregate` — the registry-aware entry point: median *or*
  minmax (egalitarian, arXiv 1701.08305) objective under any metric
  registered in the plugin registry, with the :class:`AggregateResult`
  certification flag.
"""

from repro.aggregate.batch import (
    median_fixed_type_batch,
    median_full_ranking_batch,
    median_partial_ranking_batch,
    median_scores_array,
    median_scores_batch,
    median_top_k_batch,
)
from repro.aggregate.decompose import DecomposedResult, kemeny_decomposed
from repro.aggregate.dp import bucketing_cost, optimal_bucketing, optimal_partial_ranking
from repro.aggregate.kemeny import (
    kemeny_lower_bound,
    kemeny_optimal,
    pair_cost_array,
    pair_cost_matrix,
)
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.scoring import ScoringScheme
from repro.aggregate.median import (
    MedianAggregator,
    median_fixed_type,
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.medrank import (
    AccessLog,
    SlotMedrankResult,
    medrank,
    medrank_out_of_core,
    nra_median,
)
from repro.aggregate.minmax import AggregateResult, aggregate
from repro.aggregate.objective import max_distance, resolve_metric, total_distance
from repro.aggregate.online import OnlineMedianAggregator
from repro.aggregate.tournament import (
    condorcet_winner,
    is_condorcet_consistent,
    majority_digraph,
    topological_aggregation,
)

__all__ = [
    "median_scores",
    "median_top_k",
    "median_full_ranking",
    "median_partial_ranking",
    "median_fixed_type",
    "median_scores_array",
    "median_scores_batch",
    "median_top_k_batch",
    "median_full_ranking_batch",
    "median_partial_ranking_batch",
    "median_fixed_type_batch",
    "MedianAggregator",
    "OnlineMedianAggregator",
    "optimal_bucketing",
    "optimal_partial_ranking",
    "bucketing_cost",
    "medrank",
    "medrank_out_of_core",
    "nra_median",
    "AccessLog",
    "SlotMedrankResult",
    "optimal_footrule_aggregation",
    "kemeny_optimal",
    "kemeny_lower_bound",
    "kemeny_decomposed",
    "DecomposedResult",
    "ScoringScheme",
    "pair_cost_array",
    "pair_cost_matrix",
    "majority_digraph",
    "condorcet_winner",
    "is_condorcet_consistent",
    "topological_aggregation",
    "total_distance",
    "max_distance",
    "resolve_metric",
    "aggregate",
    "AggregateResult",
]
