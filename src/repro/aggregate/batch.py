"""Position-matrix aggregation kernels (the batch layer for paper §6).

The dict-based implementations in :mod:`repro.aggregate.median` compute
``median_scores`` with O(m·n) dict lookups and ``n`` separate
:func:`~repro.aggregate.median.median_of` calls. This module encodes a
profile of ``m`` rankings over ``n`` items **once** into an ``(m, n)``
float64 position matrix — reusing the interned
:class:`~repro.core.codec.DomainCodec` and the per-ranking
:meth:`~repro.core.partial_ranking.PartialRanking.dense_arrays` caches —
and then derives every §6 output from columnwise array kernels:

* :func:`median_scores_array` / :func:`median_scores_batch` — all three
  ``tie`` modes via one columnwise sort (``np.median``-style middle
  selection), and the weighted-voter generalization via a columnwise
  ``lexsort`` + cumulative-weight selection;
* :func:`median_top_k_batch` — ``np.partition`` pivoting plus an explicit
  canonical tie-break at the k-th score boundary;
* :func:`median_full_ranking_batch` / :func:`median_partial_ranking_batch`
  / :func:`median_fixed_type_batch` — a single stable ``argsort`` shared
  by the full-ranking, Figure-1-DP and fixed-type outputs.

Every kernel is **bit-for-bit equal** to the corresponding dict-path
function, for every tie mode and every weight vector — not merely within
tolerance. The guarantees rest on three facts: positions are multiples of
½ (exact in float64, sums exact in any order); ``np.cumsum`` is a
sequential scan, so the weighted prefix sums perform the *same additions
in the same order* as the Python loop; and the sorted order of positions
(resp. of ``(position, weight)`` pairs under ``lexsort``) is the same
multiset the dict path sorts. The Hypothesis suite and the
``oracle:aggregate-*`` checks in :mod:`repro.verify` assert the equality
with ``==``.

The dict implementations remain the independent reference (and the
readable statement of the paper's definitions); the public functions in
:mod:`repro.aggregate.median` dispatch here for codec-compatible inputs
above a small size threshold.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.aggregate.dp import optimal_bucketing
from repro.aggregate.median import MedianTie, _check_tie, _validated_weights
from repro.aggregate.objective import validate_profile
from repro.core.arena import ProfileArena
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.batch import Profile, position_matrix

__all__ = [
    "median_scores_array",
    "median_scores_batch",
    "median_top_k_batch",
    "median_full_ranking_batch",
    "median_partial_ranking_batch",
    "median_fixed_type_batch",
]


# ----------------------------------------------------------------------
# Core columnwise kernels
# ----------------------------------------------------------------------


def median_scores_array(
    positions: npt.NDArray[np.float64],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    assume_sorted: bool = False,
) -> npt.NDArray[np.float64]:
    """Columnwise (weighted) median of an ``(m, n)`` position matrix.

    Row ``r`` holds ranking ``r``'s positions in codec slot order; the
    result is the length-``n`` vector of per-item medians — the median
    score function of Lemma 8 as a dense array.

    ``assume_sorted`` skips the columnwise sort when the caller already
    maintains column-sorted state (the online aggregator does); it is
    only meaningful on the unweighted path, because the weighted kernel
    must co-sort positions with their weights.

    Kept as a thin tracing wrapper over :func:`_median_scores_array_impl`
    so ``benchmarks/bench_obs.py`` can measure the disabled-mode overhead
    of the instrumentation as (wrapper − impl) directly.
    """
    if not obs.enabled():
        return _median_scores_array_impl(
            positions, tie, weights, assume_sorted=assume_sorted
        )
    shape = np.shape(positions)
    with obs.trace(
        "aggregate.batch.median_scores_array",
        tie=tie,
        weighted=weights is not None,
    ):
        if len(shape) == 2:
            obs.add("aggregate.cells", shape[0] * shape[1])
        return _median_scores_array_impl(
            positions, tie, weights, assume_sorted=assume_sorted
        )


def _median_scores_array_impl(
    positions: npt.NDArray[np.float64],
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
    *,
    assume_sorted: bool = False,
) -> npt.NDArray[np.float64]:
    _check_tie(tie)
    matrix = np.asarray(positions, dtype=np.float64)
    if matrix.ndim != 2:
        raise AggregationError(
            f"position matrix must be 2-dimensional, got shape {matrix.shape}"
        )
    m = matrix.shape[0]
    if m == 0:
        raise AggregationError("median of an empty profile is undefined")
    if weights is None:
        ordered = matrix if assume_sorted else np.sort(matrix, axis=0)
        if m % 2 == 1:
            return ordered[m // 2].copy()
        low = ordered[m // 2 - 1]
        high = ordered[m // 2]
    else:
        if assume_sorted:
            raise AggregationError(
                "assume_sorted applies to the unweighted kernel only"
            )
        weight_vec = np.asarray(_validated_weights(weights, m), dtype=np.float64)
        low, high = _weighted_bounds(matrix, weight_vec)
    if tie == "low":
        return low.copy()
    if tie == "high":
        return high.copy()
    return (low + high) / 2


def _weighted_bounds(
    matrix: npt.NDArray[np.float64], weight_vec: npt.NDArray[np.float64]
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Columnwise lower/upper weighted medians.

    Mirrors the scalar path of :func:`repro.aggregate.median.median_of`
    operation for operation: pairs sorted by ``(value, weight)``
    (``lexsort`` with the weight as the secondary key), sequential prefix
    sums (``np.cumsum``) in the same forward/backward order, the same
    ``>= total/2`` crossing tests — hence bitwise-identical selections
    for arbitrary float weights, not just exactly-representable ones.
    """
    m, n = matrix.shape
    weight_rows = np.broadcast_to(weight_vec[:, None], (m, n))
    order = np.lexsort((weight_rows, matrix), axis=0)
    values = np.take_along_axis(matrix, order, axis=0)
    sorted_weights = np.take_along_axis(weight_rows, order, axis=0)
    forward = np.cumsum(sorted_weights, axis=0)
    half = forward[-1] / 2
    backward = np.cumsum(sorted_weights[::-1], axis=0)
    columns = np.arange(n)
    low = values[np.argmax(forward >= half, axis=0), columns]
    high = values[m - 1 - np.argmax(backward >= half, axis=0), columns]
    return low, high


def _order_slots(scores: npt.NDArray[np.float64]) -> npt.NDArray[np.intp]:
    """Slots sorted by score; ties broken by slot = canonical item order.

    A stable argsort over codec-slot order *is* the dict path's
    ``sorted(scores, key=(score, type name, repr))``, because slot order
    is exactly the canonical ``(type name, repr)`` order.
    """
    return np.argsort(scores, kind="stable")


def _top_k_slots(scores: npt.NDArray[np.float64], k: int) -> npt.NDArray[np.intp]:
    """The k slots a canonical full sort would list first, via partition.

    ``argpartition`` alone picks arbitrary slots among scores equal to the
    k-th smallest; the boundary ties are resolved explicitly in ascending
    slot order to match the canonical sort bit for bit.
    """
    n = scores.shape[0]
    if not 0 < k <= n:
        raise AggregationError(f"k={k} out of range for domain of size {n}")
    if k == n:
        return _order_slots(scores)
    pivot = np.partition(scores, k - 1)[k - 1]
    chosen = np.flatnonzero(scores < pivot)
    boundary = np.flatnonzero(scores == pivot)[: k - chosen.shape[0]]
    chosen = np.concatenate((chosen, boundary))
    return chosen[np.lexsort((chosen, scores[chosen]))]


# ----------------------------------------------------------------------
# Profile-level wrappers (drop-in equivalents of aggregate.median)
# ----------------------------------------------------------------------


def _encoded_profile(
    rankings: Profile,
) -> tuple[DomainCodec, npt.NDArray[np.float64]]:
    """Validate the profile and encode it once as an (m, n) matrix.

    A :class:`~repro.core.arena.ProfileArena` is already encoded — its
    cached float64 decode is the identical matrix (``half · 0.5`` is
    exact), so arena-backed aggregation is bit-for-bit the object path.
    Only owner-side arenas carry the codec needed to name items; a
    handle-attached arena is rejected with a pointed error.
    """
    if isinstance(rankings, ProfileArena):
        codec = rankings.codec
        if codec is None:
            raise AggregationError(
                "handle-attached arena carries no codec; aggregate in the "
                "owning process (or rebuild the arena from the rankings)"
            )
        return codec, rankings.positions
    domain = validate_profile(rankings)
    codec = DomainCodec.for_domain(domain)
    return codec, position_matrix(rankings, codec)


def _scores_dict(
    codec: DomainCodec, scores: npt.NDArray[np.float64]
) -> dict[Item, float]:
    """Score vector -> dict with plain Python floats, codec item order."""
    return dict(zip(codec.items, scores.tolist()))


def median_scores_batch(
    rankings: Profile,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> dict[Item, float]:
    """Array-path :func:`~repro.aggregate.median.median_scores`.

    Same signature, same result (bit for bit, including the weighted
    generalization), computed from one position matrix instead of n
    per-item gathers.
    """
    codec, matrix = _encoded_profile(rankings)
    return _scores_dict(codec, median_scores_array(matrix, tie=tie, weights=weights))


def median_top_k_batch(
    rankings: Profile,
    k: int,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Array-path :func:`~repro.aggregate.median.median_top_k` (Theorem 9)."""
    codec, matrix = _encoded_profile(rankings)
    scores = median_scores_array(matrix, tie=tie, weights=weights)
    slots = _top_k_slots(scores, k)
    items = codec.items
    return PartialRanking.top_k([items[slot] for slot in slots], codec.domain)


def median_full_ranking_batch(
    rankings: Profile,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Array-path :func:`~repro.aggregate.median.median_full_ranking` (Thm 11)."""
    codec, matrix = _encoded_profile(rankings)
    scores = median_scores_array(matrix, tie=tie, weights=weights)
    items = codec.items
    return PartialRanking.from_sequence(
        [items[slot] for slot in _order_slots(scores)]
    )


def median_partial_ranking_batch(
    rankings: Profile,
    tie: MedianTie = "mid",
    weights: Sequence[float] | None = None,
) -> PartialRanking:
    """Array-path :func:`~repro.aggregate.median.median_partial_ranking`.

    The Figure 1 dynamic program itself is shared with the dict path
    (:func:`repro.aggregate.dp.optimal_bucketing` over the same sorted
    score list), so Theorem 10's ``f†`` is identical by construction.
    """
    codec, matrix = _encoded_profile(rankings)
    scores = median_scores_array(matrix, tie=tie, weights=weights)
    return _partial_ranking_from_scores(codec, scores)


def _partial_ranking_from_scores(
    codec: DomainCodec, scores: npt.NDArray[np.float64]
) -> PartialRanking:
    slots = _order_slots(scores)
    result = optimal_bucketing(scores[slots].tolist())
    items = codec.items
    ordered = [items[slot] for slot in slots]
    buckets = [
        ordered[start:stop]
        for start, stop in zip(result.boundaries, result.boundaries[1:])
    ]
    return PartialRanking(buckets)


def median_fixed_type_batch(
    rankings: Profile,
    bucket_type: Sequence[int],
    tie: MedianTie = "mid",
) -> PartialRanking:
    """Array-path :func:`~repro.aggregate.median.median_fixed_type` (Cor 30)."""
    codec, matrix = _encoded_profile(rankings)
    scores = median_scores_array(matrix, tie=tie)
    if sum(bucket_type) != len(codec):
        raise AggregationError(
            f"type {tuple(bucket_type)} does not partition a domain of size {len(codec)}"
        )
    if any(size <= 0 for size in bucket_type):
        raise AggregationError("bucket sizes must be positive")
    items = codec.items
    ordered = [items[slot] for slot in _order_slots(scores)]
    buckets: list[list[Item]] = []
    start = 0
    for size in bucket_type:
        buckets.append(ordered[start : start + size])
        start += size
    return PartialRanking(buckets)
