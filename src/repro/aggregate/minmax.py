"""Registry-aware aggregation with median and minmax objectives.

The paper aggregates by the *median* rule: minimize the total distance
``sum_i d(candidate, sigma_i)``. The egalitarian alternative (multiclass
minmax aggregation, arXiv 1701.08305) minimizes the *worst* voter's
distance ``max_i d(candidate, sigma_i)`` instead — no input ranking is
left arbitrarily far from the consensus. :func:`aggregate` solves either
objective under **any metric registered in the plugin registry**
(built-ins and plugins alike), searching full rankings of the common
domain:

* domains up to ``max_exact`` items are solved *exactly* by exhaustive
  enumeration in canonical-lexicographic order (deterministic
  tie-breaking: the first optimum wins), certifying ``exact=True``;
* larger domains fall back to a Borda-seeded adjacent-swap local search
  — the same certification-flag convention as
  :class:`~repro.aggregate.decompose.DecomposedResult`: the result
  carries ``exact=False`` and ``require_exact=True`` raises instead.

Minmax local search ranks candidates by the tuple ``(max, total)`` — the
total objective breaks plateaus the flat ``max`` objective cannot see,
while never overriding a strict minmax improvement. See docs/THEORY.md,
"Minmax (egalitarian) aggregation", for why minmax and median optima
genuinely differ and how the 2-approximation bound carries over.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import permutations

import repro.metrics.batch  # noqa: F401 — registers the built-in metric plugins
from repro import obs
from repro.aggregate.objective import validate_profile
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.registry import get_metric

__all__ = ["AggregateResult", "aggregate", "OBJECTIVES", "DEFAULT_MAX_EXACT"]

#: Supported objective kinds.
OBJECTIVES = ("median", "minmax")

#: Exhaustive-search ceiling: 7! = 5040 candidate rankings per call keeps
#: exact aggregation interactive even with O(n) scalar metrics.
DEFAULT_MAX_EXACT = 7

_MetricFn = Callable[[PartialRanking, PartialRanking], float]


@dataclass(frozen=True, slots=True)
class AggregateResult:
    """An aggregated ranking plus its certification evidence."""

    #: The aggregated full ranking (optimal over full rankings iff
    #: ``exact``).
    ranking: PartialRanking
    #: The achieved objective value (total for median, max for minmax).
    objective: float
    #: Which objective was optimized: ``"median"`` or ``"minmax"``.
    kind: str
    #: Canonical metric name (or the callable's ``__name__``).
    metric: str
    #: True iff the search was exhaustive, certifying ``ranking`` as
    #: optimal among full rankings of the domain.
    exact: bool


def _canonical_key(item: Item) -> tuple[str, str]:
    """The codec's canonical item order: by type name, then repr."""
    return (type(item).__name__, repr(item))


def _scores(
    candidate: PartialRanking, rankings: Sequence[PartialRanking], metric_fn: _MetricFn
) -> tuple[float, float]:
    """(max, total) distances of a candidate to the profile."""
    total = 0.0
    worst = 0.0
    for sigma in rankings:
        value = metric_fn(candidate, sigma)
        total += value
        if value > worst:
            worst = value
    return worst, total


def _objective_tuple(kind: str, worst: float, total: float) -> tuple[float, float]:
    """The lexicographic comparison key: primary objective, then total."""
    return (worst, total) if kind == "minmax" else (total, worst)


def _borda_seed(
    items: list[Item], rankings: Sequence[PartialRanking]
) -> list[Item]:
    """Ascending sum of positions across voters, canonical tie-break."""
    position_totals = {
        item: sum(sigma[item] for sigma in rankings)  # repro: noqa[RP009] — one-shot O(mn) seed, not a per-pair kernel
        for item in items
    }
    return sorted(items, key=lambda item: (position_totals[item], _canonical_key(item)))


def _full(order: Sequence[Item]) -> PartialRanking:
    return PartialRanking([item] for item in order)


def aggregate(
    rankings: Sequence[PartialRanking],
    objective: str = "median",
    metric: str | _MetricFn = "f_prof",
    *,
    max_exact: int = DEFAULT_MAX_EXACT,
    require_exact: bool = False,
) -> AggregateResult:
    """Aggregate a profile under a named objective and registry metric.

    ``objective`` is ``"median"`` (minimize the total distance) or
    ``"minmax"`` (minimize the worst voter's distance). ``metric`` is any
    spelling registered in the metric plugin registry — unknown names
    raise the registry's shared :class:`~repro.errors.UnknownMetricError`
    — or a custom scalar callable. ``K^(p)`` runs at its default
    ``p = 1/2``.

    Domains of at most ``max_exact`` items are solved exhaustively
    (``exact=True``); larger domains use a Borda-seeded adjacent-swap
    local search unless ``require_exact`` is set, in which case an
    :class:`AggregationError` is raised — the
    :mod:`~repro.aggregate.decompose` certification convention.
    """
    if objective not in OBJECTIVES:
        raise AggregationError(
            f"unknown objective {objective!r}; expected one of {list(OBJECTIVES)}"
        )
    if max_exact < 1:
        raise AggregationError(f"max_exact={max_exact} must be at least 1")
    domain = validate_profile(rankings)
    if isinstance(metric, str):
        plugin = get_metric(metric)
        metric_fn: _MetricFn = plugin.scalar
        metric_name = plugin.name
    else:
        metric_fn = metric
        metric_name = getattr(metric, "__name__", "custom")
    items = sorted(domain, key=_canonical_key)
    n = len(items)

    with obs.trace(
        "aggregate.minmax.search", n=n, m=len(rankings), kind=objective
    ):
        if n <= max_exact:
            order, worst, total, candidates = _search_exhaustive(
                items, rankings, metric_fn, objective
            )
            exact = True
        elif require_exact:
            raise AggregationError(
                f"exact {objective} aggregation refused: {n} items exceed "
                f"the exhaustive-search cap of {max_exact}; drop "
                "require_exact for the Borda-seeded local search"
            )
        else:
            order, worst, total, candidates = _search_local(
                items, rankings, metric_fn, objective
            )
            exact = False
        obs.add("aggregate.minmax.candidates", candidates)

    value = worst if objective == "minmax" else total
    return AggregateResult(
        ranking=_full(order),
        objective=value,
        kind=objective,
        metric=metric_name,
        exact=exact,
    )


def _search_exhaustive(
    items: list[Item],
    rankings: Sequence[PartialRanking],
    metric_fn: _MetricFn,
    kind: str,
) -> tuple[tuple[Item, ...], float, float, int]:
    """The optimal full ranking by enumeration; deterministic tie-break.

    Permutations enumerate in lexicographic order of the canonical item
    order and only *strict* improvements replace the incumbent, so ties
    resolve to the canonically-first optimum on every run.
    """
    best_order: tuple[Item, ...] | None = None
    best_key: tuple[float, float] | None = None
    best_scores = (0.0, 0.0)
    candidates = 0
    for perm in permutations(items):
        worst, total = _scores(_full(perm), rankings, metric_fn)
        candidates += 1
        key = _objective_tuple(kind, worst, total)
        if best_key is None or key < best_key:
            best_order, best_key, best_scores = perm, key, (worst, total)
    assert best_order is not None  # permutations of a validated profile
    return best_order, best_scores[0], best_scores[1], candidates


def _search_local(
    items: list[Item],
    rankings: Sequence[PartialRanking],
    metric_fn: _MetricFn,
    kind: str,
) -> tuple[tuple[Item, ...], float, float, int]:
    """Borda seed plus adjacent-swap descent on the objective tuple.

    Each pass scans left to right and keeps a swap only when the full
    objective tuple strictly improves (the local-Kemenization move of
    Dwork et al., driven by the global objective instead of pair costs).
    Deterministic: seed tie-breaks canonically, passes cap at ``n``.
    """
    order = list(_borda_seed(items, rankings))
    worst, total = _scores(_full(order), rankings, metric_fn)
    best_key = _objective_tuple(kind, worst, total)
    candidates = 1
    for _ in range(len(order)):
        changed = False
        for i in range(len(order) - 1):
            order[i], order[i + 1] = order[i + 1], order[i]
            swapped_worst, swapped_total = _scores(_full(order), rankings, metric_fn)
            candidates += 1
            key = _objective_tuple(kind, swapped_worst, swapped_total)
            if key < best_key:
                best_key = key
                worst, total = swapped_worst, swapped_total
                changed = True
            else:
                order[i], order[i + 1] = order[i + 1], order[i]
        if not changed:
            break
    return tuple(order), worst, total, candidates
