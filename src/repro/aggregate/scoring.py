"""Pluggable penalty vectors for the pairwise aggregation objective.

The paper's ``K^(p)`` charges each input 1 for a strict disagreement on a
pair and ``p`` for tying it. Generalizations in the weighted-footrule /
vote-aggregation literature (1207.2541, 1203.6371, 1701.08305) replace
the scalar with a penalty *vector*: an arbitrary nonnegative charge for
each way an input can relate a pair to the output's choice. A
:class:`ScoringScheme` names those charges for the case "the output
places ``x`` strictly before ``y``":

* ``disagree`` — per input ranking ``y`` strictly ahead of ``x``;
* ``agree`` — per input ranking ``x`` strictly ahead of ``y`` (0 in every
  Kendall-style objective, but nonzero schemes express "reward-free"
  variants where agreement still carries cost);
* ``tie`` — per input tying the pair (the paper's ``p``).

``ScoringScheme.kendall(p)`` is the default everywhere; every solver in
:mod:`repro.aggregate.kemeny` / :mod:`repro.aggregate.decompose` accepts
``scheme=`` and remains byte-for-byte compatible with the historical
scalar-``p`` path when the scheme *is* a Kendall scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AggregationError

__all__ = [  # repro: noqa[RP011] — pure parameter container; the solvers it feeds carry the spans
    "ScoringScheme",
    "resolve_scheme",
]


@dataclass(frozen=True, slots=True)
class ScoringScheme:
    """Per-input pair penalties for placing ``x`` strictly before ``y``."""

    agree: float = 0.0
    disagree: float = 1.0
    tie: float = 0.5

    def __post_init__(self) -> None:
        for name in ("agree", "disagree", "tie"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise AggregationError(
                    f"scoring-scheme penalty {name}={value} must be finite "
                    "and nonnegative"
                )

    @classmethod
    def kendall(cls, p: float = 0.5) -> "ScoringScheme":
        """The paper's ``K^(p)`` as a penalty vector: ``(0, 1, p)``."""
        if not 0.0 <= p <= 1.0:
            raise AggregationError(f"penalty parameter p={p} outside [0, 1]")
        return cls(agree=0.0, disagree=1.0, tie=p)

    @property
    def is_kendall(self) -> bool:
        """Whether the scheme reduces to a scalar-``p`` Kendall objective."""
        return self.agree == 0.0 and self.disagree == 1.0


def resolve_scheme(p: float, scheme: ScoringScheme | None) -> ScoringScheme:
    """The scheme a solver should use: explicit ``scheme`` wins over ``p``.

    Passing both a non-default ``p`` and an explicit scheme is ambiguous
    and rejected — callers migrate by dropping the scalar.
    """
    if scheme is None:
        return ScoringScheme.kendall(p)
    if p != 0.5:
        raise AggregationError(
            f"pass either the scalar p (got p={p}) or an explicit "
            "ScoringScheme, not both"
        )
    return scheme
