"""Aggregation objectives: total distance of a candidate to the inputs.

The aggregation problem for a metric ``d`` asks for the ranking minimizing
``sum_i d(candidate, sigma_i)``. This module evaluates that objective for
any of the paper's metrics, plus the raw ``L1``-to-score-function objective
used by Lemma 8 and Theorems 9–11.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall

__all__ = ["METRICS", "total_distance", "total_l1_to_function", "validate_profile"]  # repro: noqa[RP011] — objective evaluation sums over instrumented metrics

#: Name -> metric function registry used across experiments and baselines.
METRICS: dict[str, Callable[[PartialRanking, PartialRanking], float]] = {
    "k_prof": kendall,
    "f_prof": footrule,
    "k_haus": lambda s, t: float(kendall_hausdorff_counts(s, t)),
    "f_haus": footrule_hausdorff,
}


def validate_profile(rankings: Sequence[PartialRanking]) -> frozenset[Item]:
    """Validate an aggregation input profile and return its common domain.

    Raises :class:`AggregationError` on an empty profile or mismatched
    domains.
    """
    if not rankings:
        raise AggregationError("aggregation requires at least one input ranking")
    domain = rankings[0].domain
    for index, ranking in enumerate(rankings[1:], start=1):
        if ranking.domain != domain:
            raise AggregationError(
                f"input ranking {index} has a different domain than input 0"
            )
    return domain


def total_distance(
    candidate: PartialRanking,
    rankings: Sequence[PartialRanking],
    metric: str | Callable[[PartialRanking, PartialRanking], float] = "f_prof",
) -> float:
    """``sum_i d(candidate, sigma_i)`` for a named or custom metric."""
    domain = validate_profile(rankings)
    if candidate.domain != domain:
        raise AggregationError("candidate domain differs from the input profile's domain")
    if isinstance(metric, str):
        try:
            metric_fn = METRICS[metric]
        except KeyError:
            raise AggregationError(
                f"unknown metric {metric!r}; expected one of {sorted(METRICS)}"
            ) from None
    else:
        metric_fn = metric
    return sum(metric_fn(candidate, sigma) for sigma in rankings)


def total_l1_to_function(
    f: Mapping[Item, float],
    rankings: Sequence[PartialRanking],
) -> float:
    """``sum_i L1(f, sigma_i)`` for an arbitrary score function ``f``.

    This is the objective of Lemma 8: the median function minimizes it over
    all functions ``g: D -> R``.
    """
    domain = validate_profile(rankings)
    if set(f) != set(domain):
        raise AggregationError("function domain differs from the input profile's domain")
    return sum(
        # the Lemma 8 objective *definition*, kept as the readable reference
        sum(abs(f[item] - sigma[item]) for item in domain)  # repro: noqa[RP009]
        for sigma in rankings
    )
