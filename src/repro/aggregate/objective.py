"""Aggregation objectives: distance of a candidate to the input profile.

The *median* aggregation problem for a metric ``d`` asks for the ranking
minimizing ``sum_i d(candidate, sigma_i)``; the *minmax* (egalitarian)
problem minimizes ``max_i d(candidate, sigma_i)`` instead (arXiv
1701.08305 — no voter is left arbitrarily far from the consensus). This
module evaluates both objectives for any metric registered in the plugin
registry (:mod:`repro.metrics.registry`), plus the raw
``L1``-to-score-function objective used by Lemma 8 and Theorems 9–11.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

import repro.metrics.batch  # noqa: F401 — registers the built-in metric plugins
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.footrule import footrule
from repro.metrics.hausdorff import footrule_hausdorff, kendall_hausdorff_counts
from repro.metrics.kendall import kendall
from repro.metrics.registry import get_metric

__all__ = [  # repro: noqa[RP011] — objective evaluation sums over instrumented metrics
    "METRICS",
    "total_distance",
    "max_distance",
    "total_l1_to_function",
    "validate_profile",
    "resolve_metric",
]

#: Name -> metric function registry used across experiments and baselines.
#: Retained for back-compat; name resolution goes through the metric
#: plugin registry, so registered plugins (``weighted_footrule``,
#: ``top_difference``, third-party) resolve here too.
METRICS: dict[str, Callable[[PartialRanking, PartialRanking], float]] = {
    "k_prof": kendall,
    "f_prof": footrule,
    "k_haus": lambda s, t: float(kendall_hausdorff_counts(s, t)),
    "f_haus": footrule_hausdorff,
}


def resolve_metric(  # repro: noqa[RP002] — name resolution only; consumes no rankings
    metric: str | Callable[[PartialRanking, PartialRanking], float],
) -> Callable[[PartialRanking, PartialRanking], float]:
    """A scalar metric callable from a registry name or a callable.

    Unknown names raise the registry's shared
    :class:`~repro.errors.UnknownMetricError` (an
    :class:`AggregationError`) listing every registered spelling.
    """
    if not isinstance(metric, str):
        return metric
    return get_metric(metric).scalar


def validate_profile(rankings: Sequence[PartialRanking]) -> frozenset[Item]:
    """Validate an aggregation input profile and return its common domain.

    Raises :class:`AggregationError` on an empty profile or mismatched
    domains.
    """
    if not rankings:
        raise AggregationError("aggregation requires at least one input ranking")
    domain = rankings[0].domain
    for index, ranking in enumerate(rankings[1:], start=1):
        if ranking.domain != domain:
            raise AggregationError(
                f"input ranking {index} has a different domain than input 0"
            )
    return domain


def total_distance(
    candidate: PartialRanking,
    rankings: Sequence[PartialRanking],
    metric: str | Callable[[PartialRanking, PartialRanking], float] = "f_prof",
) -> float:
    """``sum_i d(candidate, sigma_i)`` for a named or custom metric."""
    domain = validate_profile(rankings)
    if candidate.domain != domain:
        raise AggregationError("candidate domain differs from the input profile's domain")
    metric_fn = resolve_metric(metric)
    return sum(metric_fn(candidate, sigma) for sigma in rankings)


def max_distance(
    candidate: PartialRanking,
    rankings: Sequence[PartialRanking],
    metric: str | Callable[[PartialRanking, PartialRanking], float] = "f_prof",
) -> float:
    """``max_i d(candidate, sigma_i)`` — the egalitarian (minmax) objective.

    The minmax counterpart of :func:`total_distance` (arXiv 1701.08305):
    the worst-off voter's distance to the candidate. Same domain
    validation and metric resolution as the median objective.
    """
    domain = validate_profile(rankings)
    if candidate.domain != domain:
        raise AggregationError("candidate domain differs from the input profile's domain")
    metric_fn = resolve_metric(metric)
    return max(metric_fn(candidate, sigma) for sigma in rankings)


def total_l1_to_function(
    f: Mapping[Item, float],
    rankings: Sequence[PartialRanking],
) -> float:
    """``sum_i L1(f, sigma_i)`` for an arbitrary score function ``f``.

    This is the objective of Lemma 8: the median function minimizes it over
    all functions ``g: D -> R``.
    """
    domain = validate_profile(rankings)
    if set(f) != set(domain):
        raise AggregationError("function domain differs from the input profile's domain")
    return sum(
        # the Lemma 8 objective *definition*, kept as the readable reference
        sum(abs(f[item] - sigma[item]) for item in domain)  # repro: noqa[RP009]
        for sigma in rankings
    )
