"""Baseline aggregation heuristics the paper positions median against.

The paper's introduction contrasts median rank aggregation with the
heuristics of Dwork–Kumar–Naor–Sivakumar (WWW 2001) and with naive
averaging. To let the experiments make the same comparison we implement:

* :func:`borda` — mean-rank (Borda) aggregation;
* :func:`best_input` — return the input ranking minimizing the objective
  (always a factor-2 approximation for metrics, as the paper notes in
  footnote 4);
* :func:`pick_a_perm` — a uniformly random input, refined to a full
  ranking (the classical randomized 2-approximation);
* :func:`markov_chain_mc4` — the MC4 Markov-chain heuristic of [8],
  generalized to bucket orders by treating "prefers" as "strictly ahead in
  a majority of lists";
* :func:`locally_kemenize` — the local Kemenization post-pass of [8]:
  adjacent transpositions are applied while a majority of inputs prefers
  the swapped order.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

import numpy as np

from repro.aggregate.objective import total_distance, validate_profile
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.core.refine import common_full_ranking, star
from repro.errors import AggregationError
from repro.metrics.batch import position_matrix

__all__ = [  # repro: noqa[RP011] — comparison baselines timed end to end by experiment spans
    "borda",
    "best_input",
    "pick_a_perm",
    "markov_chain_mc4",
    "locally_kemenize",
]


def _canonical_order(scores: dict[Item, float]) -> list[Item]:
    return sorted(scores, key=lambda item: (scores[item], type(item).__name__, repr(item)))


def borda(rankings: Sequence[PartialRanking]) -> PartialRanking:
    """Mean-rank (Borda) aggregation, output as a full ranking.

    Items are ordered by the average of their positions across the inputs.
    Simple and popular, but unlike the median it admits no constant-factor
    guarantee and no instance-optimal sequential implementation.
    """
    domain = validate_profile(rankings)
    codec = DomainCodec.for_domain(domain)
    # positions are half-integers, so the columnwise sum is exact in any
    # summation order and matches the former per-item Python sum bitwise
    means = position_matrix(rankings, codec).sum(axis=0) / len(rankings)
    items = codec.items
    order = np.argsort(means, kind="stable")
    return PartialRanking.from_sequence([items[slot] for slot in order])


def best_input(
    rankings: Sequence[PartialRanking],
    metric: str | Callable[[PartialRanking, PartialRanking], float] = "f_prof",
) -> PartialRanking:
    """Return the input ranking with the smallest total distance to the rest.

    For any metric this is a 2-approximation of the optimal aggregation
    (triangle inequality), which is the paper's reason to call algorithms
    that merely match factor 2 on full rankings "trivial".
    """
    validate_profile(rankings)
    return min(rankings, key=lambda sigma: total_distance(sigma, rankings, metric))


def pick_a_perm(
    rankings: Sequence[PartialRanking],
    rng: random.Random | None = None,
) -> PartialRanking:
    """Return a uniformly random input, refined into a full ranking.

    The classical randomized 2-approximation for Kendall aggregation on
    permutations; ties in the chosen partial ranking are broken
    canonically so the output is always a full ranking.
    """
    validate_profile(rankings)
    rng = rng or random.Random()
    chosen = rankings[rng.randrange(len(rankings))]
    return star(common_full_ranking(chosen), chosen)


def _majority_prefers(
    rankings: Sequence[PartialRanking], winner: Item, loser: Item
) -> bool:
    """True if a strict majority of inputs ranks ``winner`` strictly ahead."""
    ahead = sum(1 for sigma in rankings if sigma.ahead(winner, loser))
    return ahead > len(rankings) / 2


def markov_chain_mc4(
    rankings: Sequence[PartialRanking],
    damping: float = 0.05,
    max_iterations: int = 10_000,
    tolerance: float = 1e-12,
) -> PartialRanking:
    """The MC4 Markov-chain aggregation heuristic of Dwork et al. [8].

    From state ``x``, pick a uniformly random item ``y``; transition to
    ``y`` if a majority of the inputs ranks ``y`` strictly ahead of ``x``,
    else stay. Items are output by descending stationary probability. A
    small uniform ``damping`` term guarantees ergodicity (as in practice);
    the stationary distribution is found by power iteration.
    """
    domain = validate_profile(rankings)
    if not 0.0 <= damping < 1.0:
        raise AggregationError(f"damping={damping} must lie in [0, 1)")
    items = sorted(domain, key=lambda item: (type(item).__name__, repr(item)))
    n = len(items)
    if n == 1:
        return PartialRanking.from_sequence(items)

    transition = np.zeros((n, n))
    for i, x in enumerate(items):
        for j, y in enumerate(items):
            if i != j and _majority_prefers(rankings, y, x):
                transition[i, j] = 1.0 / n
        transition[i, i] = 1.0 - transition[i].sum()
    transition = (1.0 - damping) * transition + damping / n

    distribution = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = distribution @ transition
        if np.abs(updated - distribution).max() < tolerance:
            distribution = updated
            break
        distribution = updated

    scores = {item: -float(prob) for item, prob in zip(items, distribution)}
    return PartialRanking.from_sequence(_canonical_order(scores))


def locally_kemenize(
    candidate: PartialRanking,
    rankings: Sequence[PartialRanking],
    max_passes: int | None = None,
) -> PartialRanking:
    """Local Kemenization [8]: bubble toward pairwise-majority agreement.

    Repeatedly swaps adjacent items of the full ranking ``candidate``
    whenever a strict majority of the inputs prefers the swapped order;
    stops at a local optimum (no adjacent swap improves), which never
    increases the Kendall objective. ``max_passes`` defaults to n.
    """
    validate_profile(rankings)
    if not candidate.is_full:
        raise AggregationError("locally_kemenize requires a full ranking candidate")
    order = candidate.items_in_order()
    passes = max_passes if max_passes is not None else len(order)
    for _ in range(passes):
        changed = False
        for i in range(len(order) - 1):
            ahead, behind = order[i], order[i + 1]
            if _majority_prefers(rankings, behind, ahead):
                order[i], order[i + 1] = behind, ahead
                changed = True
        if not changed:
            break
    return PartialRanking.from_sequence(order)
