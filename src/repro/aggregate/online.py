"""Incremental (online) median aggregation on numpy column buffers.

In the paper's database scenario the input rankings arrive one per user
criterion; an interactive search page adds and removes criteria without
recomputing everything. :class:`OnlineMedianAggregator` maintains a
growable ``(capacity, n)`` float64 buffer of position rows (one per added
ranking, in codec slot order), so ``add``/``discard`` cost O(n) amortized
— one :meth:`~repro.core.partial_ranking.PartialRanking.dense_arrays`
encode plus one row write — instead of the former n ``bisect.insort``
calls into per-item Python lists.

Repeated ``scores()`` / ``top_k()`` / ``full_ranking()`` calls reuse
partially-sorted state: the column-sorted copy of the active rows is
cached and *merged* with each update (one vectorized insertion/removal
per column via ``take_along_axis``) rather than re-sorted from scratch,
so a burst of queries between updates pays the columnwise sort once.

Beyond anonymous ``add``/``discard`` (removal by value), rankings can be
keyed by *voter*: :meth:`~OnlineMedianAggregator.update` inserts or
**replaces** the ranking a voter contributed (one discard plus one add
when the voter was already present), and
:meth:`~OnlineMedianAggregator.forget` drops a voter entirely. This is
the churn shape a live serving layer sees — users re-rank, they do not
append — and :mod:`repro.serve` drives the shard aggregators exclusively
through it.

The offline and online paths are interchangeable by construction: scores
come from the same :func:`repro.aggregate.batch.median_scores_array`
kernel the batch path uses, and the tests assert the online snapshots
equal the batch results (bit for bit) after every update. Instances
pickle to a compact ``(items, tie, active rows, voter rows)`` tuple and
rebuild on the receiving side of a process boundary.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.aggregate.batch import (
    _order_slots,
    _partial_ranking_from_scores,
    _top_k_slots,
    median_scores_array,
)
from repro.aggregate.median import MedianTie, _check_tie
from repro.core.arena import ProfileArena
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = ["OnlineMedianAggregator"]

_INITIAL_CAPACITY = 4


def _merge_sorted_row(
    sorted_rows: npt.NDArray[np.float64], row: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Insert ``row`` columnwise into a column-sorted matrix. O(m·n)."""
    m, n = sorted_rows.shape
    if m == 0:
        return row[None, :].astype(np.float64, copy=True)
    insert_at = (sorted_rows <= row).sum(axis=0, dtype=np.int64)
    rows = np.arange(m + 1)[:, None]
    source = np.minimum(rows - (rows > insert_at), m - 1)
    merged = np.take_along_axis(sorted_rows, source, axis=0)
    return np.where(rows == insert_at, row[None, :], merged)


def _remove_sorted_row(
    sorted_rows: npt.NDArray[np.float64], row: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Remove one occurrence of ``row``'s values columnwise. O(m·n).

    The caller guarantees every column contains the value being removed.
    """
    m, _ = sorted_rows.shape
    remove_at = np.argmax(sorted_rows == row, axis=0)
    rows = np.arange(m - 1)[:, None]
    source = rows + (rows >= remove_at)
    return np.take_along_axis(sorted_rows, source, axis=0)


class OnlineMedianAggregator:
    """Median rank aggregation with incremental inserts and removals.

    Parameters
    ----------
    domain:
        The fixed item domain every input ranking must cover.
    tie:
        Median tie rule for even input counts (see
        :func:`repro.aggregate.median.median_of`).
    """

    def __init__(self, domain: Iterable[Item], tie: MedianTie = "mid") -> None:
        items = frozenset(domain)
        if not items:
            raise AggregationError("the aggregation domain must be non-empty")
        _check_tie(tie)
        self._tie: MedianTie = tie
        self._codec = DomainCodec.for_domain(items)
        self._rows: npt.NDArray[np.float64] = np.empty(
            (_INITIAL_CAPACITY, len(items)), dtype=np.float64
        )
        self._count = 0
        self._sorted: npt.NDArray[np.float64] | None = None
        # voter -> the (read-only) position row that voter currently
        # contributes; update()/forget() keep this in sync with _rows
        self._voters: dict[Hashable, npt.NDArray[np.float64]] = {}

    # ------------------------------------------------------------------

    @property
    def domain(self) -> frozenset[Item]:
        return self._codec.domain

    def __len__(self) -> int:
        """Number of rankings currently aggregated."""
        return self._count

    def _encode(self, ranking: PartialRanking) -> npt.NDArray[np.float64]:
        if ranking.domain != self._codec.domain:
            raise AggregationError("ranking domain differs from the aggregator's domain")
        return ranking.dense_arrays(self._codec)[1]

    def _append_positions(self, positions: npt.NDArray[np.float64]) -> None:
        """Append one position row (no validation; callers encode first)."""
        if self._count == self._rows.shape[0]:
            grown = np.empty(
                (2 * self._rows.shape[0], self._rows.shape[1]), dtype=np.float64
            )
            grown[: self._count] = self._rows[: self._count]
            self._rows = grown
        self._rows[self._count] = positions
        self._count += 1
        obs.add("aggregate.online.adds")
        if self._sorted is not None:
            self._sorted = _merge_sorted_row(self._sorted, positions)

    def add(self, ranking: PartialRanking) -> None:
        """Ingest one input ranking. O(n) amortized."""
        positions = self._encode(ranking)
        self._append_positions(positions)

    def add_arena(self, arena: ProfileArena) -> None:
        """Bulk-ingest every row of an arena-backed profile. O(m·n).

        Equivalent to adding the arena's rankings one by one — the same
        rows land in the same order (the arena's float64 decode is exact),
        so every subsequent query returns bit-identical results; only the
        per-row sorted-cache merges are skipped in favor of one columnwise
        re-sort at the next query. The arena must be owner-side (carry a
        codec) over exactly this aggregator's domain.
        """
        codec = arena.codec
        if codec is None:
            raise AggregationError(
                "handle-attached arena carries no codec; bulk-add in the owning process"
            )
        if codec.domain != self._codec.domain:
            raise AggregationError("arena domain differs from the aggregator's domain")
        positions = arena.positions
        m = positions.shape[0]
        needed = self._count + m
        if needed > self._rows.shape[0]:
            capacity = self._rows.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._rows.shape[1]), dtype=np.float64)
            grown[: self._count] = self._rows[: self._count]
            self._rows = grown
        self._rows[self._count : needed] = positions
        self._count = needed
        obs.add("aggregate.online.adds", m)
        # one columnwise sort at the next query beats m row merges
        self._sorted = None

    def _discard_positions(self, positions: npt.NDArray[np.float64]) -> None:
        """Remove one row matching ``positions`` (validates before mutating)."""
        if self._count == 0:
            raise AggregationError("no rankings to discard")
        # validate fully before mutating, so a failed discard is a no-op
        active = self._rows[: self._count]
        matches = active == positions[None, :]
        present = matches.any(axis=0)
        if not bool(present.all()):
            slot = int(np.flatnonzero(~present)[0])
            item = self._codec.items[slot]
            raise AggregationError(
                "ranking was not previously added (position mismatch at "
                f"item {item!r})"
            )
        row_of_match = matches.argmax(axis=0)
        columns = np.arange(active.shape[1])
        active[row_of_match, columns] = active[self._count - 1].copy()
        self._count -= 1
        obs.add("aggregate.online.discards")
        if self._sorted is not None:
            self._sorted = _remove_sorted_row(self._sorted, positions)

    def discard(self, ranking: PartialRanking) -> None:
        """Remove one previously added ranking (a criterion toggled off).

        Raises if the ranking's positions were never added — removal is by
        value, so adding a ranking twice requires discarding it twice.
        """
        positions = self._encode(ranking)
        self._discard_positions(positions)

    # ------------------------------------------------------------------
    # Voter-keyed churn (replace semantics)
    # ------------------------------------------------------------------

    @property
    def voters(self) -> frozenset[Hashable]:
        """The voters currently contributing a keyed ranking."""
        return frozenset(self._voters)

    def update(self, voter: Hashable, ranking: PartialRanking) -> bool:
        """Insert or **replace** the ranking keyed by ``voter``. O(m·n).

        Returns ``True`` when the voter was already present (their previous
        ranking is discarded first), ``False`` on first contribution. The
        multiset of aggregated rows after ``update`` equals the one reached
        by ``discard(old); add(new)``, so every query stays bit-for-bit
        equal to the offline batch path. Validation (domain check in the
        encode, presence check for the replaced row) completes before the
        first mutation, so a failed update is a no-op.
        """
        positions = self._encode(ranking)
        previous = self._voters.get(voter)
        if previous is not None:
            self._discard_positions(previous)
        self._append_positions(positions)
        self._voters[voter] = positions
        obs.add("aggregate.online.updates")
        return previous is not None

    def forget(self, voter: Hashable) -> None:
        """Remove the ranking keyed by ``voter`` (raises if unknown)."""
        previous = self._voters.get(voter)
        if previous is None:
            raise AggregationError(f"voter {voter!r} has no ranking to forget")
        self._discard_positions(previous)
        del self._voters[voter]
        obs.add("aggregate.online.forgets")

    # ------------------------------------------------------------------

    def _require_inputs(self) -> None:
        if self._count == 0:
            raise AggregationError("no rankings have been added yet")

    def _sorted_rows(self) -> npt.NDArray[np.float64]:
        """Column-sorted active rows, cached and merged incrementally."""
        if self._sorted is None or self._sorted.shape[0] != self._count:
            obs.add("aggregate.online.sort_cache.misses")
            self._sorted = np.sort(self._rows[: self._count], axis=0)
        else:
            obs.add("aggregate.online.sort_cache.hits")
        return self._sorted

    def _score_vector(self) -> npt.NDArray[np.float64]:
        self._require_inputs()
        return median_scores_array(
            self._sorted_rows(), tie=self._tie, assume_sorted=True
        )

    def scores(self) -> dict[Item, float]:
        """The current median score function. O(n) given sorted state."""
        return dict(zip(self._codec.items, self._score_vector().tolist()))

    def full_ranking(self) -> PartialRanking:
        """Theorem 11 output for the current inputs."""
        items = self._codec.items
        order = _order_slots(self._score_vector())
        return PartialRanking.from_sequence([items[slot] for slot in order])

    def top_k(self, k: int) -> PartialRanking:
        """Theorem 9 output for the current inputs."""
        if not 0 < k <= len(self._codec):
            raise AggregationError(
                f"k={k} out of range for domain of size {len(self._codec)}"
            )
        items = self._codec.items
        slots = _top_k_slots(self._score_vector(), k)
        return PartialRanking.top_k([items[slot] for slot in slots], self.domain)

    def partial_ranking(self) -> PartialRanking:
        """Theorem 10 output (Figure 1 DP) for the current inputs."""
        return _partial_ranking_from_scores(self._codec, self._score_vector())

    # ------------------------------------------------------------------

    def __reduce__(
        self,
    ) -> tuple[
        object,
        tuple[
            tuple[Item, ...],
            MedianTie,
            npt.NDArray[np.float64],
            tuple[tuple[Hashable, npt.NDArray[np.float64]], ...],
        ],
    ]:
        """Pickle as (items, tie, active rows, voter rows); the codec re-interns on load."""
        return (
            _rebuild_online,
            (
                tuple(self._codec.items),
                self._tie,
                self._rows[: self._count].copy(),
                tuple(self._voters.items()),
            ),
        )


def _rebuild_online(
    items: tuple[Item, ...],
    tie: MedianTie,
    rows: npt.NDArray[np.float64],
    voters: tuple[tuple[Hashable, npt.NDArray[np.float64]], ...] = (),
) -> OnlineMedianAggregator:
    aggregator = OnlineMedianAggregator(items, tie=tie)
    count = int(rows.shape[0])
    if count:
        aggregator._rows = np.array(rows, dtype=np.float64)
        aggregator._count = count
    for voter, positions in voters:
        row = np.asarray(positions, dtype=np.float64)
        row.setflags(write=False)
        aggregator._voters[voter] = row
    return aggregator
