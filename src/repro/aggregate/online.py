"""Incremental (online) median aggregation.

In the paper's database scenario the input rankings arrive one per user
criterion; an interactive search page adds and removes criteria without
recomputing everything. :class:`OnlineMedianAggregator` maintains, per
item, the multiset of positions seen so far (kept sorted with
``bisect.insort``), so after each ``add``/``discard`` the median score
function — and hence every §6 output — is available in O(n) time without
touching the previous rankings again.

The offline and online paths are interchangeable by construction; the
tests assert the online snapshots equal the batch results after every
update.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Iterable

from repro.aggregate.dp import optimal_partial_ranking
from repro.aggregate.median import MedianTie, median_of
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = ["OnlineMedianAggregator"]


class OnlineMedianAggregator:
    """Median rank aggregation with incremental inserts and removals.

    Parameters
    ----------
    domain:
        The fixed item domain every input ranking must cover.
    tie:
        Median tie rule for even input counts (see
        :func:`repro.aggregate.median.median_of`).
    """

    def __init__(self, domain: Iterable[Item], tie: MedianTie = "mid") -> None:
        items = frozenset(domain)
        if not items:
            raise AggregationError("the aggregation domain must be non-empty")
        self._domain = items
        self._tie: MedianTie = tie
        self._positions: dict[Item, list[float]] = {item: [] for item in items}
        self._count = 0

    # ------------------------------------------------------------------

    @property
    def domain(self) -> frozenset[Item]:
        return self._domain

    def __len__(self) -> int:
        """Number of rankings currently aggregated."""
        return self._count

    def add(self, ranking: PartialRanking) -> None:
        """Ingest one input ranking. O(n log m)."""
        if ranking.domain != self._domain:
            raise AggregationError("ranking domain differs from the aggregator's domain")
        for item in self._domain:
            insort(self._positions[item], ranking[item])
        self._count += 1

    def discard(self, ranking: PartialRanking) -> None:
        """Remove one previously added ranking (a criterion toggled off).

        Raises if the ranking's positions were never added — removal is by
        value, so adding a ranking twice requires discarding it twice.
        """
        if ranking.domain != self._domain:
            raise AggregationError("ranking domain differs from the aggregator's domain")
        if self._count == 0:
            raise AggregationError("no rankings to discard")
        # validate fully before mutating, so a failed discard is a no-op
        indices: dict[Item, int] = {}
        for item in self._domain:
            positions = self._positions[item]
            target = ranking[item]
            index = bisect_left(positions, target)
            if index >= len(positions) or positions[index] != target:
                raise AggregationError(
                    "ranking was not previously added (position mismatch at "
                    f"item {item!r})"
                )
            indices[item] = index
        for item, index in indices.items():
            del self._positions[item][index]
        self._count -= 1

    # ------------------------------------------------------------------

    def _require_inputs(self) -> None:
        if self._count == 0:
            raise AggregationError("no rankings have been added yet")

    def scores(self) -> dict[Item, float]:
        """The current median score function. O(n)."""
        self._require_inputs()
        return {
            item: median_of(positions, tie=self._tie)
            for item, positions in self._positions.items()
        }

    def _ordered(self) -> list[Item]:
        scores = self.scores()
        return sorted(
            scores, key=lambda item: (scores[item], type(item).__name__, repr(item))
        )

    def full_ranking(self) -> PartialRanking:
        """Theorem 11 output for the current inputs."""
        return PartialRanking.from_sequence(self._ordered())

    def top_k(self, k: int) -> PartialRanking:
        """Theorem 9 output for the current inputs."""
        if not 0 < k <= len(self._domain):
            raise AggregationError(
                f"k={k} out of range for domain of size {len(self._domain)}"
            )
        return PartialRanking.top_k(self._ordered()[:k], self._domain)

    def partial_ranking(self) -> PartialRanking:
        """Theorem 10 output (Figure 1 DP) for the current inputs."""
        return optimal_partial_ranking(self.scores())
