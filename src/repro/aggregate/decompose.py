"""SCC-condensed exact Kemeny: divide-and-conquer over the dominance digraph.

The ParCons observation (Andrieu et al.'s ``corankcolight``): build the
*dominance digraph* — edge ``x → y`` whenever placing ``x`` before ``y``
is strictly cheaper than the opposite under the pair-cost matrix — and
condense it into strongly-connected components. Between two distinct
SCCs every edge points the same way (two opposing edges would merge the
components through the paths inside them), so ordering the condensation
topologically attains the pairwise *minimum* on every cross-component
pair. The global objective therefore splits: concatenating an optimal
ranking of each component, components in condensation-topological order,
is a globally optimal full ranking (docs/THEORY.md, "SCC decomposition
soundness"). The NP-hard core shrinks from one exponential DP over ``n``
items to independent DPs over the component sizes — on sparse-conflict
profiles that turns instances refused outright by the monolithic solver
into milliseconds.

Components up to ``max_exact`` (default 16) items are solved exactly by
the vectorized Held–Karp DP; larger ones fall back to a Borda-seeded
adjacent-swap local search unless ``require_exact`` is set, and the
result's ``exact`` flag reports whether the global optimum is certified.
Penalty vectors plug in through
:class:`~repro.aggregate.scoring.ScoringScheme` exactly as in
:mod:`repro.aggregate.kemeny`.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.aggregate.kemeny import (
    _MAX_EXACT,
    _held_karp,
    _lower_bound_from_cost,
    pair_cost_array,
)
from repro.aggregate.scoring import ScoringScheme
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = ["DecomposedResult", "kemeny_decomposed", "dominance_components"]


@dataclass(frozen=True, slots=True)
class DecomposedResult:
    """The decomposed solver's answer plus its certification evidence."""

    #: The aggregated full ranking (optimal iff ``exact``).
    ranking: PartialRanking
    #: Its ``K^(p)``-style objective value against the profile.
    objective: float
    #: True iff every component was solved by the exact DP, certifying
    #: ``ranking`` as a global optimum.
    exact: bool
    #: Items per strongly-connected component, condensation-topological
    #: order (the order they appear in ``ranking``).
    components: tuple[tuple[Item, ...], ...]
    #: ``sum_{pairs} min(cost(x<y), cost(y<x))`` for the whole instance.
    lower_bound: float
    #: Total Held–Karp states evaluated (``sum 2^|C|`` over DP-solved
    #: components) — the work the condensation did *not* have to do is
    #: ``2^n`` minus this.
    dp_states: int

    @property
    def largest_component(self) -> int:
        return max((len(c) for c in self.components), default=0)


def _strongly_connected(adjacency: list[list[int]]) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative (no recursion-depth ceiling).

    The recursive algorithm's post-call low-link update is modeled with an
    explicit work stack of ``(vertex, next-neighbor-index)`` frames: a
    frame is re-examined after each child completes, folding the child's
    low link in. Components come out in reverse condensation-topological
    order; callers wanting a canonical forward order should use
    :func:`_condensation_order` rather than relying on that.
    """
    n = len(adjacency)
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            vertex, edge_pos = work.pop()
            if edge_pos == 0:
                index[vertex] = low[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            advanced = False
            neighbors = adjacency[vertex]
            while edge_pos < len(neighbors):
                successor = neighbors[edge_pos]
                edge_pos += 1
                if index[successor] == -1:
                    work.append((vertex, edge_pos))
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack[successor]:
                    low[vertex] = min(low[vertex], index[successor])
            if advanced:
                continue
            if low[vertex] == index[vertex]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[vertex])
    return components


def _condensation_order(
    components: list[list[int]], adjacency: list[list[int]]
) -> list[list[int]]:
    """Topologically sort the condensation, ties broken canonically.

    Kahn's algorithm over the component DAG with a min-heap keyed by each
    component's smallest member vertex (vertices are canonical codec
    slots), so among simultaneously available components the one holding
    the canonically first item is emitted first — the decomposed ranking
    is a deterministic function of the cost matrix alone.
    """
    component_of = [0] * len(adjacency)
    for label, component in enumerate(components):
        for vertex in component:
            component_of[vertex] = label
    indegree = [0] * len(components)
    successors: list[set[int]] = [set() for _ in components]
    for vertex, neighbors in enumerate(adjacency):
        for successor in neighbors:
            a, b = component_of[vertex], component_of[successor]
            if a != b and b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1
    keys = [min(component) for component in components]
    ready = [(keys[label], label) for label in range(len(components)) if indegree[label] == 0]
    heapq.heapify(ready)
    ordered: list[list[int]] = []
    while ready:
        _, label = heapq.heappop(ready)
        ordered.append(sorted(components[label]))
        for successor in sorted(successors[label]):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(ready, (keys[successor], successor))
    return ordered


def dominance_components(
    cost: npt.NDArray[np.float64],
) -> list[list[int]]:
    """SCCs of the dominance digraph, condensation-topological order.

    ``cost`` is a :func:`~repro.aggregate.kemeny.pair_cost_array` matrix;
    the digraph has an edge ``i → j`` iff ``cost[i, j] < cost[j, i]``
    (cost ties produce no edge — either relative order is then pairwise
    optimal). Each returned component lists its vertices ascending.
    """
    dominates = cost < cost.T
    adjacency = [np.flatnonzero(row).tolist() for row in dominates]
    return _condensation_order(_strongly_connected(adjacency), adjacency)


def _borda_local_search(sub: npt.NDArray[np.float64]) -> list[int]:
    """Heuristic order for one oversized component (indices into ``sub``).

    Seeded by the generalized Borda order under the pair costs — ascending
    row sum, i.e. ascending total cost of placing the item ahead of the
    rest of the component — then improved by adjacent-swap passes (swap
    whenever the swapped order is strictly cheaper) to a local optimum,
    the local-Kemenization move of Dwork et al. [8]. Deterministic: the
    seed breaks ties by index and each pass scans left to right.
    """
    size = sub.shape[0]
    row_totals = sub.sum(axis=1)
    order = sorted(range(size), key=lambda i: (row_totals[i], i))
    for _ in range(size):
        changed = False
        for i in range(size - 1):
            ahead, behind = order[i], order[i + 1]
            if sub[behind, ahead] < sub[ahead, behind]:
                order[i], order[i + 1] = behind, ahead
                changed = True
        if not changed:
            break
    return order


def kemeny_decomposed(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    scheme: ScoringScheme | None = None,
    jobs: int | None = None,
    max_exact: int = _MAX_EXACT,
    require_exact: bool = False,
) -> DecomposedResult:
    """Solve the ``K^(p)`` aggregation by SCC divide-and-conquer.

    Builds the pair-cost matrix once, condenses the dominance digraph,
    and solves each strongly-connected component independently on a slice
    of that one matrix: the exact Held–Karp DP up to ``max_exact`` items,
    a Borda-seeded local search above it. ``require_exact=True`` raises
    :class:`AggregationError` instead of falling back, guaranteeing the
    returned ranking is a certified global optimum (``exact=True``).

    The concatenation of per-component solutions in condensation order is
    globally optimal whenever every component is solved exactly — see the
    soundness statement in docs/THEORY.md.
    """
    if max_exact < 1:
        raise AggregationError(f"max_exact={max_exact} must be at least 1")
    items, cost = pair_cost_array(rankings, p, scheme=scheme, jobs=jobs)
    n = len(items)
    with obs.trace("aggregate.kemeny.decompose", n=n):
        components = dominance_components(cost)
        largest = max(len(component) for component in components)
        obs.add("kemeny.scc.components", len(components))
        obs.add("kemeny.scc.largest", largest)
        obs.set_attr("largest", largest)

        sequence: list[int] = []
        dp_states = 0
        exact = True
        for component in components:
            size = len(component)
            if size == 1:
                sequence.extend(component)
                continue
            idx = np.asarray(component)
            sub = cost[np.ix_(idx, idx)]
            if size <= max_exact:
                dp_states += 1 << size
                local, _ = _held_karp(sub, size)
            elif require_exact:
                raise AggregationError(
                    f"exact Kemeny refused: a strongly-connected component "
                    f"of {size} items exceeds the DP cap of {max_exact}; "
                    "drop require_exact for a heuristic fallback or use "
                    "median aggregation"
                )
            else:
                exact = False
                local = _borda_local_search(sub)
            sequence.extend(component[i] for i in local)
        if dp_states:
            obs.add("kemeny.dp_states", dp_states)

        seq = np.asarray(sequence)
        placed = cost[np.ix_(seq, seq)]
        upper_i, upper_j = np.triu_indices(n, k=1)
        objective = float(placed[upper_i, upper_j].sum())
        ranking = PartialRanking.from_sequence([items[x] for x in sequence])
        return DecomposedResult(
            ranking=ranking,
            objective=objective,
            exact=exact,
            components=tuple(
                tuple(items[x] for x in component) for component in components
            ),
            lower_bound=_lower_bound_from_cost(cost),
            dp_states=dp_states,
        )
