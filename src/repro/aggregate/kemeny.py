"""Exact Kemeny-style aggregation via Held–Karp bitmask dynamic programming.

The Kendall aggregation problem — find the full ranking minimizing
``sum_i K^(p)(out, sigma_i)`` — is NP-hard in general, and the paper's
footnote 4 motivates median aggregation as the *computationally simple*
alternative. For measuring true approximation ratios beyond the factorial
brute force (n ≤ 9), this module provides the classical exact algorithm:

the objective is **pairwise decomposable** — placing ``x`` before ``y``
costs ``sum_i [1 if sigma_i ranks y strictly ahead, p if it ties them]``
independently of everything else — so the optimal ranking over each item
subset ``S`` (as a prefix) satisfies the Held–Karp recurrence

    ``dp[S ∪ {x}] = dp[S] + sum_{y ∉ S ∪ {x}} cost(x before y)``

giving an exact O(2^n · n²) algorithm, practical to n ≈ 16.

The same pair-cost matrix also yields the standard lower bound
``sum_{pairs} min(cost(x<y), cost(y<x))``, used to sanity-check optimality
and to bound ratios on instances too large to solve exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.aggregate.objective import validate_profile
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.batch import bucket_index_matrix, sign_tensor
from repro.parallel import parallel_map, resolve_jobs

__all__ = ["pair_cost_matrix", "kemeny_lower_bound", "kemeny_optimal"]

_MAX_EXACT = 16

#: Cap on sign-tensor elements materialized per worker chunk (the same
#: budget the dense classifier in :mod:`repro.metrics.batch` uses).
_CHUNK_BUDGET = 1 << 23


def _pair_order_chunk(
    bucket_rows: npt.NDArray[np.int64],
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Pool worker: exact pair-order counts for a chunk of rankings.

    Shares the :func:`repro.metrics.batch.sign_tensor` encoding with the
    dense all-pairs classifier: from the chunk's ``(c, n·n)`` sign tensor
    ``S`` and its magnitude ``|S|``, the column sums give

        ``ahead = (sum S + sum |S|) / 2``   (count of rankings with the
        column's second item strictly ahead — sign +1),
        ``tied  = c − sum |S|``.

    Both are exact small integers in float64 and are returned as int64
    ``(n, n)`` matrices, so the combination step is integer arithmetic.
    """
    count, n = bucket_rows.shape
    tensor = sign_tensor(bucket_rows)
    sign_sum = tensor.sum(axis=0)
    strict_sum = np.abs(tensor).sum(axis=0)
    ahead = np.rint((sign_sum + strict_sum) / 2.0).astype(np.int64).reshape(n, n)
    tied = count - np.rint(strict_sum).astype(np.int64).reshape(n, n)
    return ahead, tied


def pair_cost_matrix(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> tuple[list[Item], list[list[float]]]:
    """Build the pairwise placement-cost matrix.

    Returns ``(items, cost)`` where ``cost[i][j]`` is the total penalty
    across the inputs for ranking ``items[i]`` strictly before
    ``items[j]``: 1 per input that strictly disagrees, ``p`` per input
    that ties the pair. ``cost[i][j] + cost[j][i]`` is constant per pair
    (the pair's unavoidable-versus-chosen split).

    The workers accumulate *integer* strictly-ahead / tied counts via the
    shared :func:`repro.metrics.batch.sign_tensor` path, and each entry is
    computed once as ``ahead + p·tied`` — so the matrix is bit-for-bit
    identical for every job count and every ``p`` (dyadic or not), and
    exactly equals the historical per-ranking accumulation for dyadic
    ``p`` (including the default ``p = 1/2``). ``jobs`` spreads the
    construction over a process pool (see :mod:`repro.parallel`).
    """
    if not 0.0 <= p <= 1.0:
        raise AggregationError(f"penalty parameter p={p} outside [0, 1]")
    validate_profile(rankings)
    codec = DomainCodec.for_profile(rankings)
    items = list(codec.items)  # canonical key order, as before
    n = len(items)
    m = len(rankings)

    with obs.trace("aggregate.kemeny.pair_cost_matrix", m=m, n=n):
        obs.add("kemeny.cells", m * n * n)
        bucket_rows = bucket_index_matrix(rankings, codec)
        n_jobs = min(resolve_jobs(jobs), m)
        per_chunk = max(1, min(_CHUNK_BUDGET // max(1, n * n), -(-m // max(1, n_jobs))))
        chunks = [bucket_rows[a : a + per_chunk] for a in range(0, m, per_chunk)]
        obs.set_attr("chunks", len(chunks))
        ahead = np.zeros((n, n), dtype=np.int64)
        tied = np.zeros((n, n), dtype=np.int64)
        for chunk_ahead, chunk_tied in parallel_map(_pair_order_chunk, chunks, jobs=jobs):
            ahead += chunk_ahead
            tied += chunk_tied
        cost = ahead + p * tied
        np.fill_diagonal(cost, 0.0)
        return items, cost.tolist()


def kemeny_lower_bound(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> float:
    """``sum_{pairs} min(cost(x<y), cost(y<x))`` — a lower bound on the
    optimal full-ranking ``K^(p)`` aggregation objective.

    Tight whenever the pairwise-majority tournament is acyclic. Summation
    is exact: costs are half-integer multiples of ``p``'s resolution, and
    for dyadic ``p`` every partial sum is exactly representable.
    """
    items, cost = pair_cost_matrix(rankings, p, jobs=jobs)
    matrix = np.asarray(cost, dtype=np.float64)
    i_upper, j_upper = np.triu_indices(len(items), k=1)
    return float(np.minimum(matrix, matrix.T)[i_upper, j_upper].sum())


def kemeny_optimal(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> tuple[PartialRanking, float]:
    """Exact optimal full-ranking ``K^(p)`` aggregation (Held–Karp DP).

    Returns the optimal ranking and its objective value. Exponential in
    ``n`` (refused above n=16); use :mod:`repro.aggregate.median` for the
    constant-factor polynomial alternative the paper advocates.
    """
    items, cost = pair_cost_matrix(rankings, p, jobs=jobs)
    n = len(items)
    if n > _MAX_EXACT:
        raise AggregationError(
            f"exact Kemeny refused for n={n} > {_MAX_EXACT}; "
            "use median aggregation for large domains"
        )
    with obs.trace("aggregate.kemeny.held_karp", n=n):
        obs.add("kemeny.dp_states", 1 << n)
        return _held_karp(items, cost, n)


def _held_karp(
    items: list[Item], cost: list[list[float]], n: int
) -> tuple[PartialRanking, float]:
    full = 1 << n
    infinity = float("inf")
    dp = [infinity] * full
    parent = [-1] * full
    dp[0] = 0.0
    for mask in range(full):
        base = dp[mask]
        if base == infinity:
            continue
        remaining = [i for i in range(n) if not mask & (1 << i)]
        for x in remaining:
            # append x to the prefix: it is ranked before everything else
            # still unplaced
            added = sum(cost[x][y] for y in remaining if y != x)
            new_mask = mask | (1 << x)
            candidate = base + added
            if candidate < dp[new_mask]:
                dp[new_mask] = candidate
                parent[new_mask] = x

    order: list[Item] = []
    mask = full - 1
    while mask:
        x = parent[mask]
        order.append(items[x])
        mask ^= 1 << x
    order.reverse()
    return PartialRanking.from_sequence(order), dp[full - 1]
