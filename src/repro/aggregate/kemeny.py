"""Exact Kemeny-style aggregation via Held–Karp bitmask dynamic programming.

The Kendall aggregation problem — find the full ranking minimizing
``sum_i K^(p)(out, sigma_i)`` — is NP-hard in general, and the paper's
footnote 4 motivates median aggregation as the *computationally simple*
alternative. For measuring true approximation ratios beyond the factorial
brute force (n ≤ 9), this module provides the classical exact algorithm:

the objective is **pairwise decomposable** — placing ``x`` before ``y``
costs ``sum_i [1 if sigma_i ranks y strictly ahead, p if it ties them]``
independently of everything else — so the optimal ranking over each item
subset ``S`` (as a prefix) satisfies the Held–Karp recurrence

    ``dp[S ∪ {x}] = dp[S] + sum_{y ∉ S ∪ {x}} cost(x before y)``

giving an exact O(2^n · n²) algorithm, practical to n ≈ 16.

The same pair-cost matrix also yields the standard lower bound
``sum_{pairs} min(cost(x<y), cost(y<x))``, used to sanity-check optimality
and to bound ratios on instances too large to solve exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from repro.aggregate.objective import validate_profile
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.parallel import parallel_map, resolve_jobs

__all__ = ["pair_cost_matrix", "kemeny_lower_bound", "kemeny_optimal"]

_MAX_EXACT = 16


def _pair_cost_chunk(
    task: tuple[npt.NDArray[np.float64], float],
) -> npt.NDArray[np.float64]:
    """Pool worker: pair-cost contribution of a chunk of rankings.

    ``cost[i][j] += 1`` when the ranking places ``items[j]`` strictly ahead
    of ``items[i]`` (position difference > 0), ``+= p`` when it ties them —
    one O(n²) broadcast per ranking, replacing the former O(n²·m) pure
    Python triple loop. The diagonal accumulates ``p`` per ranking here and
    is zeroed by the caller.
    """
    position_rows, p = task
    n = position_rows.shape[1]
    cost = np.zeros((n, n))
    for row in position_rows:
        diff = row[:, None] - row[None, :]
        cost += (diff > 0).astype(np.float64) + p * (diff == 0)
    return cost


def pair_cost_matrix(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> tuple[list[Item], list[list[float]]]:
    """Build the pairwise placement-cost matrix.

    Returns ``(items, cost)`` where ``cost[i][j]`` is the total penalty
    across the inputs for ranking ``items[i]`` strictly before
    ``items[j]``: 1 per input that strictly disagrees, ``p`` per input
    that ties the pair. ``cost[i][j] + cost[j][i]`` is constant per pair
    (the pair's unavoidable-versus-chosen split).

    ``jobs`` spreads the construction over a process pool. With the
    default ``p = 1/2`` (or any dyadic ``p``) every entry is exact in
    float64, so any job count produces an identical matrix; serial runs
    match the historical per-ranking accumulation order bit for bit for
    every ``p``.
    """
    if not 0.0 <= p <= 1.0:
        raise AggregationError(f"penalty parameter p={p} outside [0, 1]")
    validate_profile(rankings)
    codec = DomainCodec.for_profile(rankings)
    items = list(codec.items)  # canonical key order, as before
    n = len(items)

    position_rows = np.stack([sigma.dense_arrays(codec)[1] for sigma in rankings])
    n_jobs = min(resolve_jobs(jobs), len(rankings))
    bounds = np.linspace(0, len(rankings), max(1, n_jobs) + 1).astype(int)
    chunks = [(position_rows[a:b], p) for a, b in zip(bounds, bounds[1:]) if a < b]
    cost = sum(parallel_map(_pair_cost_chunk, chunks, jobs=jobs), np.zeros((n, n)))
    np.fill_diagonal(cost, 0.0)
    return items, cost.tolist()


def kemeny_lower_bound(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> float:
    """``sum_{pairs} min(cost(x<y), cost(y<x))`` — a lower bound on the
    optimal full-ranking ``K^(p)`` aggregation objective.

    Tight whenever the pairwise-majority tournament is acyclic.
    """
    items, cost = pair_cost_matrix(rankings, p, jobs=jobs)
    n = len(items)
    return sum(
        min(cost[i][j], cost[j][i]) for i in range(n) for j in range(i + 1, n)
    )


def kemeny_optimal(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    jobs: int | None = None,
) -> tuple[PartialRanking, float]:
    """Exact optimal full-ranking ``K^(p)`` aggregation (Held–Karp DP).

    Returns the optimal ranking and its objective value. Exponential in
    ``n`` (refused above n=16); use :mod:`repro.aggregate.median` for the
    constant-factor polynomial alternative the paper advocates.
    """
    items, cost = pair_cost_matrix(rankings, p, jobs=jobs)
    n = len(items)
    if n > _MAX_EXACT:
        raise AggregationError(
            f"exact Kemeny refused for n={n} > {_MAX_EXACT}; "
            "use median aggregation for large domains"
        )

    full = 1 << n
    infinity = float("inf")
    dp = [infinity] * full
    parent = [-1] * full
    dp[0] = 0.0
    for mask in range(full):
        base = dp[mask]
        if base == infinity:
            continue
        remaining = [i for i in range(n) if not mask & (1 << i)]
        for x in remaining:
            # append x to the prefix: it is ranked before everything else
            # still unplaced
            added = sum(cost[x][y] for y in remaining if y != x)
            new_mask = mask | (1 << x)
            candidate = base + added
            if candidate < dp[new_mask]:
                dp[new_mask] = candidate
                parent[new_mask] = x

    order: list[Item] = []
    mask = full - 1
    while mask:
        x = parent[mask]
        order.append(items[x])
        mask ^= 1 << x
    order.reverse()
    return PartialRanking.from_sequence(order), dp[full - 1]
