"""Exact Kemeny-style aggregation via Held–Karp bitmask dynamic programming.

The Kendall aggregation problem — find the full ranking minimizing
``sum_i K^(p)(out, sigma_i)`` — is NP-hard in general, and the paper's
footnote 4 motivates median aggregation as the *computationally simple*
alternative. For measuring true approximation ratios beyond the factorial
brute force (n ≤ 9), this module provides the classical exact algorithm:

the objective is **pairwise decomposable** — placing ``x`` before ``y``
costs ``sum_i [1 if sigma_i ranks y strictly ahead, p if it ties them]``
independently of everything else — so the optimal ranking over each item
subset ``S`` (as a prefix) satisfies the Held–Karp recurrence

    ``dp[S ∪ {x}] = dp[S] + sum_{y ∉ S ∪ {x}} cost(x before y)``

giving an exact O(2^n · n) algorithm after the per-state appendix costs
are batched into one ``(2^n, n)`` GEMM (see :func:`_held_karp`).

By default :func:`kemeny_optimal` first condenses the pairwise-dominance
digraph into strongly-connected components
(:mod:`repro.aggregate.decompose`), so the exponential cap applies *per
component*: sparse-conflict instances with hundreds of items solve
exactly in milliseconds. ``decompose=False`` restores the monolithic
single-DP path with its hard n ≤ 16 guard.

The same pair-cost matrix also yields the standard lower bound
``sum_{pairs} min(cost(x<y), cost(y<x))``, used to sanity-check optimality
and to bound ratios on instances too large to solve exactly. Penalties
beyond the scalar ``p`` plug in through
:class:`~repro.aggregate.scoring.ScoringScheme`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.aggregate.objective import validate_profile
from repro.aggregate.scoring import ScoringScheme, resolve_scheme
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.batch import bucket_index_matrix, sign_tensor
from repro.parallel import parallel_map, resolve_jobs

__all__ = [
    "pair_cost_matrix",
    "pair_cost_array",
    "kemeny_lower_bound",
    "kemeny_optimal",
]

_MAX_EXACT = 16

#: Cap on sign-tensor elements materialized per worker chunk (the same
#: budget the dense classifier in :mod:`repro.metrics.batch` uses).
_CHUNK_BUDGET = 1 << 23


def _pair_order_chunk(
    bucket_rows: npt.NDArray[np.int64],
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Pool worker: exact pair-order counts for a chunk of rankings.

    Shares the :func:`repro.metrics.batch.sign_tensor` encoding with the
    dense all-pairs classifier: from the chunk's ``(c, n·n)`` sign tensor
    ``S`` and its magnitude ``|S|``, the column sums give

        ``ahead = (sum S + sum |S|) / 2``   (count of rankings with the
        column's second item strictly ahead — sign +1),
        ``tied  = c − sum |S|``.

    Both are exact small integers in float64 and are returned as int64
    ``(n, n)`` matrices, so the combination step is integer arithmetic.
    """
    count, n = bucket_rows.shape
    tensor = sign_tensor(bucket_rows)
    sign_sum = tensor.sum(axis=0)
    strict_sum = np.abs(tensor).sum(axis=0)
    ahead = np.rint((sign_sum + strict_sum) / 2.0).astype(np.int64).reshape(n, n)
    tied = count - np.rint(strict_sum).astype(np.int64).reshape(n, n)
    return ahead, tied


def pair_cost_array(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    scheme: ScoringScheme | None = None,
    jobs: int | None = None,
) -> tuple[list[Item], npt.NDArray[np.float64]]:
    """Build the pairwise placement-cost matrix as an ``(n, n)`` ndarray.

    Returns ``(items, cost)`` where ``cost[i, j]`` is the total penalty
    across the inputs for ranking ``items[i]`` strictly before
    ``items[j]``: ``scheme.disagree`` per input that strictly disagrees,
    ``scheme.agree`` per input that strictly agrees, ``scheme.tie`` per
    input that ties the pair. Under the default Kendall scheme
    ``cost[i, j] + cost[j, i]`` is constant per pair (the pair's
    unavoidable-versus-chosen split).

    The workers accumulate *integer* strictly-ahead / tied counts via the
    shared :func:`repro.metrics.batch.sign_tensor` path, and each entry is
    computed once from those counts — so the matrix is bit-for-bit
    identical for every job count and every ``p`` (dyadic or not), and
    exactly equals the historical per-ranking accumulation for dyadic
    ``p`` (including the default ``p = 1/2``). ``jobs`` spreads the
    construction over a process pool (see :mod:`repro.parallel`).

    This is the allocation-free kernel every in-package consumer uses
    (the DP, the lower bound, the SCC decomposition, the tournament
    diagnostics); :func:`pair_cost_matrix` wraps it for callers wanting
    plain lists.
    """
    resolved = resolve_scheme(p, scheme)
    validate_profile(rankings)
    codec = DomainCodec.for_profile(rankings)
    items = list(codec.items)  # canonical key order, as before
    n = len(items)
    m = len(rankings)

    with obs.trace("aggregate.kemeny.pair_cost_matrix", m=m, n=n):
        obs.add("kemeny.cells", m * n * n)
        bucket_rows = bucket_index_matrix(rankings, codec)
        n_jobs = min(resolve_jobs(jobs), m)
        per_chunk = max(1, min(_CHUNK_BUDGET // max(1, n * n), -(-m // max(1, n_jobs))))
        chunks = [bucket_rows[a : a + per_chunk] for a in range(0, m, per_chunk)]
        obs.set_attr("chunks", len(chunks))
        ahead = np.zeros((n, n), dtype=np.int64)
        tied = np.zeros((n, n), dtype=np.int64)
        for chunk_ahead, chunk_tied in parallel_map(_pair_order_chunk, chunks, jobs=jobs):
            ahead += chunk_ahead
            tied += chunk_tied
        if resolved.is_kendall:
            # byte-for-byte the historical scalar-p expression
            cost = ahead + resolved.tie * tied
        else:
            cost = (
                resolved.disagree * ahead
                + resolved.agree * ahead.T
                + resolved.tie * tied
            )
        np.fill_diagonal(cost, 0.0)
        return items, cost


def pair_cost_matrix(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    scheme: ScoringScheme | None = None,
    jobs: int | None = None,
) -> tuple[list[Item], list[list[float]]]:
    """:func:`pair_cost_array` with the cost matrix as nested lists.

    Kept as the stable public shape for external callers; everything in
    this package consumes the ndarray directly to avoid re-materializing
    the ``(n, n)`` matrix on every hop.
    """
    items, cost = pair_cost_array(rankings, p, scheme=scheme, jobs=jobs)
    return items, cost.tolist()


def _lower_bound_from_cost(cost: npt.NDArray[np.float64]) -> float:
    """``sum_{pairs} min(cost[x, y], cost[y, x])`` over the upper triangle."""
    i_upper, j_upper = np.triu_indices(cost.shape[0], k=1)
    return float(np.minimum(cost, cost.T)[i_upper, j_upper].sum())


def kemeny_lower_bound(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    scheme: ScoringScheme | None = None,
    jobs: int | None = None,
) -> float:
    """``sum_{pairs} min(cost(x<y), cost(y<x))`` — a lower bound on the
    optimal full-ranking ``K^(p)`` aggregation objective.

    Tight whenever the pairwise-majority tournament is acyclic. Summation
    is exact: costs are half-integer multiples of ``p``'s resolution, and
    for dyadic ``p`` every partial sum is exactly representable.
    """
    _, cost = pair_cost_array(rankings, p, scheme=scheme, jobs=jobs)
    return _lower_bound_from_cost(cost)


def kemeny_optimal(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
    *,
    scheme: ScoringScheme | None = None,
    jobs: int | None = None,
    decompose: bool = True,
) -> tuple[PartialRanking, float]:
    """Exact optimal full-ranking ``K^(p)`` aggregation.

    Returns the optimal ranking and its objective value. By default the
    instance is first condensed into strongly-connected components of the
    pairwise-dominance digraph and each component is solved by its own
    Held–Karp DP (:func:`repro.aggregate.decompose.kemeny_decomposed`
    with ``require_exact=True``), so only instances with a *component*
    larger than 16 items are refused. ``decompose=False`` runs one
    monolithic DP with the historical hard n ≤ 16 cap. Use
    :mod:`repro.aggregate.median` for the constant-factor polynomial
    alternative the paper advocates on refused instances.
    """
    if decompose:
        # local import: decompose builds on this module's cost kernel
        from repro.aggregate.decompose import kemeny_decomposed

        result = kemeny_decomposed(
            rankings, p, scheme=scheme, jobs=jobs, require_exact=True
        )
        return result.ranking, result.objective
    items, cost = pair_cost_array(rankings, p, scheme=scheme, jobs=jobs)
    n = len(items)
    if n > _MAX_EXACT:
        raise AggregationError(
            f"exact Kemeny refused for n={n} > {_MAX_EXACT}; "
            "use median aggregation for large domains"
        )
    with obs.trace("aggregate.kemeny.held_karp", n=n):
        obs.add("kemeny.dp_states", 1 << n)
        order, objective = _held_karp(cost, n)
        return PartialRanking.from_sequence([items[x] for x in order]), objective


def _held_karp(
    cost: npt.NDArray[np.float64], n: int
) -> tuple[list[int], float]:
    """Optimal item order (as matrix indices) plus its objective value.

    The per-state appendix costs are batched: ``S = bits @ cost.T`` gives
    ``S[mask, x] = sum_{y in mask} cost[x, y]`` for every state in one
    GEMM, so appending ``x`` to the prefix ``mask`` adds
    ``row_total[x] − S[mask, x]`` (everything still unplaced) — an O(1)
    lookup instead of the former O(n) Python generator sum, taking the DP
    from O(2^n · n²) interpreted work to O(2^n · n) plus one GEMM.
    Bit-identical to the scalar accumulation for dyadic penalties (all
    partial sums exact in float64); for non-dyadic schemes agreement is
    within one ulp per state. Transition ties keep the historical
    resolution (first-improving ``x`` in ascending index order wins).
    """
    full = 1 << n
    bits = ((np.arange(full, dtype=np.uint32)[:, None] >> np.arange(n)) & 1).astype(
        np.float64
    )
    # added[mask, x] = cost of ranking x ahead of everything outside mask
    added = cost.sum(axis=1)[None, :] - bits @ cost.T
    infinity = float("inf")
    dp = [infinity] * full
    parent = [-1] * full
    dp[0] = 0.0
    for mask in range(full):
        base = dp[mask]
        if base == infinity:
            continue
        added_row = added[mask]
        for x in range(n):
            if mask & (1 << x):
                continue
            # append x to the prefix: it is ranked before everything else
            # still unplaced
            new_mask = mask | (1 << x)
            candidate = base + added_row[x]
            if candidate < dp[new_mask]:
                dp[new_mask] = candidate
                parent[new_mask] = x

    order: list[int] = []
    mask = full - 1
    while mask:
        x = parent[mask]
        order.append(x)
        mask ^= 1 << x
    order.reverse()
    return order, float(dp[full - 1])


def _held_karp_python(
    cost: npt.NDArray[np.float64], n: int
) -> tuple[list[int], float]:
    """The pre-vectorization reference DP (per-state Python generator sum).

    Retained as the differential twin for :func:`_held_karp`: the
    benchmark gate (``benchmarks/bench_kemeny.py``) asserts the two agree
    bit for bit while measuring the per-state speedup of the GEMM path.
    """
    rows = cost.tolist()
    full = 1 << n
    infinity = float("inf")
    dp = [infinity] * full
    parent = [-1] * full
    dp[0] = 0.0
    for mask in range(full):
        base = dp[mask]
        if base == infinity:
            continue
        remaining = [i for i in range(n) if not mask & (1 << i)]
        for x in remaining:
            added = sum(rows[x][y] for y in remaining if y != x)
            new_mask = mask | (1 << x)
            candidate = base + added
            if candidate < dp[new_mask]:
                dp[new_mask] = candidate
                parent[new_mask] = x

    order: list[int] = []
    mask = full - 1
    while mask:
        x = parent[mask]
        order.append(x)
        mask ^= 1 << x
    order.reverse()
    return order, dp[full - 1]
