"""Exact Kemeny-style aggregation via Held–Karp bitmask dynamic programming.

The Kendall aggregation problem — find the full ranking minimizing
``sum_i K^(p)(out, sigma_i)`` — is NP-hard in general, and the paper's
footnote 4 motivates median aggregation as the *computationally simple*
alternative. For measuring true approximation ratios beyond the factorial
brute force (n ≤ 9), this module provides the classical exact algorithm:

the objective is **pairwise decomposable** — placing ``x`` before ``y``
costs ``sum_i [1 if sigma_i ranks y strictly ahead, p if it ties them]``
independently of everything else — so the optimal ranking over each item
subset ``S`` (as a prefix) satisfies the Held–Karp recurrence

    ``dp[S ∪ {x}] = dp[S] + sum_{y ∉ S ∪ {x}} cost(x before y)``

giving an exact O(2^n · n²) algorithm, practical to n ≈ 16.

The same pair-cost matrix also yields the standard lower bound
``sum_{pairs} min(cost(x<y), cost(y<x))``, used to sanity-check optimality
and to bound ratios on instances too large to solve exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.aggregate.objective import validate_profile
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = ["pair_cost_matrix", "kemeny_lower_bound", "kemeny_optimal"]

_MAX_EXACT = 16


def pair_cost_matrix(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> tuple[list[Item], list[list[float]]]:
    """Build the pairwise placement-cost matrix.

    Returns ``(items, cost)`` where ``cost[i][j]`` is the total penalty
    across the inputs for ranking ``items[i]`` strictly before
    ``items[j]``: 1 per input that strictly disagrees, ``p`` per input
    that ties the pair. ``cost[i][j] + cost[j][i]`` is constant per pair
    (the pair's unavoidable-versus-chosen split).
    """
    if not 0.0 <= p <= 1.0:
        raise AggregationError(f"penalty parameter p={p} outside [0, 1]")
    domain = validate_profile(rankings)
    items = sorted(domain, key=lambda item: (type(item).__name__, repr(item)))
    n = len(items)
    cost = [[0.0] * n for _ in range(n)]
    for i, x in enumerate(items):
        for j, y in enumerate(items):
            if i == j:
                continue
            total = 0.0
            for sigma in rankings:
                if sigma.ahead(y, x):
                    total += 1.0
                elif sigma.tied(x, y):
                    total += p
            cost[i][j] = total
    return items, cost


def kemeny_lower_bound(rankings: Sequence[PartialRanking], p: float = 0.5) -> float:
    """``sum_{pairs} min(cost(x<y), cost(y<x))`` — a lower bound on the
    optimal full-ranking ``K^(p)`` aggregation objective.

    Tight whenever the pairwise-majority tournament is acyclic.
    """
    items, cost = pair_cost_matrix(rankings, p)
    n = len(items)
    return sum(
        min(cost[i][j], cost[j][i]) for i in range(n) for j in range(i + 1, n)
    )


def kemeny_optimal(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> tuple[PartialRanking, float]:
    """Exact optimal full-ranking ``K^(p)`` aggregation (Held–Karp DP).

    Returns the optimal ranking and its objective value. Exponential in
    ``n`` (refused above n=16); use :mod:`repro.aggregate.median` for the
    constant-factor polynomial alternative the paper advocates.
    """
    items, cost = pair_cost_matrix(rankings, p)
    n = len(items)
    if n > _MAX_EXACT:
        raise AggregationError(
            f"exact Kemeny refused for n={n} > {_MAX_EXACT}; "
            "use median aggregation for large domains"
        )

    full = 1 << n
    infinity = float("inf")
    dp = [infinity] * full
    parent = [-1] * full
    dp[0] = 0.0
    for mask in range(full):
        base = dp[mask]
        if base == infinity:
            continue
        remaining = [i for i in range(n) if not mask & (1 << i)]
        for x in remaining:
            # append x to the prefix: it is ranked before everything else
            # still unplaced
            added = sum(cost[x][y] for y in remaining if y != x)
            new_mask = mask | (1 << x)
            candidate = base + added
            if candidate < dp[new_mask]:
                dp[new_mask] = candidate
                parent[new_mask] = x

    order: list[Item] = []
    mask = full - 1
    while mask:
        x = parent[mask]
        order.append(items[x])
        mask ^= 1 << x
    order.reverse()
    return PartialRanking.from_sequence(order), dp[full - 1]
