"""Optimal bucketing dynamic program (paper Figure 1, §A.6.4).

Given a score function ``f`` (e.g. the median score function), Theorem 10
needs the partial ranking ``f†`` minimizing ``L1(f†, f)`` over *all*
partial rankings. Sorting the items by ``f`` reduces this to an optimal
*segmentation* problem: choose boundaries ``0 = s_0 < s_1 < ... < s_t = n``
minimizing ``sum_ℓ c(s_ℓ, s_{ℓ+1})`` where

    ``c(i, j) = sum_{ℓ=i+1..j} |f(ℓ) - (i + j + 1) / 2|``

is the L1 cost of making positions ``i+1..j`` one bucket (whose position is
``(i + j + 1) / 2``).

Two implementations are provided:

* :func:`optimal_bucketing` — O(n²) transitions with O(log n) cost queries
  via prefix sums (:class:`repro._util.SortedSliceL1`); works for arbitrary
  real scores.
* :func:`figure1_boundaries` — a faithful port of the paper's Figure 1
  pseudocode: O(n²) time, O(n) extra space, valid whenever ``2 f(i)`` is
  integral for all ``i`` (the paper's assumption; true for any odd-m median
  of partial-ranking positions).

plus :func:`brute_force_bucketing`, an exhaustive oracle over all 2^(n-1)
segmentations for the test suite.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro._util import SortedSliceL1
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = [  # repro: noqa[RP011] — small-n DP comparator; experiment spans time it end to end
    "BucketingResult",
    "bucketing_cost",
    "optimal_bucketing",
    "figure1_boundaries",
    "brute_force_bucketing",
    "optimal_partial_ranking",
]

_HALF_INTEGRAL_TOL = 1e-12


@dataclass(frozen=True, slots=True)
class BucketingResult:
    """An optimal segmentation of sorted scores into buckets.

    ``boundaries`` is the paper's sequence ``S_n``: strictly increasing,
    starting at 0 and ending at n; bucket ``ℓ`` spans sorted positions
    ``boundaries[ℓ]+1 .. boundaries[ℓ+1]``. ``cost`` is the total L1
    distance between the scores and the resulting bucket positions.
    """

    boundaries: tuple[int, ...]
    cost: float

    @property
    def bucket_type(self) -> tuple[int, ...]:
        """The type (sequence of bucket sizes) of the segmentation."""
        return tuple(
            b - a for a, b in zip(self.boundaries, self.boundaries[1:])
        )


def _require_sorted(values: Sequence[float]) -> list[float]:
    vals = list(values)
    if not vals:
        raise AggregationError("cannot bucket an empty score sequence")
    if any(a > b for a, b in zip(vals, vals[1:])):
        raise AggregationError("scores must be sorted ascending before bucketing")
    return vals


def bucketing_cost(values: Sequence[float], boundaries: Sequence[int]) -> float:
    """Evaluate ``c(S)`` — the L1 cost of a given segmentation.

    ``boundaries`` must start at 0, end at ``len(values)``, and be strictly
    increasing.
    """
    vals = _require_sorted(values)
    bounds = list(boundaries)
    n = len(vals)
    if not bounds or bounds[0] != 0 or bounds[-1] != n:
        raise AggregationError(f"boundaries must run from 0 to {n}, got {bounds}")
    if any(a >= b for a, b in zip(bounds, bounds[1:])):
        raise AggregationError("boundaries must be strictly increasing")
    slices = SortedSliceL1(vals)
    return sum(
        slices.cost(start, stop, (start + stop + 1) / 2)
        for start, stop in zip(bounds, bounds[1:])
    )


def optimal_bucketing(values: Sequence[float]) -> BucketingResult:
    """Find a minimum-cost segmentation of sorted scores. O(n² log n).

    Uses prefix-sum cost queries, which work for arbitrary real scores.
    The paper's Figure 1 algorithm (:func:`figure1_boundaries`) has a
    better asymptotic bound — O(n²) with an O(1) amortized column update —
    but the ablation benchmark shows the C-backed bisect of the prefix-sum
    variant beats the pure-Python incremental update in practice, so the
    faithful port is kept as a validated reference rather than the default
    path. Both return a true optimum; they may differ in which optimum
    they pick, never in cost.
    """
    return _prefix_sum_bucketing(_require_sorted(values))


def _prefix_sum_bucketing(vals: list[float]) -> BucketingResult:
    n = len(vals)
    slices = SortedSliceL1(vals)
    best = [0.0] * (n + 1)
    parent = [0] * (n + 1)
    for j in range(1, n + 1):
        best_cost = float("inf")
        best_i = 0
        for i in range(j):
            cost = best[i] + slices.cost(i, j, (i + j + 1) / 2)
            if cost < best_cost:
                best_cost = cost
                best_i = i
        best[j] = best_cost
        parent[j] = best_i
    return BucketingResult(boundaries=_walk_parents(parent, n), cost=best[n])


def figure1_boundaries(values: Sequence[float]) -> BucketingResult:
    """Faithful port of the paper's Figure 1 pseudocode.

    Requires sorted scores with ``2 f(i)`` integral (so that no score falls
    strictly between two consecutive candidate bucket midpoints, which is
    what makes the O(1) amortized column update exact). O(n²) time,
    O(n) additional space.
    """
    vals = _require_sorted(values)
    if any(abs(v * 2 - round(v * 2)) > _HALF_INTEGRAL_TOL for v in vals):
        raise AggregationError("figure1_boundaries requires half-integral scores")
    n = len(vals)

    def f(index_1based: int) -> float:
        return vals[index_1based - 1]

    best = [0.0] * (n + 1)
    parent = [0] * (n + 1)
    for j in range(1, n + 1):
        # line 2: c(0, j) = sum_{ℓ=1..j} |f(ℓ) - (j + 1) / 2|
        mid = (j + 1) / 2
        cost_ij = sum(abs(f(ell) - mid) for ell in range(1, j + 1))
        best_cost = best[0] + cost_ij
        best_i = 0
        k = 1  # line 3 (paper uses k := 0 with 1-based f; k is the first
        #        index with f(k) >= the current midpoint)
        for i in range(1, j):
            # line 5: advance k to the first index with f(k) >= (i+j+1)/2
            mid = (i + j + 1) / 2
            while k <= j and f(k) < mid:
                k += 1
            # line 6: c(i, j) = c(i-1, j) - |f(i) - (i+j)/2| + (2k-i-j-2)/2.
            # The update counts scores below/above the new midpoint among
            # positions i+1..j, so k must be clamped to that window (the
            # paper's pseudocode leaves this implicit).
            k_eff = max(k, i + 1)
            cost_ij = cost_ij - abs(f(i) - (i + j) / 2) + (2 * k_eff - i - j - 2) / 2
            candidate = best[i] + cost_ij
            if candidate < best_cost:
                best_cost = candidate
                best_i = i
        best[j] = best_cost
        parent[j] = best_i
    return BucketingResult(boundaries=_walk_parents(parent, n), cost=best[n])


def _walk_parents(parent: Sequence[int], n: int) -> tuple[int, ...]:
    boundaries = [n]
    while boundaries[-1] != 0:
        boundaries.append(parent[boundaries[-1]])
    return tuple(reversed(boundaries))


def brute_force_bucketing(values: Sequence[float]) -> BucketingResult:
    """Exhaustive minimum over all 2^(n-1) segmentations (test oracle)."""
    vals = _require_sorted(values)
    n = len(vals)
    slices = SortedSliceL1(vals)
    best_cost = float("inf")
    best_bounds: tuple[int, ...] = (0, n)
    for mask in range(1 << (n - 1)):
        bounds = [0] + [i for i in range(1, n) if mask & (1 << (i - 1))] + [n]
        cost = sum(
            slices.cost(start, stop, (start + stop + 1) / 2)
            for start, stop in zip(bounds, bounds[1:])
        )
        if cost < best_cost:
            best_cost = cost
            best_bounds = tuple(bounds)
    return BucketingResult(boundaries=best_bounds, cost=best_cost)


def optimal_partial_ranking(scores: Mapping[Item, float]) -> PartialRanking:
    """The partial ranking ``f†`` minimizing ``L1(f†, scores)`` (Thm 10).

    Items are sorted by score (ties broken canonically — any order of tied
    items yields the same cost), the optimal segmentation is computed, and
    the segments become the buckets.
    """
    if not scores:
        raise AggregationError("cannot aggregate an empty score function")
    ordered = sorted(
        scores, key=lambda item: (scores[item], type(item).__name__, repr(item))
    )
    result = optimal_bucketing([scores[item] for item in ordered])
    buckets = [
        ordered[start:stop]
        for start, stop in zip(result.boundaries, result.boundaries[1:])
    ]
    return PartialRanking(buckets)
