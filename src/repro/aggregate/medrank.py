"""Sequential-access median aggregation (paper §6, [11], [12]).

The database-friendly instantiation of median rank aggregation accesses
each input list through *sorted access only* — read the next-best item of a
list, one at a time — and stops as early as possible:

* :func:`medrank` — the paper's instantiation: round-robin sorted accesses
  until some object has been seen in more than ``m/2`` lists; that object
  is the winner, and continuing yields the next winners. This is the
  MEDRANK algorithm of Fagin–Kumar–Sivakumar (SIGMOD 2003), shown
  instance-optimal in the Fagin–Lotem–Naor access model for full-ranking
  inputs.
* :func:`nra_median` — a certified variant for bucket-order inputs: it
  maintains lower/upper bounds on every item's median position (in the
  spirit of the NRA algorithm of [12]) and stops only when the reported
  top-k set provably consists of median-minimal items. For inputs with
  large buckets the majority rule can fire before the winner's median is
  certified; this variant never does.

Both report an :class:`AccessLog` so experiments can measure how few
elements of each list were read — the paper's headline database property.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.aggregate.batch import _order_slots, median_scores_array
from repro.aggregate.median import MedianTie
from repro.aggregate.objective import validate_profile
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
from repro.metrics.batch import bucket_index_matrix, position_matrix

if TYPE_CHECKING:
    from repro.db.mmap_lists import SortedListStore

__all__ = [
    "AccessLog",
    "MedrankResult",
    "SlotMedrankResult",
    "medrank",
    "medrank_out_of_core",
    "nra_median",
]


@dataclass(frozen=True, slots=True)
class AccessLog:
    """Bookkeeping for the sorted-access cost of an aggregation run.

    ``depth`` is the number of sorted accesses made to each list (the
    round-robin level reached); ``total_accesses = depth * num_lists``.
    ``domain_size * num_lists`` is the cost of reading everything, so
    ``saturation = total_accesses / (domain_size * num_lists)`` is the
    fraction of the input actually touched.
    """

    depth: int
    num_lists: int
    domain_size: int

    @property
    def total_accesses(self) -> int:
        return self.depth * self.num_lists

    @property
    def saturation(self) -> float:
        return self.depth / self.domain_size if self.domain_size else 0.0


@dataclass(frozen=True, slots=True)
class MedrankResult:
    """Output of a sequential-access aggregation run."""

    winners: tuple[Item, ...]
    ranking: PartialRanking
    access_log: AccessLog


def _sorted_access_sequences(rankings: Sequence[PartialRanking]) -> list[list[Item]]:
    """Materialize each list's sorted-access order (canonical within buckets)."""
    return [ranking.items_in_order() for ranking in rankings]


def medrank(
    rankings: Sequence[PartialRanking],
    k: int = 1,
    quota: float = 0.5,
) -> MedrankResult:
    """The paper's majority-stopping sequential algorithm.

    Performs round-robin sorted accesses; an item is *selected* as soon as
    it has been seen in more than ``quota * m`` of the ``m`` lists
    (``quota = 0.5`` is the paper's "more than half"). The first ``k``
    selected items, in selection order (ties within one depth broken by
    how many lists have shown the item, then canonically), form the output
    top-k list.

    For full-ranking inputs the first selected item is guaranteed to have
    minimal median rank; for bucket orders the rule is the natural
    generalization the paper describes, and :func:`nra_median` provides the
    certified alternative. Access cost is reported, not assumed.
    """
    domain = validate_profile(rankings)
    if not 0 < k <= len(domain):
        raise AggregationError(f"k={k} out of range for domain of size {len(domain)}")
    if not 0.0 < quota < 1.0:
        raise AggregationError(f"quota={quota} must lie strictly between 0 and 1")

    sequences = _sorted_access_sequences(rankings)
    m = len(rankings)
    threshold = quota * m
    counts: dict[Item, int] = {}
    selected: list[Item] = []
    selected_set: set[Item] = set()
    depth = 0
    n = len(domain)

    while len(selected) < k and depth < n:
        depth += 1
        newly_full: list[Item] = []
        for sequence in sequences:
            item = sequence[depth - 1]
            counts[item] = counts.get(item, 0) + 1
            if counts[item] > threshold and item not in selected_set:
                selected_set.add(item)
                newly_full.append(item)
        # items crossing the quota at the same depth: richer count first,
        # then canonical order, for a deterministic output
        newly_full.sort(key=lambda item: (-counts[item], type(item).__name__, repr(item)))
        for item in newly_full:
            if len(selected) < k:
                selected.append(item)

    if len(selected) < k:  # pragma: no cover - depth n always selects everything
        raise AggregationError("medrank exhausted all lists before selecting k items")

    ranking = PartialRanking.top_k(selected, domain)
    log = AccessLog(depth=depth, num_lists=m, domain_size=n)
    obs.add("aggregate.medrank.accesses", log.total_accesses)
    return MedrankResult(winners=tuple(selected), ranking=ranking, access_log=log)


@dataclass(frozen=True, slots=True)
class SlotMedrankResult:
    """Output of an out-of-core MEDRANK run, in codec slot space.

    Million-item stores carry no item objects — only slots. Map
    ``winner_slots`` through the owning codec's :attr:`items
    <repro.core.codec.DomainCodec.items>` to recover the items; the
    oracle does exactly that to compare against :func:`medrank`.
    """

    winner_slots: tuple[int, ...]
    access_log: AccessLog


def medrank_out_of_core(
    store: "SortedListStore",
    k: int = 1,
    quota: float = 0.5,
) -> SlotMedrankResult:
    """MEDRANK over memory-mapped sorted lists (the database-scale run).

    The same majority-stopping round-robin as :func:`medrank`, driven
    through :class:`~repro.db.mmap_lists.MmapSortedCursor` sorted
    accesses instead of materialized ``items_in_order()`` lists: at
    n ≈ 10⁶ the store faults in only the page-prefix of each list the
    algorithm actually reads — the paper's instance-optimal
    sequential-access economy, observable in RSS.

    Exactness contract: the store's rows are the slot-space
    ``items_in_order()`` of each list, and the canonical within-depth
    tie-break (richer count first, then canonical item order) *is*
    ``(-count, slot)`` because slot order is the canonical order. The
    run therefore reads the same (list, depth) coordinates, selects the
    same winners, stops at the same depth, and books the same
    ``aggregate.medrank.accesses`` counter as the in-memory algorithm —
    ``oracle:medrank-out-of-core`` asserts all of it.
    """
    m, n = store.num_lists, store.domain_size
    if m == 0:
        raise AggregationError("medrank of an empty profile is undefined")
    if not 0 < k <= n:
        raise AggregationError(f"k={k} out of range for domain of size {n}")
    if not 0.0 < quota < 1.0:
        raise AggregationError(f"quota={quota} must lie strictly between 0 and 1")

    cursors = store.cursors()
    threshold = quota * m
    counts = np.zeros(n, dtype=np.int64)
    selected: list[int] = []
    selected_mask = np.zeros(n, dtype=bool)
    depth = 0

    while len(selected) < k and depth < n:
        depth += 1
        round_slots = np.fromiter(
            (cursor.next_slot() for cursor in cursors), dtype=np.int64, count=m
        )
        np.add.at(counts, round_slots, 1)
        # slots crossing the quota at this depth, richer count first and
        # canonical (= slot) order within a count — the tie-break of
        # medrank(), which sorts by end-of-round counts too. Only slots
        # touched this round can newly cross, so the check is O(m) per
        # depth level, not an O(n) scan (the n=10⁶ runs would otherwise
        # spend their time scanning counts, not accessing lists).
        touched = np.unique(round_slots)
        newly = touched[(counts[touched] > threshold) & ~selected_mask[touched]]
        if newly.size:
            selected_mask[newly] = True
            for slot in newly[np.lexsort((newly, -counts[newly]))]:
                if len(selected) < k:
                    selected.append(int(slot))

    if len(selected) < k:  # pragma: no cover - depth n always selects everything
        raise AggregationError("medrank exhausted all lists before selecting k items")

    log = AccessLog(depth=depth, num_lists=m, domain_size=n)
    obs.add("aggregate.medrank.accesses", log.total_accesses)
    return SlotMedrankResult(winner_slots=tuple(selected), access_log=log)


def nra_median(
    rankings: Sequence[PartialRanking],
    k: int = 1,
    tie: MedianTie = "mid",
) -> MedrankResult:
    """Certified sequential median aggregation (NRA-style bounds).

    After each round of sorted accesses the algorithm knows, per item, the
    exact positions in the lists where it has been seen, a lower bound
    (the position of the bucket each cursor is currently inside) where it
    has not, and a trivial upper bound (the last bucket's position). The
    median is coordinate-monotone, so these give certified bounds on each
    item's median score. The run stops at the first depth where the k
    items with the smallest upper bounds provably dominate everything
    else, guaranteeing the output is a true median top-k set.

    The bound maintenance is vectorized over the codec's position matrix:
    each list's sorted-access order is the stable bucket-index argsort of
    its row, the seen mask advances one column of that order per depth,
    and the lower/upper bound *matrices* feed the shared
    :func:`repro.aggregate.batch.median_scores_array` kernel — the same
    floats, depths and winners as the former per-item ``median_of`` loop.
    """
    domain = validate_profile(rankings)
    if not 0 < k <= len(domain):
        raise AggregationError(f"k={k} out of range for domain of size {len(domain)}")

    codec = DomainCodec.for_domain(domain)
    positions = position_matrix(rankings, codec)
    # sorted-access order per list: by bucket, canonically (= by slot)
    # within one bucket — exactly items_in_order(), as stable argsort
    access_slots = np.argsort(bucket_index_matrix(rankings, codec), axis=1, kind="stable")
    m, n = positions.shape
    lists = np.arange(m)
    last_positions = positions[lists, access_slots[:, -1]]
    seen = np.zeros((m, n), dtype=bool)
    items = codec.items

    depth = 0
    while True:
        depth += 1
        seen[lists, access_slots[:, depth - 1]] = True

        # frontier position per list: the bucket holding the next unread item
        if depth < n:
            frontiers = positions[lists, access_slots[:, depth]]
        else:
            frontiers = last_positions

        lower = median_scores_array(np.where(seen, positions, frontiers[:, None]), tie=tie)
        upper = median_scores_array(
            np.where(seen, positions, last_positions[:, None]), tie=tie
        )

        by_upper = _order_slots(upper)
        candidate_slots = by_upper[:k]
        rest_slots = by_upper[k:]
        worst_candidate = upper[candidate_slots].max()
        best_rest = lower[rest_slots].min() if rest_slots.size else float("inf")
        if worst_candidate <= best_rest or depth == n:
            candidates = [items[slot] for slot in candidate_slots]
            ranking_out = PartialRanking.top_k(candidates, domain)
            log = AccessLog(depth=depth, num_lists=m, domain_size=n)
            obs.add("aggregate.medrank.accesses", log.total_accesses)
            return MedrankResult(
                winners=tuple(candidates), ranking=ranking_out, access_log=log
            )
