"""Pairwise-majority (Condorcet) structure of an aggregation instance.

The exact Kemeny objective decomposes over pairs (see
:mod:`repro.aggregate.kemeny`), so the instance's difficulty is entirely
captured by its *majority tournament*: the directed graph with an edge
``x -> y`` whenever ranking ``x`` before ``y`` is strictly cheaper than
the opposite. Classical facts, all executable here:

* if the tournament is **acyclic**, any topological order is an exactly
  optimal aggregation and the pairwise lower bound is tight;
* a **Condorcet winner** (beats everything) exists in particular, and the
  paper's median/MEDRANK algorithms tend to find it;
* cycles are what make Kemeny aggregation NP-hard — E14 measured that they
  are rare on random bucket-order profiles, which this module lets callers
  check per instance before paying for the exponential solver.

Graphs are `networkx.DiGraph` objects so downstream users get the whole
graph-algorithm toolbox for free.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.aggregate.kemeny import pair_cost_array
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError

__all__ = [  # repro: noqa[RP011] — Condorcet structure diagnostics, not a hot path
    "majority_digraph",
    "is_condorcet_consistent",
    "condorcet_winner",
    "topological_aggregation",
]


def majority_digraph(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> "nx.DiGraph":
    """Build the strict-preference digraph of an aggregation instance.

    Nodes are the domain items; there is an edge ``x -> y`` iff placing
    ``x`` before ``y`` is strictly cheaper under the ``K^(p)`` pair costs
    (ties in cost produce no edge in either direction). Edges carry
    ``margin`` (the cost difference) and ``cost`` (the cheaper direction's
    cost) attributes.
    """
    items, cost = pair_cost_array(rankings, p)
    graph = nx.DiGraph()
    graph.add_nodes_from(items)
    n = len(items)
    for i in range(n):
        for j in range(i + 1, n):
            forward, backward = float(cost[i, j]), float(cost[j, i])
            if forward < backward:
                graph.add_edge(items[i], items[j], margin=backward - forward, cost=forward)
            elif backward < forward:
                graph.add_edge(items[j], items[i], margin=forward - backward, cost=backward)
    return graph


def is_condorcet_consistent(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> bool:
    """True if the majority digraph is acyclic.

    Acyclic instances are *easy*: the pairwise lower bound is attainable
    and :func:`topological_aggregation` is exactly optimal.
    """
    return nx.is_directed_acyclic_graph(majority_digraph(rankings, p))


def condorcet_winner(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> Item | None:
    """The item strictly beating every other item, if one exists."""
    graph = majority_digraph(rankings, p)
    n = graph.number_of_nodes()
    for node in graph.nodes:
        if graph.out_degree(node) == n - 1:
            return node
    return None


def topological_aggregation(
    rankings: Sequence[PartialRanking],
    p: float = 0.5,
) -> tuple[PartialRanking, float]:
    """Exactly optimal full-ranking aggregation for acyclic instances.

    Orders the items topologically along the majority digraph (groups with
    no strict preference are ordered canonically), achieving the pairwise
    lower bound — the fast path to exact Kemeny optimality when no
    Condorcet cycle exists. Raises :class:`AggregationError` on cyclic
    instances; fall back to :func:`repro.aggregate.kemeny.kemeny_optimal`
    (or median aggregation) there.
    """
    graph = majority_digraph(rankings, p)
    if not nx.is_directed_acyclic_graph(graph):
        raise AggregationError(
            "majority digraph has a Condorcet cycle; no topological aggregation "
            "exists (use kemeny_optimal or median aggregation)"
        )
    order = list(
        nx.lexicographical_topological_sort(
            graph, key=lambda item: (type(item).__name__, repr(item))
        )
    )
    ranking = PartialRanking.from_sequence(order)

    items, cost = pair_cost_array(rankings, p)
    index = {item: i for i, item in enumerate(items)}
    total = 0.0
    for position, x in enumerate(order):
        for y in order[position + 1 :]:
            total += cost[index[x], index[y]]
    return ranking, float(total)
