"""Brute-force optimal aggregations (small domains only).

The approximation theorems of §6 bound the median algorithm against the
*true* optimum, so measuring real approximation ratios requires computing
that optimum. The search spaces:

* full rankings: ``n!`` permutations;
* partial rankings: the n-th Fubini number of bucket orders
  (1, 1, 3, 13, 75, 541, 4683, ...);
* top-k lists: ``n! / (n-k)!`` ordered k-subsets.

All three enumerations are exposed with a pluggable metric; they are
deliberately simple and exhaustively correct, serving as oracles for the
tests and as the denominators of experiments E5–E7.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from itertools import permutations

from repro._util import ordered_partitions
from repro.aggregate.objective import total_distance, validate_profile
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError

Metric = str | Callable[[PartialRanking, PartialRanking], float]

__all__ = [  # repro: noqa[RP011] — factorial-time exact oracles for tests
    "all_full_rankings",
    "all_partial_rankings",
    "all_top_k_lists",
    "optimal_full_ranking",
    "optimal_partial_ranking_bruteforce",
    "optimal_top_k",
]

_MAX_BRUTE_FORCE = 9


def _guard_size(n: int, what: str) -> None:
    if n > _MAX_BRUTE_FORCE:
        raise AggregationError(
            f"brute-force {what} enumeration refused for n={n} > {_MAX_BRUTE_FORCE}"
        )


def all_full_rankings(domain: Sequence) -> Iterator[PartialRanking]:
    """Yield every full ranking of a domain (n! of them)."""
    _guard_size(len(domain), "full-ranking")
    for order in permutations(sorted(domain, key=repr)):
        yield PartialRanking.from_sequence(order)


def all_partial_rankings(domain: Sequence) -> Iterator[PartialRanking]:
    """Yield every bucket order of a domain (Fubini-number many)."""
    _guard_size(len(domain), "bucket-order")
    for buckets in ordered_partitions(sorted(domain, key=repr)):
        yield PartialRanking(buckets)


def all_top_k_lists(domain: Sequence, k: int) -> Iterator[PartialRanking]:
    """Yield every top-k list over a domain."""
    _guard_size(len(domain), "top-k")
    items = sorted(domain, key=repr)
    if not 0 < k <= len(items):
        raise AggregationError(f"k={k} out of range for domain of size {len(items)}")
    for top in permutations(items, k):
        yield PartialRanking.top_k(list(top), items)


def _optimum(
    candidates: Iterator[PartialRanking],
    rankings: Sequence[PartialRanking],
    metric: Metric,
) -> tuple[PartialRanking, float]:
    best: PartialRanking | None = None
    best_cost = float("inf")
    for candidate in candidates:
        cost = total_distance(candidate, rankings, metric)
        if cost < best_cost:
            best = candidate
            best_cost = cost
    if best is None:  # pragma: no cover - enumerations are never empty
        raise AggregationError("no candidates enumerated")
    return best, best_cost


def optimal_full_ranking(
    rankings: Sequence[PartialRanking],
    metric: Metric = "f_prof",
) -> tuple[PartialRanking, float]:
    """Exhaustive optimal full-ranking aggregation and its cost."""
    domain = validate_profile(rankings)
    return _optimum(all_full_rankings(sorted(domain, key=repr)), rankings, metric)


def optimal_partial_ranking_bruteforce(
    rankings: Sequence[PartialRanking],
    metric: Metric = "f_prof",
) -> tuple[PartialRanking, float]:
    """Exhaustive optimal bucket-order aggregation and its cost."""
    domain = validate_profile(rankings)
    return _optimum(all_partial_rankings(sorted(domain, key=repr)), rankings, metric)


def optimal_top_k(
    rankings: Sequence[PartialRanking],
    k: int,
    metric: Metric = "f_prof",
) -> tuple[PartialRanking, float]:
    """Exhaustive optimal top-k-list aggregation and its cost."""
    domain = validate_profile(rankings)
    return _optimum(all_top_k_lists(sorted(domain, key=repr), k), rankings, metric)
