"""Optional profiling hooks around the numpy kernels.

Two independent tools:

* :func:`kernel_timer` — a cheap ``time.perf_counter_ns`` context
  manager that records one observation into the histogram
  ``kernel.<name>`` (and mirrors the duration as a span attribute when
  one is open). Like the rest of :mod:`repro.obs` it is a strict no-op
  unless a trace session is active.
* :func:`profiled` — a cProfile wrapper for offline deep dives; armed
  explicitly or via ``REPRO_PROFILE=out.pstats`` around a whole run.
  This is deliberately *not* tied to trace sessions: cProfile's
  overhead is far above the <2% budget the span layer guarantees.
"""

from __future__ import annotations

import cProfile
import os
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = ["ENV_PROFILE", "kernel_timer", "profiled"]

ENV_PROFILE = "REPRO_PROFILE"


@contextmanager
def kernel_timer(name: str) -> Iterator[None]:
    """Record one ``kernel.<name>`` histogram observation (nanoseconds)."""
    if not _spans.enabled():
        yield
        return
    start = time.perf_counter_ns()
    try:
        yield
    finally:
        elapsed = time.perf_counter_ns() - start
        _metrics.histogram(f"kernel.{name}").observe(float(elapsed))
        _spans.set_attr(f"kernel.{name}.ns", elapsed)


@contextmanager
def profiled(path: str | None = None) -> Iterator[cProfile.Profile | None]:
    """cProfile the enclosed block, dumping stats to ``path`` if given.

    With ``path=None`` the destination is taken from ``REPRO_PROFILE``;
    if that is unset too, the block runs unprofiled (yields ``None``),
    so call sites can wrap hot paths unconditionally.
    """
    if path is None:
        path = os.environ.get(ENV_PROFILE)
    if not path:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
