"""Structured tracing: nested spans with exact work counters.

A *span* is one timed region of work — a kernel call, a fuzz round, an
experiment — with monotonic-clock wall time (``time.perf_counter_ns``),
free-form attributes (strategy chosen, engine resolved, problem sizes)
and exact integer counters (pairs compared, cells touched, cache hits).
Spans nest: ``trace("outer")`` then ``trace("inner")`` attaches the
inner span as a child of the outer one via a thread-local stack.

Activation is opt-in twice over:

* programmatically — ``with obs.session("trace.jsonl"):`` (or
  ``obs.capture()`` to collect spans in memory), and
* by environment — ``REPRO_TRACE=path`` (``-`` for stderr) arms a
  process-wide session at import time.

When no session is active every entry point is a strict no-op:
``trace(...)`` returns a shared pre-built context manager and
``add``/``set_attr`` return after one truthiness check, so instrumented
kernels pay no measurable cost (enforced by ``benchmarks/bench_obs.py``).

Sessions form a stack (``_SESSIONS``); completed *root* spans are handed
to the top session only. This is what makes worker propagation safe:
``parallel.parallel_map`` workers push a ``capture()`` session on entry,
so a worker's spans go to that capture — never to a file handle or env
session inherited from the parent — and are shipped back to the parent
pickled as dicts, where :func:`attach_worker_spans` grafts them under
the calling span tagged with the worker id.
"""

from __future__ import annotations

import atexit
import functools
import os
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from types import TracebackType
from typing import Any, ParamSpec, TypeVar

from repro.obs import metrics as _metrics

__all__ = [
    "ENV_TRACE",
    "Span",
    "TraceSession",
    "add",
    "attach_worker_spans",
    "capture",
    "current_span",
    "enabled",
    "session",
    "set_attr",
    "trace",
    "traced",
]

ENV_TRACE = "REPRO_TRACE"

P = ParamSpec("P")
R = TypeVar("R")


class Span:
    """One timed region of work, with attributes, counters and children."""

    __slots__ = (
        "name",
        "attrs",
        "start_ns",
        "duration_ns",
        "counters",
        "children",
        "pid",
        "worker",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.start_ns = 0
        self.duration_ns = 0
        self.counters: dict[str, int | float] = {}
        self.children: list[Span] = []
        self.pid = os.getpid()
        self.worker: int | None = None

    @property
    def self_ns(self) -> int:
        """Wall time not accounted for by direct children (clamped at 0).

        Worker children run concurrently with the parent and with each
        other, so their summed durations can exceed the parent's wall
        time — the clamp absorbs that, and a ``parallel.map`` span's
        self-time reads as coordination overhead rather than the whole
        pool wall time.
        """
        child_ns = sum(c.duration_ns for c in self.children)
        return max(0, self.duration_ns - child_ns)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
        }
        if self.attrs:
            data["attrs"] = self.attrs
        if self.counters:
            data["counters"] = self.counters
        if self.worker is not None:
            data["worker"] = self.worker
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Span:
        span = cls(str(data["name"]), dict(data.get("attrs", {})))
        span.start_ns = int(data["start_ns"])
        span.duration_ns = int(data["duration_ns"])
        span.pid = int(data.get("pid", 0))
        worker = data.get("worker")
        span.worker = None if worker is None else int(worker)
        span.counters = {str(k): v for k, v in data.get("counters", {}).items()}
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration_ns={self.duration_ns})"


class _Local(threading.local):
    def __init__(self) -> None:
        self.stack: list[Span] = []


_LOCAL = _Local()

#: Active sessions, bottom to top; completed root spans go to the top.
_SESSIONS: list["TraceSession"] = []


def enabled() -> bool:
    """Whether any trace session is currently active in this process."""
    return bool(_SESSIONS)


def current_span() -> Span | None:
    """The innermost open span on this thread, if tracing is active."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


class _NoopContext:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NOOP = _NoopContext()


class _SpanContext:
    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        _LOCAL.stack.append(span)
        span.start_ns = time.perf_counter_ns()
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        span = self._span
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        if exc_type is not None:
            span.attrs["error"] = exc_type.__name__
        stack = _LOCAL.stack
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        elif _SESSIONS:
            _SESSIONS[-1]._finish_root(span)


def trace(name: str, **attrs: Any) -> _NoopContext | _SpanContext:
    """Open a span named ``name`` — or do nothing if tracing is disabled."""
    if not _SESSIONS:
        return _NOOP
    return _SpanContext(Span(name, attrs or None))


def traced(name: str | None = None) -> Callable[[Callable[P, R]], Callable[P, R]]:
    """Decorator form of :func:`trace`; defaults to the qualified name."""

    def decorate(fn: Callable[P, R]) -> Callable[P, R]:
        span_name = name if name is not None else f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: P.args, **kwargs: P.kwargs) -> R:
            if not _SESSIONS:
                return fn(*args, **kwargs)
            with _SpanContext(Span(span_name)):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def add(name: str, value: int | float = 1) -> None:
    """Increment counter ``name`` on the current span and process-wide."""
    if not _SESSIONS:
        return
    stack = _LOCAL.stack
    if stack:
        counters = stack[-1].counters
        counters[name] = counters.get(name, 0) + value
    _metrics.counter(name).inc(value)


def set_attr(name: str, value: Any) -> None:
    """Attach an attribute to the current span (no-op when disabled)."""
    if not _SESSIONS:
        return
    stack = _LOCAL.stack
    if stack:
        stack[-1].attrs[name] = value


class TraceSession:
    """A sink for completed root spans; stacked, top receives spans."""

    __slots__ = ("roots", "_sink", "_closed")

    def __init__(self, sink: Any | None = None) -> None:
        self.roots: list[Span] = []
        self._sink = sink
        self._closed = False

    def _finish_root(self, span: Span) -> None:
        if self._sink is not None:
            self._sink.write_span(span)
        else:
            self.roots.append(span)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            self._sink.close(_metrics.snapshot())


def _push(sess: TraceSession) -> None:
    _SESSIONS.append(sess)  # repro: noqa[RP012] — worker capture() opens a per-process session whose spans are returned to the parent, not shared


def _pop(sess: TraceSession) -> None:
    if sess in _SESSIONS:
        _SESSIONS.remove(sess)  # repro: noqa[RP012] — closes the same per-process session _push opened inside the worker
    sess.close()


@contextmanager
def session(path: str) -> Iterator[TraceSession]:
    """Write completed root spans to ``path`` as JSON lines (``-`` = stderr)."""
    from repro.obs.export import JsonlSink

    sess = TraceSession(JsonlSink(path))
    _push(sess)
    try:
        yield sess
    finally:
        _pop(sess)


@contextmanager
def capture() -> Iterator[TraceSession]:
    """Collect completed root spans in memory (``session.roots``)."""
    sess = TraceSession()
    _push(sess)
    try:
        yield sess
    finally:
        _pop(sess)


def attach_worker_spans(span_dicts: list[dict[str, Any]], worker: int) -> None:
    """Graft spans captured in a worker process under the current span.

    ``span_dicts`` is the pickled form shipped back by the worker (see
    ``parallel.parallel_map``). Each rebuilt span is tagged with the
    worker id, attached as a child of the calling span (or emitted as a
    root if none is open), and its counters — summed over the whole
    worker subtree — are folded into this process's metric registry so
    totals stay exact across the process boundary.
    """
    if not _SESSIONS or not span_dicts:
        return
    stack = _LOCAL.stack
    for data in span_dicts:
        span = Span.from_dict(data)
        span.worker = worker
        totals: dict[str, int | float] = {}
        _sum_counters(span, totals)
        _metrics.merge_counters(totals)
        if stack:
            stack[-1].children.append(span)
        else:
            _SESSIONS[-1]._finish_root(span)


def _sum_counters(span: Span, totals: dict[str, int | float]) -> None:
    for name, value in span.counters.items():
        totals[name] = totals.get(name, 0) + value
    for child in span.children:
        _sum_counters(child, totals)


def _activate_from_env() -> None:
    path = os.environ.get(ENV_TRACE)
    if not path:
        return
    from repro.obs.export import JsonlSink

    sess = TraceSession(JsonlSink(path, lazy=True))
    # The env session sits at the *bottom* of the stack so programmatic
    # sessions opened later (including worker-side capture()) win.
    _SESSIONS.insert(0, sess)
    atexit.register(sess.close)


_activate_from_env()
