"""Trace exporters: JSON-lines files, console span trees, Prometheus text.

The JSONL schema is one object per line, discriminated by ``kind``:

* ``{"kind": "span", ...Span.to_dict()...}`` — one completed root span
  per line, children nested inline; and
* ``{"kind": "metrics", "counters": {...}, "histograms": {...},
  "dropped_spans": N}`` — a single final snapshot written on close.

:class:`JsonlSink` caps the number of span lines per file
(:data:`SPAN_CAP`) so tracing a whole test suite cannot fill the disk;
the cap is never silent — the drop count is recorded in the closing
metrics line and surfaced by the CLI summarizer.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Any

from repro.obs.spans import Span

__all__ = [
    "SPAN_CAP",
    "JsonlSink",
    "prometheus_text",
    "read_trace",
    "render_tree",
]

#: Maximum span lines per trace file; overflow is counted, not silent.
SPAN_CAP = 100_000


class JsonlSink:
    """Write root spans (and a final metrics snapshot) as JSON lines.

    ``path`` may be ``-`` for stderr. With ``lazy=True`` the file is not
    opened until the first span arrives — important for the env-armed
    session, which every worker process inherits but most never use.
    """

    __slots__ = ("path", "written", "dropped", "_fh", "_lazy")

    def __init__(self, path: str, *, lazy: bool = False) -> None:
        self.path = path
        self.written = 0
        self.dropped = 0
        self._fh: IO[str] | None = None
        self._lazy = lazy
        if not lazy:
            self._open()

    def _open(self) -> IO[str]:
        if self._fh is None:
            if self.path == "-":
                self._fh = sys.stderr
            else:
                self._fh = open(self.path, "w", encoding="utf-8")
        return self._fh

    def write_span(self, span: Span) -> None:
        if self.written >= SPAN_CAP:
            self.dropped += 1
            return
        record = span.to_dict()
        record["kind"] = "span"
        fh = self._open()
        fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self.written += 1

    def close(self, metrics_snapshot: dict[str, Any]) -> None:
        if self._fh is None and self.written == 0 and self._lazy:
            return
        record = dict(metrics_snapshot)
        record["kind"] = "metrics"
        record["dropped_spans"] = self.dropped
        fh = self._open()
        fh.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        fh.flush()
        if fh is not sys.stderr:
            fh.close()
        self._fh = None


def read_trace(path: str) -> tuple[list[Span], dict[str, Any]]:
    """Parse a trace file back into root spans + the metrics snapshot.

    Blank lines are skipped; unknown ``kind`` values are ignored so the
    schema can grow. Returns an empty snapshot if the trace was cut off
    before the closing metrics line.
    """
    spans: list[Span] = []
    metrics_snapshot: dict[str, Any] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "span":
                spans.append(Span.from_dict(record))
            elif kind == "metrics":
                metrics_snapshot = record
    return spans, metrics_snapshot


def _format_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f}ms"
    return f"{ns / 1e3:.1f}us"


def _render_span(span: Span, indent: int, lines: list[str]) -> None:
    parts = [f"{'  ' * indent}{span.name}  {_format_ns(span.duration_ns)}"]
    if span.worker is not None:
        parts.append(f"[worker {span.worker} pid {span.pid}]")
    if span.attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())))
    if span.counters:
        parts.append(
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(span.counters.items())) + "}"
        )
    lines.append("  ".join(parts))
    for child in span.children:
        _render_span(child, indent + 1, lines)


def render_tree(spans: list[Span]) -> str:
    """An indented console rendering of the span forest."""
    lines: list[str] = []
    for span in spans:
        _render_span(span, 0, lines)
    return "\n".join(lines)


def prometheus_text(snapshot: dict[str, Any] | None = None) -> str:
    """A Prometheus-style text exposition of the metric registry.

    Dotted metric names become underscore-joined (``metrics.pairs`` →
    ``repro_metrics_pairs``); histograms expose ``_count`` and ``_sum``.
    """
    from repro.obs import metrics as _metrics

    if snapshot is None:
        snapshot = _metrics.snapshot()
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if isinstance(counters, dict):
        for name, value in sorted(counters.items()):
            flat = "repro_" + str(name).replace(".", "_")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {value}")
    histograms = snapshot.get("histograms", {})
    if isinstance(histograms, dict):
        for name, data in sorted(histograms.items()):
            flat = "repro_" + str(name).replace(".", "_")
            lines.append(f"# TYPE {flat} summary")
            lines.append(f"{flat}_count {data['count']}")
            lines.append(f"{flat}_sum {data['sum']}")
    return "\n".join(lines) + ("\n" if lines else "")
