"""Process-wide metric counters and histograms (stdlib only).

Metrics are keyed by stable dotted names (``metrics.pairs``,
``aggregate.online.sort_cache.hits``, ...) so dashboards and the trace
summarizer can aggregate across runs without string munging; the full
naming scheme lives in ``docs/OBSERVABILITY.md``. The registry is
process-global and guarded by a lock, but — like every entry point of
:mod:`repro.obs` — mutation is a strict no-op unless a trace session is
active, so the disabled-mode cost in the kernels is one truthiness check.

:class:`Counter` is a monotonically increasing exact sum (ints stay
ints, so pair/cell counts admit ``==`` assertions). :class:`Histogram`
keeps count/sum/min/max plus power-of-four bucket counts — coarse, but
enough to separate "microseconds" from "milliseconds" per kernel without
reservoir sampling.
"""

from __future__ import annotations

import re
import threading

__all__ = [
    "Counter",
    "Histogram",
    "counter",
    "histogram",
    "merge_counters",
    "snapshot",
    "reset",
]

#: Metric names are dotted lowercase words — stable identifiers, not
#: free-form labels.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Upper edges of the histogram buckets (power-of-four ladder). Raw
#: observations are unitless; the kernel-profiling hooks observe
#: nanoseconds, for which the ladder spans 1 µs .. ~4.4 s.
_BUCKET_EDGES: tuple[float, ...] = tuple(float(4**exp) * 1e3 for exp in range(12))


class Counter:
    """A process-wide monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (negative increments are a caller bug)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(_BUCKET_EDGES) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, edge in enumerate(_BUCKET_EDGES):
            if value <= edge:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }


_LOCK = threading.Lock()
_COUNTERS: dict[str, Counter] = {}
_HISTOGRAMS: dict[str, Histogram] = {}


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} is not a dotted lowercase identifier "
            "(expected e.g. 'metrics.pairs')"
        )


def counter(name: str) -> Counter:
    """The process-wide counter named ``name`` (created on first use)."""
    with _LOCK:
        existing = _COUNTERS.get(name)
        if existing is None:
            _check_name(name)
            existing = _COUNTERS[name] = Counter(name)
        return existing


def histogram(name: str) -> Histogram:
    """The process-wide histogram named ``name`` (created on first use)."""
    with _LOCK:
        existing = _HISTOGRAMS.get(name)
        if existing is None:
            _check_name(name)
            existing = _HISTOGRAMS[name] = Histogram(name)
        return existing


def merge_counters(counters: dict[str, int | float]) -> None:
    """Fold a counter mapping (e.g. from a worker span) into the registry."""
    for name, value in counters.items():
        if value:
            counter(name).inc(value)


def snapshot() -> dict[str, object]:
    """A JSON-ready snapshot of every counter and histogram."""
    with _LOCK:
        return {
            "counters": {name: c.value for name, c in sorted(_COUNTERS.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(_HISTOGRAMS.items())
            },
        }


def reset() -> None:
    """Drop every metric (test isolation; not part of the serving API)."""
    with _LOCK:
        _COUNTERS.clear()
        _HISTOGRAMS.clear()
