"""Command-line trace inspection: ``python -m repro.obs summarize ...``.

Also reachable as ``python -m repro obs summarize ...``. Subcommands:

* ``summarize trace.jsonl`` — top span names by total self-time (worker
  spans merged into the same table, with call and worker counts),
  followed by counter totals from the closing metrics line (falling
  back to summing span counters for truncated traces);
* ``tree trace.jsonl`` — the indented span forest, timings, attributes
  and counters inline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.obs.export import read_trace, render_tree
from repro.obs.spans import Span

__all__ = ["main"]


def _walk(spans: list[Span]) -> list[Span]:
    out: list[Span] = []
    stack = list(spans)
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(span.children)
    return out


def _summary(spans: list[Span], metrics: dict[str, Any]) -> dict[str, Any]:
    rows: dict[str, dict[str, Any]] = {}
    all_spans = _walk(spans)
    for span in all_spans:
        row = rows.setdefault(
            span.name,
            {"name": span.name, "calls": 0, "self_ns": 0, "total_ns": 0, "workers": set()},
        )
        row["calls"] += 1
        row["self_ns"] += span.self_ns
        row["total_ns"] += span.duration_ns
        if span.worker is not None:
            row["workers"].add(span.worker)

    counters = metrics.get("counters")
    if not isinstance(counters, dict) or not counters:
        # Truncated trace with no closing metrics line: recover totals
        # from the per-span counters instead.
        counters = {}
        for span in all_spans:
            for name, value in span.counters.items():
                counters[name] = counters.get(name, 0) + value

    return {
        "spans": sorted(rows.values(), key=lambda r: -int(r["self_ns"])),
        "counters": dict(sorted(counters.items())),
        "dropped_spans": int(metrics.get("dropped_spans", 0) or 0),
    }


def _format_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.3f}ms"
    return f"{ns / 1e3:.1f}us"


def _print_summary(summary: dict[str, Any], top: int) -> None:
    rows = summary["spans"][:top]
    if rows:
        width = max(len(str(r["name"])) for r in rows)
        print(f"top {len(rows)} spans by self-time")
        print(f"{'span':<{width}}  {'calls':>7}  {'self':>10}  {'total':>10}  workers")
        for row in rows:
            workers = (
                ",".join(str(w) for w in sorted(row["workers"])) if row["workers"] else "-"
            )
            print(
                f"{row['name']:<{width}}  {row['calls']:>7}  "
                f"{_format_ns(row['self_ns']):>10}  "
                f"{_format_ns(row['total_ns']):>10}  {workers}"
            )
    else:
        print("no spans recorded")
    counters = summary["counters"]
    if counters:
        print()
        print("counter totals")
        cwidth = max(len(name) for name in counters)
        for name, value in counters.items():
            print(f"{name:<{cwidth}}  {value}")
    if summary["dropped_spans"]:
        print()
        print(f"warning: {summary['dropped_spans']} spans dropped at the file cap")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect REPRO_TRACE JSON-lines trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="top spans by self-time + counter totals")
    p_sum.add_argument("trace", help="trace file written via REPRO_TRACE / obs.session")
    p_sum.add_argument("--top", type=int, default=20, help="span rows to show")
    p_sum.add_argument("--format", choices=["text", "json"], default="text")

    p_tree = sub.add_parser("tree", help="print the full span tree")
    p_tree.add_argument("trace", help="trace file written via REPRO_TRACE / obs.session")

    args = parser.parse_args(argv)
    try:
        spans, metrics = read_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2

    try:
        if args.command == "tree":
            print(render_tree(spans))
            return 0

        summary = _summary(spans, metrics)
        if args.format == "json":
            for row in summary["spans"]:
                row["workers"] = sorted(row["workers"])
            print(json.dumps(summary, indent=2))
        else:
            _print_summary(summary, args.top)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly like a
        # well-behaved unix filter (devnull swap avoids a second raise
        # from the interpreter flushing stdout at shutdown)
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
