"""repro.obs: zero-dependency observability for the ranking kernels.

Structured tracing (:mod:`repro.obs.spans`), process-wide metrics
(:mod:`repro.obs.metrics`), exporters (:mod:`repro.obs.export`),
profiling hooks (:mod:`repro.obs.profile`) and a trace-inspection CLI
(:mod:`repro.obs.cli`). Everything is stdlib-only and a strict no-op
unless armed via ``REPRO_TRACE`` or ``obs.session(...)`` — see
``docs/OBSERVABILITY.md`` for the span/counter naming scheme and usage.
"""

from repro.obs.metrics import counter, histogram, snapshot
from repro.obs.profile import kernel_timer, profiled
from repro.obs.spans import (
    ENV_TRACE,
    Span,
    TraceSession,
    add,
    attach_worker_spans,
    capture,
    current_span,
    enabled,
    session,
    set_attr,
    trace,
    traced,
)

__all__ = [
    "ENV_TRACE",
    "Span",
    "TraceSession",
    "add",
    "attach_worker_spans",
    "capture",
    "counter",
    "current_span",
    "enabled",
    "histogram",
    "kernel_timer",
    "profiled",
    "session",
    "set_attr",
    "snapshot",
    "trace",
    "traced",
]
