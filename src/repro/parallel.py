"""Process-pool plumbing shared by batch kernels and the experiment runner.

One knob, three spellings: the ``jobs`` keyword accepted by
:func:`repro.metrics.batch.pairwise_distance_matrix`, the aggregation entry
points, and :func:`repro.experiments.runner.run_experiments`; the
``--jobs`` CLI flag of ``python -m repro.experiments``; and the
``REPRO_JOBS`` environment variable consulted when neither is given.
``jobs <= 1`` (the default everywhere) means "run serially in-process" —
the pool is strictly opt-in, and every parallel code path is required by
the test suite to produce bit-for-bit the same results as the serial one.

Worker functions must be module-level (picklable); rankings cross the
process boundary via :meth:`PartialRanking.__reduce__
<repro.core.partial_ranking.PartialRanking.__reduce__>`, which ships only
the bucket tuples and lets each worker rebuild its caches locally.

When a :mod:`repro.obs` trace session is active in the parent, the pool
path additionally propagates span context across the process boundary:
each task runs under an in-worker ``obs.capture()`` session, the spans it
records come back pickled alongside the result, and the parent grafts
them under its ``parallel.map`` span tagged with a stable worker id (one
id per distinct worker pid, in order of first appearance). With tracing
disabled the task payloads are exactly the untouched ``fn``/``item``
pairs of the serial path.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, TypeVar

from repro.obs import spans as _spans

if TYPE_CHECKING:
    from repro.core.arena import ArenaHandle, ProfileArena

__all__ = ["ENV_JOBS", "resolve_jobs", "parallel_map", "parallel_map_arena"]

ENV_JOBS = "REPRO_JOBS"

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Parsed ``REPRO_JOBS`` values, keyed by the raw string — the variable
#: is immutable for the life of a normal run, so re-reading and
#: re-parsing it (and re-warning on a typo) on every ``resolve_jobs``
#: call site was pure noise. Keying by the raw value means a test that
#: monkeypatches the environment still sees the new value parsed (and a
#: *new* malformed value warned about) exactly once.
_ENV_CACHE: dict[str, int] = {}


def _reset_jobs_cache() -> None:
    """Forget memoized ``REPRO_JOBS`` parses (test isolation only)."""
    _ENV_CACHE.clear()


def _parse_env_jobs(raw: str) -> int:
    try:
        return int(raw) if raw else 1
    except ValueError:
        warnings.warn(
            f"ignoring malformed {ENV_JOBS}={raw!r} (not an integer); "
            "running serially",
            RuntimeWarning,
            stacklevel=4,
        )
        return 1


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a ``jobs`` request to a concrete worker count (>= 1).

    ``None`` falls back to the ``REPRO_JOBS`` environment variable, and to
    1 (serial) when that is unset. A malformed value also falls back to
    serial but emits a :class:`RuntimeWarning` naming the bad value — a
    typo in ``REPRO_JOBS`` silently disabling parallelism is exactly the
    kind of config error that otherwise goes unnoticed for months. The
    parse is memoized per distinct raw value, so the warning fires once
    per process rather than once per call site. A negative value means
    "all available CPUs". Zero is rejected: it is always a bug, not a
    plausible request.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        jobs = _ENV_CACHE.get(raw)
        if jobs is None:
            jobs = _ENV_CACHE[raw] = _parse_env_jobs(raw)
    if jobs == 0:
        raise ValueError("jobs=0 is invalid; use jobs=1 for serial or a negative value for all CPUs")
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return jobs


def _traced_worker(payload: tuple[Callable[[_T], _R], _T]) -> tuple[_R, list[dict[str, Any]]]:
    """Run one task under an in-worker capture session.

    The capture sits on top of the worker's session stack, so spans the
    task records land here — not in a file sink inherited via
    ``REPRO_TRACE`` — and travel back to the parent as plain dicts.
    """
    fn, item = payload
    # Under the fork start method the worker inherits the parent's open
    # span stack; without this, worker spans would attach to a stale
    # copy of the parent span and never reach the capture session.
    _spans._LOCAL.stack.clear()
    with _spans.capture() as sess:
        result = fn(item)
    return result, [span.to_dict() for span in sess.roots]


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results come back in input order regardless of worker scheduling, so a
    caller that sums or concatenates them gets the same floating-point
    result as the serial loop. With ``jobs <= 1`` (after
    :func:`resolve_jobs`) no pool is created at all.
    """
    work: Sequence[_T] = items if isinstance(items, Sequence) else list(items)
    n_jobs = min(resolve_jobs(jobs), len(work)) if work else 1
    if n_jobs <= 1:
        return [fn(item) for item in work]
    if not _spans.enabled():
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(fn, work, chunksize=max(1, chunksize)))
    with _spans.trace("parallel.map", jobs=n_jobs, items=len(work)):
        payloads = [(fn, item) for item in work]
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            shipped = list(
                pool.map(_traced_worker, payloads, chunksize=max(1, chunksize))
            )
        return _graft_worker_spans(shipped)


def _graft_worker_spans(shipped: list[tuple[_R, list[dict[str, Any]]]]) -> list[_R]:
    """Re-attach pickled worker spans under the live ``parallel.map`` span.

    Worker pids are mapped to stable 0-based worker ids in order of first
    appearance, so trace output is deterministic across pool scheduling.
    """
    pid_to_worker: dict[int, int] = {}
    results: list[_R] = []
    for result, span_dicts in shipped:
        if span_dicts:
            pid = int(span_dicts[0].get("pid", 0))
            worker = pid_to_worker.setdefault(pid, len(pid_to_worker))
            _spans.attach_worker_spans(span_dicts, worker)
        results.append(result)
    return results


#: Arenas this worker process has mapped, held strongly for the life of
#: the pool so every task against the same arena reuses one mapping
#: (attach is memoized per segment; the OS reclaims mappings at worker
#: exit, and only the creating process ever unlinks).
_WORKER_ARENAS: dict[str, "ProfileArena"] = {}


def _worker_arena(handle: "ArenaHandle") -> "ProfileArena":
    arena = _WORKER_ARENAS.get(handle.name)
    if arena is None or not arena.attached:
        from repro.core.arena import ProfileArena

        arena = ProfileArena.attach(handle)
        _WORKER_ARENAS[handle.name] = arena  # repro: noqa[RP012] — worker-local mmap cache; the mapping must outlive the task, and dying with the worker is its intended lifetime
    return arena


def _arena_worker(
    payload: tuple["ArenaHandle", Callable[["ProfileArena", _T], _R], _T],
) -> _R:
    handle, fn, item = payload
    return fn(_worker_arena(handle), item)


def _traced_arena_worker(
    payload: tuple["ArenaHandle", Callable[["ProfileArena", _T], _R], _T],
) -> tuple[_R, list[dict[str, Any]]]:
    """Arena variant of :func:`_traced_worker`: same span capture protocol."""
    handle, fn, item = payload
    _spans._LOCAL.stack.clear()
    with _spans.capture() as sess:
        result = fn(_worker_arena(handle), item)
    return result, [span.to_dict() for span in sess.roots]


def parallel_map_arena(
    fn: Callable[["ProfileArena", _T], _R],
    items: Iterable[_T],
    arena: "ProfileArena",
    *,
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_R]:
    """``[fn(arena, x) for x in items]`` with zero-copy worker dispatch.

    The arena-aware twin of :func:`parallel_map`: instead of pickling
    profile rows into every task, each task ships only the
    :class:`~repro.core.arena.ArenaHandle` (a segment name and a shape)
    and the worker maps the shared-memory matrices in place — first task
    pays one ``mmap``, later tasks reuse it. ``fn`` receives the
    process-local arena as its first argument and must treat it as
    read-only. Results come back in input order; the serial path calls
    ``fn`` with the caller's own arena, so ``jobs`` levels are required
    (and tested) to agree bit for bit.
    """
    work: Sequence[_T] = items if isinstance(items, Sequence) else list(items)
    n_jobs = min(resolve_jobs(jobs), len(work)) if work else 1
    if n_jobs <= 1:
        return [fn(arena, item) for item in work]
    handle = arena.handle()
    payloads = [(handle, fn, item) for item in work]
    if not _spans.enabled():
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(_arena_worker, payloads, chunksize=max(1, chunksize)))
    with _spans.trace(
        "parallel.map_arena", jobs=n_jobs, items=len(work), arena_bytes=handle.nbytes
    ):
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            shipped = list(
                pool.map(_traced_arena_worker, payloads, chunksize=max(1, chunksize))
            )
        return _graft_worker_spans(shipped)
