"""Process-pool plumbing shared by batch kernels and the experiment runner.

One knob, three spellings: the ``jobs`` keyword accepted by
:func:`repro.metrics.batch.pairwise_distance_matrix`, the aggregation entry
points, and :func:`repro.experiments.runner.run_experiments`; the
``--jobs`` CLI flag of ``python -m repro.experiments``; and the
``REPRO_JOBS`` environment variable consulted when neither is given.
``jobs <= 1`` (the default everywhere) means "run serially in-process" —
the pool is strictly opt-in, and every parallel code path is required by
the test suite to produce bit-for-bit the same results as the serial one.

Worker functions must be module-level (picklable); rankings cross the
process boundary via :meth:`PartialRanking.__reduce__
<repro.core.partial_ranking.PartialRanking.__reduce__>`, which ships only
the bucket tuples and lets each worker rebuild its caches locally.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

__all__ = ["ENV_JOBS", "resolve_jobs", "parallel_map"]

ENV_JOBS = "REPRO_JOBS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a ``jobs`` request to a concrete worker count (>= 1).

    ``None`` falls back to the ``REPRO_JOBS`` environment variable, and to
    1 (serial) when that is unset. A malformed value also falls back to
    serial but emits a :class:`RuntimeWarning` naming the bad value — a
    typo in ``REPRO_JOBS`` silently disabling parallelism is exactly the
    kind of config error that otherwise goes unnoticed for months. A
    negative value means "all available CPUs". Zero is rejected: it is
    always a bug, not a plausible request.
    """
    if jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_JOBS}={raw!r} (not an integer); "
                "running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            jobs = 1
    if jobs == 0:
        raise ValueError("jobs=0 is invalid; use jobs=1 for serial or a negative value for all CPUs")
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int | None = None,
    chunksize: int = 1,
) -> list[_R]:
    """``[fn(x) for x in items]``, optionally across a process pool.

    Results come back in input order regardless of worker scheduling, so a
    caller that sums or concatenates them gets the same floating-point
    result as the serial loop. With ``jobs <= 1`` (after
    :func:`resolve_jobs`) no pool is created at all.
    """
    work: Sequence[_T] = items if isinstance(items, Sequence) else list(items)
    n_jobs = min(resolve_jobs(jobs), len(work)) if work else 1
    if n_jobs <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(fn, work, chunksize=max(1, chunksize)))
