"""Uniform-ish random partial rankings with controllable tie structure.

Every generator takes an explicit :class:`random.Random` (or seed) so that
tests and experiments are reproducible. ``tie_bias`` interpolates between a
full ranking (0.0) and a single bucket (1.0): after shuffling, each
boundary between adjacent items is independently kept with probability
``1 - tie_bias``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import InvalidRankingError

__all__ = [
    "resolve_rng",
    "random_full_ranking",
    "random_bucket_order",
    "random_type",
    "random_top_k",
]


def resolve_rng(rng: random.Random | int | None) -> random.Random:
    """Accept a Random, a seed, or None (fresh unseeded Random)."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def _domain_list(domain: Sequence[Item] | int) -> list[Item]:
    if isinstance(domain, int):
        if domain <= 0:
            raise InvalidRankingError(f"domain size must be positive, got {domain}")
        return list(range(domain))
    items = list(domain)
    if not items:
        raise InvalidRankingError("domain must be non-empty")
    return items


def random_full_ranking(
    domain: Sequence[Item] | int,
    rng: random.Random | int | None = None,
) -> PartialRanking:
    """A uniformly random permutation of the domain."""
    items = _domain_list(domain)
    generator = resolve_rng(rng)
    generator.shuffle(items)
    return PartialRanking.from_sequence(items)


def random_bucket_order(
    domain: Sequence[Item] | int,
    rng: random.Random | int | None = None,
    tie_bias: float = 0.5,
) -> PartialRanking:
    """A random bucket order with expected bucket size ``1 / (1-tie_bias)``.

    Items are shuffled uniformly, then each gap between adjacent items
    becomes a bucket boundary independently with probability
    ``1 - tie_bias``. ``tie_bias = 0`` yields full rankings;
    ``tie_bias = 1`` yields the single-bucket ranking.
    """
    if not 0.0 <= tie_bias <= 1.0:
        raise InvalidRankingError(f"tie_bias={tie_bias} outside [0, 1]")
    items = _domain_list(domain)
    generator = resolve_rng(rng)
    generator.shuffle(items)
    buckets: list[list[Item]] = [[items[0]]]
    for item in items[1:]:
        if generator.random() < tie_bias:
            buckets[-1].append(item)
        else:
            buckets.append([item])
    return PartialRanking(buckets)


def random_type(
    n: int,
    rng: random.Random | int | None = None,
    max_bucket: int | None = None,
) -> tuple[int, ...]:
    """A random composition of ``n`` (a random bucket type)."""
    if n <= 0:
        raise InvalidRankingError(f"n must be positive, got {n}")
    generator = resolve_rng(rng)
    cap = max_bucket if max_bucket is not None else n
    if cap <= 0:
        raise InvalidRankingError(f"max_bucket must be positive, got {max_bucket}")
    sizes: list[int] = []
    remaining = n
    while remaining:
        size = generator.randint(1, min(cap, remaining))
        sizes.append(size)
        remaining -= size
    return tuple(sizes)


def random_top_k(
    domain: Sequence[Item] | int,
    k: int,
    rng: random.Random | int | None = None,
) -> PartialRanking:
    """A uniformly random top-k list over the domain."""
    items = _domain_list(domain)
    if not 0 < k <= len(items):
        raise InvalidRankingError(f"k={k} out of range for domain of size {len(items)}")
    generator = resolve_rng(rng)
    generator.shuffle(items)
    return PartialRanking.top_k(items[:k], items)
