"""Mallows-model ranking noise.

The Mallows model is the standard generative model for "noisy copies of a
ground-truth ranking": a permutation ``pi`` is drawn with probability
proportional to ``phi ** K(pi, pi0)`` for a reference ranking ``pi0`` and a
dispersion ``phi in (0, 1]``. We use the repeated-insertion construction
(Doignon et al.), which samples exactly in O(n²).

For partial-ranking workloads, :func:`bucketized_mallows` draws a Mallows
permutation and then coarsens it with a random type — modelling a database
attribute that agrees noisily with a latent total order but exposes only
a few distinct values.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import InvalidRankingError
from repro.generators.random import random_type, resolve_rng

__all__ = ["mallows_full_ranking", "bucketized_mallows"]


def _insertion_offset(size: int, phi: float, rng: random.Random) -> int:
    """Sample the insertion offset *from the end* of a prefix of length ``size``.

    Offset ``j`` creates exactly ``j`` new inversions against the reference
    order, so its weight is ``phi ** j``; offset 0 (append at the end)
    keeps the reference order.
    """
    if phi == 1.0:
        return rng.randrange(size + 1)
    weights = [phi**j for j in range(size + 1)]
    total = sum(weights)
    draw = rng.random() * total
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if draw <= cumulative:
            return index
    return size  # floating-point slack


def mallows_full_ranking(
    reference: PartialRanking | Sequence[Item],
    phi: float,
    rng: random.Random | int | None = None,
) -> PartialRanking:
    """Draw one full ranking from the Mallows model around ``reference``.

    ``phi`` close to 0 concentrates on the reference; ``phi = 1`` is the
    uniform distribution. The reference may be a full ranking or any
    ordered sequence of items.
    """
    if not 0.0 < phi <= 1.0:
        raise InvalidRankingError(f"dispersion phi={phi} must lie in (0, 1]")
    if isinstance(reference, PartialRanking):
        if not reference.is_full:
            raise InvalidRankingError("Mallows reference must be a full ranking")
        base = reference.items_in_order()
    else:
        base = list(reference)
    if not base:
        raise InvalidRankingError("Mallows reference must be non-empty")
    generator = resolve_rng(rng)

    order: list[Item] = []
    for step, item in enumerate(base):
        # insert the next reference item near the end of the prefix, with
        # geometric slippage toward the front controlled by phi
        offset = _insertion_offset(step, phi, generator)
        order.insert(step - offset, item)
    return PartialRanking.from_sequence(order)


def bucketized_mallows(
    reference: PartialRanking | Sequence[Item],
    phi: float,
    rng: random.Random | int | None = None,
    max_bucket: int | None = None,
) -> PartialRanking:
    """A Mallows draw coarsened into a random-type bucket order.

    Models a few-valued database attribute correlated with a latent total
    order: the latent permutation is Mallows noise around ``reference``,
    and consecutive runs of it collapse into buckets of a random type.
    """
    full = mallows_full_ranking(reference, phi, rng)
    generator = resolve_rng(rng) if not isinstance(rng, random.Random) else rng
    sizes = random_type(len(full), generator, max_bucket=max_bucket)
    order = full.items_in_order()
    buckets: list[list[Item]] = []
    start = 0
    for size in sizes:
        buckets.append(order[start : start + size])
        start += size
    return PartialRanking(buckets)
