"""Named workloads: reproducible profiles of input rankings.

A *profile* is the aggregation literature's term for the tuple of input
rankings handed to an aggregator. Experiments need three kinds:

* :func:`random_profile_workload` — independent random bucket orders (the
  adversarial, structure-free regime);
* :func:`mallows_profile_workload` — noisy bucketized views of one latent
  ground truth (the meta-search regime: there *is* a right answer);
* :func:`db_profile_workload` — attribute sorts of a synthetic catalog
  (the paper's database regime: ties come from few-valued attributes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partial_ranking import PartialRanking
from repro.db.query import AttributePreference
from repro.db.sources import bibliography_catalog, flight_catalog, restaurant_catalog
from repro.errors import InvalidRankingError
from repro.generators.mallows import bucketized_mallows
from repro.generators.random import (
    random_bucket_order,
    random_full_ranking,
    random_top_k,
    resolve_rng,
)

__all__ = [
    "Workload",
    "random_profile_workload",
    "mallows_profile_workload",
    "db_profile_workload",
    "adversarial_profile_workload",
    "banded_profile_workload",
]


@dataclass(frozen=True, slots=True)
class Workload:
    """A named, reproducible profile of input partial rankings."""

    name: str
    rankings: tuple[PartialRanking, ...]

    @property
    def num_inputs(self) -> int:
        return len(self.rankings)

    @property
    def domain_size(self) -> int:
        return len(self.rankings[0]) if self.rankings else 0

    @property
    def max_bucket(self) -> int:
        return max(max(sigma.type) for sigma in self.rankings)


def random_profile_workload(
    n: int,
    m: int,
    seed: int = 0,
    tie_bias: float = 0.5,
) -> Workload:
    """``m`` independent random bucket orders over ``n`` items."""
    if m <= 0:
        raise InvalidRankingError(f"profile size m={m} must be positive")
    rng = resolve_rng(seed)
    rankings = tuple(
        random_bucket_order(n, rng, tie_bias=tie_bias) for _ in range(m)
    )
    return Workload(name=f"random(n={n},m={m},tie_bias={tie_bias})", rankings=rankings)


def mallows_profile_workload(
    n: int,
    m: int,
    phi: float = 0.3,
    seed: int = 0,
    max_bucket: int | None = None,
) -> Workload:
    """``m`` bucketized Mallows draws around the identity ground truth."""
    if m <= 0:
        raise InvalidRankingError(f"profile size m={m} must be positive")
    rng = resolve_rng(seed)
    reference = list(range(n))
    rankings = tuple(
        bucketized_mallows(reference, phi, rng, max_bucket=max_bucket) for _ in range(m)
    )
    return Workload(name=f"mallows(n={n},m={m},phi={phi})", rankings=rankings)


_RESTAURANT_PREFERENCES = (
    AttributePreference("cuisine", value_order=("thai", "indian", "italian")),
    AttributePreference("price"),
    AttributePreference("stars", reverse=True),
    AttributePreference("distance_miles", bins=(2.0, 5.0, 10.0, 20.0)),
)

_FLIGHT_PREFERENCES = (
    AttributePreference("connections"),
    AttributePreference("price_usd", bins=(150.0, 300.0, 500.0, 750.0)),
    AttributePreference("duration_minutes", bins=(180.0, 300.0, 420.0)),
    AttributePreference("departure_hour", bins=(6.0, 12.0, 18.0)),
)

_BIBLIOGRAPHY_PREFERENCES = (
    AttributePreference("year", reverse=True),
    AttributePreference("citations", reverse=True, bins=(0.0, 5.0, 20.0, 100.0)),
    AttributePreference("area", value_order=("databases", "algorithms")),
    AttributePreference("pages", bins=(8.0, 16.0, 24.0)),
)


def db_profile_workload(
    n: int = 100,
    seed: int = 0,
    catalog: str = "restaurants",
) -> Workload:
    """Attribute sorts of a synthetic catalog (the paper's DB regime).

    ``catalog`` is ``"restaurants"`` or ``"flights"``; each preference of
    the canonical query becomes one input partial ranking.
    """
    if catalog == "restaurants":
        relation = restaurant_catalog(n, seed)
        preferences = _RESTAURANT_PREFERENCES
    elif catalog == "flights":
        relation = flight_catalog(n, seed)
        preferences = _FLIGHT_PREFERENCES
    elif catalog == "bibliography":
        relation = bibliography_catalog(n, seed)
        preferences = _BIBLIOGRAPHY_PREFERENCES
    else:
        raise InvalidRankingError(f"unknown catalog {catalog!r}")
    rankings = tuple(preference.rank(relation) for preference in preferences)
    return Workload(name=f"db({catalog},n={n})", rankings=rankings)


def banded_profile_workload(
    n: int,
    m: int,
    band: int = 6,
    seed: int = 0,
    tie_bias: float = 0.0,
) -> Workload:
    """Sparse-conflict profiles: disagreement confined to small bands.

    A latent ground truth ``0 < 1 < ... < n-1`` is cut into consecutive
    bands of ``band`` items; every voter independently shuffles each band
    internally (optionally merging adjacent band items into tie buckets
    with probability ``tie_bias``) but never moves an item across a band
    boundary. Cross-band pairs are therefore unanimous, so the pairwise
    dominance digraph's strongly-connected components never span a band —
    the regime where SCC-condensed exact Kemeny
    (:func:`repro.aggregate.decompose.kemeny_decomposed`) solves
    instances of hundreds of items that the monolithic Held–Karp DP
    refuses outright. This is the meta-search shape in practice: engines
    agree on tiers and scramble within them.
    """
    if m <= 0:
        raise InvalidRankingError(f"profile size m={m} must be positive")
    if n <= 0:
        raise InvalidRankingError(f"domain size n={n} must be positive")
    if band <= 0:
        raise InvalidRankingError(f"band size band={band} must be positive")
    if not 0.0 <= tie_bias < 1.0:
        raise InvalidRankingError(f"tie_bias={tie_bias} must lie in [0, 1)")
    rng = resolve_rng(seed)
    rankings = []
    for _ in range(m):
        buckets: list[list[int]] = []
        for start in range(0, n, band):
            members = list(range(start, min(start + band, n)))
            rng.shuffle(members)
            for offset, item in enumerate(members):
                # ties never cross a band boundary (offset 0 starts fresh)
                if offset and tie_bias and rng.random() < tie_bias:
                    buckets[-1].append(item)
                else:
                    buckets.append([item])
        rankings.append(PartialRanking(buckets))
    return Workload(
        name=f"banded(n={n},m={m},band={band},tie_bias={tie_bias})",
        rankings=tuple(rankings),
    )


def adversarial_profile_workload(
    n: int,
    seed: int = 0,
    k: int | None = None,
) -> Workload:
    """Extreme tie structures over one domain (the fuzzer's edge cases).

    The profile mixes the degenerate shapes where tie-handling bugs hide:

    * the single bucket of all ``n`` items (every pair tied);
    * a uniformly random full ranking (no ties at all);
    * ``k`` leading singletons followed by one giant bucket of ``n - k``;
    * a random top-``k`` list with the huge tail bucket at the bottom.
    """
    if n <= 0:
        raise InvalidRankingError(f"domain size n={n} must be positive")
    if k is None:
        k = max(1, n // 4)
    if not 0 < k <= n:
        raise InvalidRankingError(f"k={k} out of range for domain of size {n}")
    rng = resolve_rng(seed)
    domain = list(range(n))
    shuffled = domain.copy()
    rng.shuffle(shuffled)
    if k < n:
        singletons_then_bucket = PartialRanking(
            [*[[item] for item in shuffled[:k]], shuffled[k:]]
        )
    else:
        singletons_then_bucket = PartialRanking.from_sequence(shuffled)
    rankings = (
        PartialRanking.single_bucket(domain),
        random_full_ranking(domain, rng),
        singletons_then_bucket,
        random_top_k(domain, k, rng),
    )
    return Workload(name=f"adversarial(n={n},k={k})", rankings=rankings)
