"""Synthetic ranking generators used by tests, examples, and experiments."""

from repro.generators.mallows import bucketized_mallows, mallows_full_ranking
from repro.generators.random import (
    random_bucket_order,
    random_full_ranking,
    random_top_k,
    random_type,
)
from repro.generators.workloads import (
    Workload,
    adversarial_profile_workload,
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)

__all__ = [
    "random_bucket_order",
    "random_full_ranking",
    "random_top_k",
    "random_type",
    "mallows_full_ranking",
    "bucketized_mallows",
    "Workload",
    "random_profile_workload",
    "mallows_profile_workload",
    "db_profile_workload",
    "adversarial_profile_workload",
]
