"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidRankingError",
    "DomainMismatchError",
    "AggregationError",
    "UnknownMetricError",
    "MetricContractError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidRankingError(ReproError, ValueError):
    """A partial ranking was constructed from malformed input.

    Raised for empty buckets, duplicated items across buckets, unhashable
    items, or top-k parameters that do not fit the domain.
    """


class DomainMismatchError(ReproError, ValueError):
    """Two rankings that must share a domain do not.

    Every metric in the paper is defined over a fixed common domain ``D``;
    comparing rankings over different domains is a caller error, not a
    distance of infinity.
    """


class AggregationError(ReproError, ValueError):
    """An aggregation routine received unusable input.

    Raised for empty input lists, inconsistent domains across input
    rankings, or top-k requests exceeding the domain size.
    """


class UnknownMetricError(AggregationError):
    """A metric name did not resolve in the metric plugin registry.

    Every name-based dispatch surface (``pairwise_distance_matrix``,
    ``aggregate``, the serving layer's distance route) raises this one
    error, whose message lists all registered spellings. Subclassing
    :class:`AggregationError` (itself a ``ValueError``) keeps existing
    ``except ValueError`` / ``except AggregationError`` callers working.
    """


class MetricContractError(ReproError, AssertionError):
    """A runtime metric contract was violated under ``REPRO_DEBUG``.

    Raised by :func:`repro.analysis.contracts.checked_metric` when a
    decorated distance breaks non-negativity, regularity, symmetry, or the
    (near-)triangle inequality with its Proposition 13 / Theorem 7
    constant. Seeing this means a metric implementation — not the caller —
    is wrong.
    """
