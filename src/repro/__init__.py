"""repro — Comparing and Aggregating Rankings with Ties.

A complete implementation of Fagin, Kumar, Mahdian, Sivakumar, Vee,
*Comparing and Aggregating Rankings with Ties* (PODS 2004):

* :class:`PartialRanking` — bucket orders with the paper's position
  semantics, refinement algebra (the ``*`` operator), and top-k lists;
* the four metrics — ``K_prof`` (:func:`kendall`), ``F_prof``
  (:func:`footrule`), ``K_Haus`` (:func:`kendall_hausdorff`), ``F_Haus``
  (:func:`footrule_hausdorff`) — all in O(n log n);
* median rank aggregation with the paper's approximation guarantees
  (:class:`MedianAggregator`), the Figure 1 dynamic program
  (:func:`optimal_partial_ranking`), and the sequential-access MEDRANK /
  NRA algorithms (:func:`medrank`, :func:`nra_median`);
* a database substrate (:class:`Relation`, :class:`PreferenceQuery`)
  reproducing the paper's motivating catalog-search scenario;
* baselines, exact brute-force optima, synthetic workloads, and the
  experiment harness behind EXPERIMENTS.md.

Quickstart
----------
>>> from repro import PartialRanking, MedianAggregator, kendall
>>> by_price = PartialRanking([["thai-palace", "roma"], ["le-bistro"]])
>>> by_stars = PartialRanking([["le-bistro"], ["thai-palace"], ["roma"]])
>>> kendall(by_price, by_stars)
2.5
>>> MedianAggregator((by_price, by_stars)).full_ranking().items_in_order()
['thai-palace', 'le-bistro', 'roma']
"""

from repro.aggregate import (
    MedianAggregator,
    OnlineMedianAggregator,
    kemeny_optimal,
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
    medrank,
    nra_median,
    optimal_bucketing,
    optimal_footrule_aggregation,
    optimal_partial_ranking,
    total_distance,
)
from repro.core import (
    PartialRanking,
    full_refinements,
    is_refinement,
    star,
    star_chain,
)
from repro.db import (
    AttributePreference,
    PreferenceQuery,
    Relation,
    flight_catalog,
    restaurant_catalog,
)
from repro.errors import (
    AggregationError,
    DomainMismatchError,
    InvalidRankingError,
    ReproError,
)
from repro.metrics import (
    footrule,
    footrule_full,
    footrule_hausdorff,
    kendall,
    kendall_full,
    kendall_hausdorff,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "PartialRanking",
    "star",
    "star_chain",
    "is_refinement",
    "full_refinements",
    # metrics
    "kendall",
    "kendall_full",
    "footrule",
    "footrule_full",
    "kendall_hausdorff",
    "footrule_hausdorff",
    # aggregation
    "MedianAggregator",
    "OnlineMedianAggregator",
    "kemeny_optimal",
    "median_scores",
    "median_top_k",
    "median_full_ranking",
    "median_partial_ranking",
    "optimal_bucketing",
    "optimal_partial_ranking",
    "medrank",
    "nra_median",
    "optimal_footrule_aggregation",
    "total_distance",
    # database substrate
    "Relation",
    "AttributePreference",
    "PreferenceQuery",
    "restaurant_catalog",
    "flight_catalog",
    # errors
    "ReproError",
    "InvalidRankingError",
    "DomainMismatchError",
    "AggregationError",
    "__version__",
]
