"""Request coalescing: many concurrent distance calls, one batch kernel.

Under concurrent load, distance requests over the same domain arrive
faster than the per-pair Python path can answer them one by one. The
:class:`DistanceBatcher` holds each request for at most ``window``
seconds; every request for the same ``(codec, metric, p)`` group that
arrives inside the window joins the same *batch*. On flush the batch's
distinct rankings (deduplicated by value — ranking hashes are cached on
the objects) become one profile, a **single**
:func:`repro.metrics.batch.pairwise_distance_matrix` call classifies all
pairs at once, and each waiter receives its matrix entry.

Because the batch kernels are bit-for-bit equal to the two-ranking
metrics, a coalesced answer is *identical* to the per-call answer — the
concurrency tests assert ``==`` on floats, and the
``serve.batch.coalesced`` / ``serve.batch.flushes`` counters make the
"N requests, one kernel call" claim observable.

``window=0`` still coalesces: the flush task is scheduled behind every
task already runnable on the current event-loop tick, so an
``asyncio.gather`` of N requests lands in one batch.
"""

from __future__ import annotations

import asyncio
from typing import Hashable

from repro import obs
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.metrics.batch import pairwise_distance_matrix

__all__ = ["DistanceBatcher"]


class _Batch:
    """One open coalescing window for a ``(codec, metric, p)`` group."""

    __slots__ = ("rankings", "index", "waiters", "task")

    def __init__(self) -> None:
        self.rankings: list[PartialRanking] = []
        self.index: dict[PartialRanking, int] = {}
        self.waiters: list[tuple[int, int, asyncio.Future[float]]] = []
        self.task: asyncio.Task[None] | None = None

    def enlist(self, ranking: PartialRanking) -> int:
        slot = self.index.get(ranking)
        if slot is None:
            slot = len(self.rankings)
            self.index[ranking] = slot
            self.rankings.append(ranking)
        return slot


class DistanceBatcher:
    """Coalesces concurrent distance requests into batch kernel calls.

    One instance per service; requests are grouped by the interned codec
    (domain identity), the canonical metric name, and the Kendall
    penalty ``p``, so every flush is a well-formed single-domain profile.
    """

    __slots__ = ("_window", "_jobs", "_pending")

    def __init__(self, window: float = 0.0, jobs: int | None = None) -> None:
        if window < 0:
            raise ValueError(f"batch window must be >= 0 (got {window})")
        self._window = window
        self._jobs = jobs
        self._pending: dict[Hashable, _Batch] = {}

    @property
    def window(self) -> float:
        return self._window

    async def distance(
        self,
        codec: DomainCodec,
        sigma: PartialRanking,
        tau: PartialRanking,
        metric: str,
        p: float,
    ) -> float:
        """Await the distance, coalescing with concurrent same-group calls."""
        group = (codec, metric, p)
        batch = self._pending.get(group)
        if batch is None:
            batch = _Batch()
            self._pending[group] = batch
            batch.task = asyncio.ensure_future(self._flush_later(group, batch))
        i = batch.enlist(sigma)
        j = batch.enlist(tau)
        future: asyncio.Future[float] = asyncio.get_running_loop().create_future()
        batch.waiters.append((i, j, future))
        obs.add("serve.batch.enqueued")
        return await future

    async def _flush_later(self, group: Hashable, batch: _Batch) -> None:
        await asyncio.sleep(self._window)
        # close the window: later arrivals start a fresh batch
        if self._pending.get(group) is batch:
            del self._pending[group]
        _, metric, p = group
        try:
            if len(batch.rankings) == 1:
                # every waiter asked for d(sigma, sigma); the metrics are
                # metrics, so the answer is exactly 0.0 — no kernel needed
                values = {(0, 0): 0.0}
            else:
                with obs.trace(
                    "serve.batch.flush",
                    metric=metric,
                    rankings=len(batch.rankings),
                    requests=len(batch.waiters),
                ):
                    matrix = pairwise_distance_matrix(
                        batch.rankings, metric, p=p, jobs=self._jobs
                    )
                values = {
                    (i, j): float(matrix[i, j])
                    for i, j, _ in batch.waiters
                }
        except Exception as exc:  # repro: noqa[RP007] — every waiting request must receive the failure; swallowing here would hang clients forever
            for _, _, future in batch.waiters:
                if not future.done():
                    future.set_exception(exc)
            return
        obs.add("serve.batch.flushes")
        obs.add("serve.batch.coalesced", len(batch.waiters))
        for i, j, future in batch.waiters:
            if not future.done():
                future.set_result(values[i, j])

    def pending_groups(self) -> int:
        """Open coalescing windows right now (introspection for stats)."""
        return len(self._pending)

    async def drain(self) -> None:
        """Await every open batch (used by tests and orderly shutdown)."""
        tasks = [b.task for b in list(self._pending.values()) if b.task is not None]
        for task in tasks:
            await task
