"""``python -m repro.serve`` — the serving CLI entry point."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
