"""repro.serve: ranking-as-a-service over the batch kernels.

A stdlib-asyncio HTTP/JSON serving layer exposing distance queries,
consensus queries and per-user ranking updates, backed by a shard map of
:class:`~repro.aggregate.online.OnlineMedianAggregator` instances keyed
by domain through the interned :class:`~repro.core.codec.DomainCodec`.
Concurrent distance requests coalesce into single
:func:`~repro.metrics.batch.pairwise_distance_matrix` calls, answers are
LRU-cached with exact invalidation on shard mutation, and the whole
shard map snapshots/restores across process boundaries through the
existing ``__reduce__`` paths. Every response is bit-for-bit equal to
the serial in-process computation — the stateful test harness in
``tests/test_serve_stateful.py`` proves it operation by operation. See
``docs/SERVING.md`` for the protocol and the harness design.
"""

from repro.serve.batching import DistanceBatcher
from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig, config_from_env
from repro.serve.http import ReproServer
from repro.serve.service import CONSENSUS_KINDS, RankingService
from repro.serve.shards import Shard, ShardMap, SnapshotError

__all__ = [
    "CONSENSUS_KINDS",
    "DistanceBatcher",
    "RankingService",
    "ReproServer",
    "ResultCache",
    "ServeConfig",
    "Shard",
    "ShardMap",
    "SnapshotError",
    "config_from_env",
]
