"""The sharded state behind the service: one aggregator per domain.

A *shard* owns everything the service knows about one item domain: the
interned :class:`~repro.core.codec.DomainCodec` (shard key and encode
table), an :class:`~repro.aggregate.online.OnlineMedianAggregator`
driven exclusively through its voter-keyed ``update``/``forget`` API,
the voters' current rankings (needed to resolve voter-referenced
distance queries), and a monotonically increasing **version** — bumped
on every mutation — that the result cache uses to prove freshness.

The :class:`ShardMap` pickles through the existing ``__reduce__`` paths
(the aggregator serializes as ``(items, tie, rows, voter rows)``,
rankings as their bucket tuples), so :meth:`ShardMap.snapshot` /
:meth:`ShardMap.restore` move the whole serving state across process
boundaries byte-exactly; the codec re-interns on load.
"""

from __future__ import annotations

import pickle
from collections.abc import Iterable, Iterator

from repro import obs
from repro.aggregate.median import MedianTie, _check_tie
from repro.aggregate.online import OnlineMedianAggregator
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError, ReproError

__all__ = ["Shard", "ShardMap", "SnapshotError"]

#: Bumped when the pickled snapshot layout changes.
SNAPSHOT_VERSION = 1


class SnapshotError(ReproError, ValueError):
    """A snapshot blob was malformed or from an incompatible layout."""


class Shard:
    """All serving state for one item domain."""

    __slots__ = ("codec", "aggregator", "voters", "version")

    def __init__(self, domain: frozenset[Item], tie: MedianTie) -> None:
        self.codec = DomainCodec.for_domain(domain)
        self.aggregator = OnlineMedianAggregator(domain, tie=tie)
        self.voters: dict[str, PartialRanking] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self.voters)

    def update(self, voter: str, ranking: PartialRanking) -> bool:
        """Insert or replace ``voter``'s ranking; returns True on replace."""
        replaced = self.aggregator.update(voter, ranking)
        self.voters[voter] = ranking
        self.version += 1
        return replaced

    def remove(self, voter: str) -> None:
        """Drop ``voter`` entirely (raises if unknown)."""
        self.aggregator.forget(voter)
        del self.voters[voter]
        self.version += 1

    def resolve(self, voter: str) -> PartialRanking:
        """The ranking ``voter`` currently contributes (raises if unknown)."""
        try:
            return self.voters[voter]
        except KeyError:
            raise AggregationError(
                f"voter {voter!r} has no ranking in this shard"
            ) from None


class ShardMap:
    """Domain-keyed shards, created on first write, snapshot-portable."""

    __slots__ = ("_tie", "_shards")

    def __init__(self, tie: MedianTie = "mid") -> None:
        _check_tie(tie)
        self._tie: MedianTie = tie
        self._shards: dict[frozenset[Item], Shard] = {}

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self._shards.values())

    @property
    def tie(self) -> MedianTie:
        return self._tie

    def get(self, domain: frozenset[Item]) -> Shard | None:
        """The shard of ``domain`` if one exists (no creation, no raise)."""
        return self._shards.get(domain)

    def shard_for(self, domain: Iterable[Item], *, create: bool = False) -> Shard:
        """The shard of ``domain``; created on demand for writes only."""
        key = domain if isinstance(domain, frozenset) else frozenset(domain)
        if not key:
            raise AggregationError("the shard domain must be non-empty")
        shard = self._shards.get(key)
        if shard is None:
            if not create:
                raise AggregationError(
                    f"no shard holds a domain of {len(key)} items matching the "
                    "request; write to it first with an update"
                )
            shard = Shard(key, self._tie)
            self._shards[key] = shard
            obs.add("serve.shards.created")
        return shard

    def total_voters(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize the whole map (every shard, voters, versions)."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "tie": self._tie,
            "shards": [
                {
                    "items": tuple(shard.codec.items),
                    "aggregator": shard.aggregator,
                    "voters": dict(shard.voters),
                    "shard_version": shard.version,
                }
                for shard in self._shards.values()
            ],
        }
        obs.add("serve.snapshots")
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, blob: bytes) -> "ShardMap":
        """Rebuild a map from :meth:`snapshot` output (validates the layout)."""
        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # repro: noqa[RP007] — unpickling a foreign blob can raise nearly anything; all of it means "bad snapshot"
            raise SnapshotError(f"snapshot blob failed to unpickle: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            found = (
                payload.get("version") if isinstance(payload, dict) else type(payload).__name__
            )
            raise SnapshotError(
                f"snapshot layout version mismatch (expected {SNAPSHOT_VERSION}, got {found})"
            )
        restored = cls(tie=payload["tie"])
        for entry in payload["shards"]:
            domain = frozenset(entry["items"])
            shard = Shard(domain, restored._tie)
            shard.aggregator = entry["aggregator"]
            shard.voters = dict(entry["voters"])
            shard.version = int(entry["shard_version"])
            restored._shards[domain] = shard
        obs.add("serve.restores")
        return restored
