"""A stdlib-asyncio HTTP/1.1 JSON front end for :class:`RankingService`.

No third-party web framework: the container ships only the standard
library, and the protocol surface is deliberately tiny — five POST
routes plus two GETs, all JSON bodies, keep-alive connections with
explicit ``Content-Length`` framing. ``docs/SERVING.md`` documents every
request/response shape.

Routes
======

========  ==================  ===========================================
method    path                body
========  ==================  ===========================================
POST      /v1/update          ``{"domain", "voter", "ranking"}``
POST      /v1/remove          ``{"domain", "voter"}``
POST      /v1/distance        ``{"domain", "sigma", "tau", "metric"?, "p"?}``
POST      /v1/consensus       ``{"domain", "kind"?, "k"?}``
POST      /v1/snapshot        ``{}`` → ``{"snapshot": <base64>}``
POST      /v1/restore         ``{"snapshot": <base64>}``
GET       /v1/stats           —
GET       /v1/healthz         —
========  ==================  ===========================================

``sigma``/``tau`` are either ``{"buckets": [[...], ...]}`` literals or
``{"voter": "<id>"}`` references into the domain's shard. Domain items
and bucket items are JSON scalars (strings / numbers), which round-trip
type-stably through :class:`~repro.core.partial_ranking.PartialRanking`.

Errors map to status codes: malformed JSON / bad shapes / an unknown
metric name (:class:`~repro.errors.UnknownMetricError`, listing every
registered spelling) → 400, unknown routes → 404,
:class:`~repro.errors.ReproError` (unknown voter, domain mismatch...)
→ 409, anything unexpected → 500 (the failure is re-raised into the
server log after the response is written).
"""

from __future__ import annotations

import asyncio
import base64
import json
from collections.abc import Mapping
from typing import Any

from repro import obs
from repro.core.partial_ranking import PartialRanking
from repro.errors import ReproError, UnknownMetricError
from repro.io import SerializationError, ranking_from_dict, ranking_to_dict
from repro.serve.config import ServeConfig
from repro.serve.service import RankingService

__all__ = ["ReproServer", "BadRequest"]

_MAX_BODY = 16 * 1024 * 1024  # 16 MiB: far above any sane ranking payload


class BadRequest(ValueError):
    """The request body was syntactically valid JSON but the wrong shape."""


def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise BadRequest(f"request body is missing the {key!r} field") from None


def _domain_of(payload: Mapping[str, Any]) -> frozenset[Any]:
    domain = _require(payload, "domain")
    if not isinstance(domain, list) or not domain:
        raise BadRequest("'domain' must be a non-empty JSON array of items")
    return frozenset(domain)


def _ranking_of(value: Any, what: str) -> PartialRanking | str:
    """A ranking literal (``{"buckets": ...}``) or voter reference."""
    if isinstance(value, Mapping):
        if "voter" in value:
            voter = value["voter"]
            if not isinstance(voter, str):
                raise BadRequest(f"{what}.voter must be a string")
            return voter
        if "buckets" in value:
            return ranking_from_dict(value)
    raise BadRequest(
        f"{what} must be {{'buckets': [[...], ...]}} or {{'voter': '<id>'}}"
    )


def _render(value: Any) -> Any:
    """JSON-ready form of a service result."""
    if isinstance(value, PartialRanking):
        return ranking_to_dict(value)
    return value


class ReproServer:
    """The asyncio TCP server wrapping one :class:`RankingService`."""

    def __init__(
        self, service: RankingService | None = None, config: ServeConfig | None = None
    ) -> None:
        if service is None:
            service = RankingService(config)
        elif config is not None and config != service.config:
            raise ValueError("pass config through the service, not both")
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        self.host = self.service.config.host
        self.port = self.service.config.port

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain open batches, close the listener."""
        await self.service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload, failure = await self._dispatch(method, path, body)
                await _write_response(writer, status, payload)
                if failure is not None:
                    # the client got its 500; surface the bug to the log
                    raise failure
        except (ConnectionResetError, asyncio.IncompleteReadError, asyncio.CancelledError):
            # torn-down connection, malformed framing, or loop shutdown —
            # nothing to answer; close the transport below
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any], BaseException | None]:
        """Route one request; returns (status, JSON payload, unexpected failure)."""
        route = (method, path)
        if route == ("GET", "/v1/healthz"):
            return 200, {"status": "ok"}, None
        if route == ("GET", "/v1/stats"):
            return 200, {"stats": self.service.stats()}, None
        handler = _ROUTES.get(route)
        if handler is None:
            obs.add("serve.http.unknown_route")
            return 404, {"error": f"no route {method} {path}"}, None
        try:
            payload = json.loads(body) if body else {}
            if not isinstance(payload, dict):
                raise BadRequest("request body must be a JSON object")
            result = await handler(self.service, payload)
            return 200, {"result": _render(result)}, None
        except (
            BadRequest,
            SerializationError,
            UnknownMetricError,
            json.JSONDecodeError,
        ) as exc:
            # UnknownMetricError before its ReproError parent: a metric
            # name that never resolves is a malformed request (400), not
            # a conflict with the current state (409)
            return 400, {"error": str(exc)}, None
        except ReproError as exc:
            return 409, {"error": str(exc)}, None
        except Exception as exc:  # repro: noqa[RP007] — the 500 must reach the client before the failure is re-raised into the server log
            return 500, {"error": f"internal error: {type(exc).__name__}"}, exc


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request; None on clean EOF between requests."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise asyncio.IncompleteReadError(request_line, None)
    method, path, _version = parts
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if content_length > _MAX_BODY:
        raise asyncio.IncompleteReadError(request_line, None)
    body = await reader.readexactly(content_length) if content_length else b""
    return method.upper(), path, body


async def _write_response(
    writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
) -> None:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict"}.get(
        status, "Internal Server Error"
    )
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# ----------------------------------------------------------------------
# Route handlers (thin JSON adapters over the service API)
# ----------------------------------------------------------------------


async def _route_update(service: RankingService, payload: dict[str, Any]) -> Any:
    domain = _domain_of(payload)
    voter = _require(payload, "voter")
    if not isinstance(voter, str):
        raise BadRequest("'voter' must be a string")
    ranking = _ranking_of(_require(payload, "ranking"), "ranking")
    if not isinstance(ranking, PartialRanking):
        raise BadRequest("'ranking' must be a bucket literal, not a voter reference")
    return await service.update(domain, voter, ranking)


async def _route_remove(service: RankingService, payload: dict[str, Any]) -> Any:
    domain = _domain_of(payload)
    voter = _require(payload, "voter")
    if not isinstance(voter, str):
        raise BadRequest("'voter' must be a string")
    return await service.remove(domain, voter)


async def _route_distance(service: RankingService, payload: dict[str, Any]) -> Any:
    domain = _domain_of(payload)
    sigma = _ranking_of(_require(payload, "sigma"), "sigma")
    tau = _ranking_of(_require(payload, "tau"), "tau")
    metric = payload.get("metric", "kendall")
    p = payload.get("p", 0.5)
    if not isinstance(metric, str):
        raise BadRequest("'metric' must be a string")
    if not isinstance(p, (int, float)) or isinstance(p, bool):
        raise BadRequest("'p' must be a number")
    value = await service.distance(domain, sigma, tau, metric=metric, p=float(p))
    return {"distance": value}


async def _route_consensus(service: RankingService, payload: dict[str, Any]) -> Any:
    domain = _domain_of(payload)
    kind = payload.get("kind", "full")
    k = payload.get("k")
    if not isinstance(kind, str):
        raise BadRequest("'kind' must be a string")
    if k is not None and (not isinstance(k, int) or isinstance(k, bool)):
        raise BadRequest("'k' must be an integer")
    result = await service.consensus(domain, kind=kind, k=k)
    if kind == "scores" and isinstance(result, dict):
        # exact floats, [item, score] pairs in the codec's canonical
        # order (JSON object keys would coerce items to strings)
        return {
            "scores": [
                [item, score]
                for item, score in sorted(
                    result.items(),
                    key=lambda kv: (type(kv[0]).__name__, repr(kv[0])),
                )
            ]
        }
    return result


async def _route_snapshot(service: RankingService, payload: dict[str, Any]) -> Any:
    blob = service.snapshot()
    return {"snapshot": base64.b64encode(blob).decode("ascii")}


async def _route_restore(service: RankingService, payload: dict[str, Any]) -> Any:
    encoded = _require(payload, "snapshot")
    if not isinstance(encoded, str):
        raise BadRequest("'snapshot' must be a base64 string")
    try:
        blob = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise BadRequest(f"'snapshot' is not valid base64: {exc}") from exc
    service.restore(blob)
    return {"restored": True, "shards": len(service.shards)}


_ROUTES = {
    ("POST", "/v1/update"): _route_update,
    ("POST", "/v1/remove"): _route_remove,
    ("POST", "/v1/distance"): _route_distance,
    ("POST", "/v1/consensus"): _route_consensus,
    ("POST", "/v1/snapshot"): _route_snapshot,
    ("POST", "/v1/restore"): _route_restore,
}
