"""Serving-layer configuration (the one sanctioned ``REPRO_SERVE_*`` reader).

Environment variables are ambient global state; like ``REPRO_JOBS``
(:mod:`repro.parallel`) and ``REPRO_TRACE`` (:mod:`repro.obs.spans`),
every serving knob is read in exactly one place — this module — and
flows everywhere else through an explicit :class:`ServeConfig` value.
The RP015 analysis rule enforces that no other module under
``repro.serve`` touches ``os.environ``.

Recognized variables (all optional; see :func:`config_from_env`):

``REPRO_SERVE_HOST``
    Bind address for the HTTP server (default ``127.0.0.1``).
``REPRO_SERVE_PORT``
    TCP port (default ``8321``; ``0`` asks the OS for a free port).
``REPRO_SERVE_BATCH_WINDOW``
    Distance-batch coalescing window in **seconds** (default ``0.002``;
    ``0`` coalesces only requests arriving on the same event-loop tick).
``REPRO_SERVE_CACHE``
    Result-cache capacity in entries (default ``1024``; ``0`` disables
    caching).
``REPRO_SERVE_JOBS``
    Worker processes for large coalesced distance batches (default:
    serial, like every other kernel entry point).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.aggregate.median import MedianTie

__all__ = ["ServeConfig", "config_from_env"]  # repro: noqa[RP011] — pure configuration parsing; no hot path to instrument

_DEFAULT_HOST = "127.0.0.1"
_DEFAULT_PORT = 8321
_DEFAULT_BATCH_WINDOW = 0.002
_DEFAULT_CACHE_CAPACITY = 1024


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Immutable configuration for one :class:`~repro.serve.RankingService`.

    ``batch_window`` is the coalescing horizon of the distance batcher:
    concurrent distance requests over the same codec arriving within the
    window are answered from **one** ``pairwise_distance_matrix`` call.
    ``cache_capacity`` bounds the LRU result cache (0 disables it).
    ``tie`` is the median tie rule every shard aggregator uses; it is
    part of the snapshot format, so restored services answer identically.
    """

    host: str = _DEFAULT_HOST
    port: int = _DEFAULT_PORT
    batch_window: float = _DEFAULT_BATCH_WINDOW
    cache_capacity: int = _DEFAULT_CACHE_CAPACITY
    jobs: int | None = None
    tie: MedianTie = "mid"

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0 (got {self.batch_window})")
        if self.cache_capacity < 0:
            raise ValueError(f"cache_capacity must be >= 0 (got {self.cache_capacity})")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535] (got {self.port})")


def _env_number(
    environ: dict[str, str], name: str, default: float, *, integer: bool
) -> float:
    raw = environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw) if integer else float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r} (expected a number); "
            f"using the default {default!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default
    return value


def config_from_env(environ: dict[str, str] | None = None) -> ServeConfig:
    """Build a :class:`ServeConfig` from ``REPRO_SERVE_*`` variables.

    Malformed values warn (``RuntimeWarning``) and fall back to the
    defaults rather than silently changing behaviour — the same contract
    :func:`repro.parallel.resolve_jobs` follows for ``REPRO_JOBS``.
    """
    env = dict(os.environ) if environ is None else environ
    host = env.get("REPRO_SERVE_HOST", _DEFAULT_HOST) or _DEFAULT_HOST
    port = int(_env_number(env, "REPRO_SERVE_PORT", _DEFAULT_PORT, integer=True))
    window = _env_number(
        env, "REPRO_SERVE_BATCH_WINDOW", _DEFAULT_BATCH_WINDOW, integer=False
    )
    capacity = int(
        _env_number(env, "REPRO_SERVE_CACHE", _DEFAULT_CACHE_CAPACITY, integer=True)
    )
    jobs_raw = env.get("REPRO_SERVE_JOBS")
    jobs: int | None = None
    if jobs_raw is not None and jobs_raw.strip():
        jobs = int(_env_number(env, "REPRO_SERVE_JOBS", 1, integer=True))
    return ServeConfig(
        host=host,
        port=port,
        batch_window=max(0.0, window),
        cache_capacity=max(0, capacity),
        jobs=jobs,
    )
