"""``python -m repro.serve`` — run the ranking service.

.. code-block:: console

    python -m repro.serve --port 8321
    python -m repro.serve --port 0 --batch-window 0.002 --cache 4096
    python -m repro serve --port 8321        # via the umbrella CLI

Flags override the ``REPRO_SERVE_*`` environment defaults (see
:mod:`repro.serve.config`). ``--trace out.jsonl`` arms a
:mod:`repro.obs` session around the whole server lifetime so every
request span and ``serve.*`` counter lands in the trace file.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from dataclasses import replace

from repro import obs
from repro.serve.config import ServeConfig, config_from_env
from repro.serve.http import ReproServer

__all__ = ["main", "build_parser", "resolve_config"]  # repro: noqa[RP011] — argparse front end; every served request is instrumented in repro.serve.service


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve distance/consensus/update queries over HTTP/JSON.",
    )
    parser.add_argument("--host", default=None, help="bind address")
    parser.add_argument("--port", type=int, default=None, help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="distance-request coalescing window",
    )
    parser.add_argument(
        "--cache", type=int, default=None, metavar="N", help="result-cache capacity"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="workers for large distance batches"
    )
    parser.add_argument(
        "--trace", metavar="OUT.JSONL", default=None, help="record spans to a trace file"
    )
    return parser


def resolve_config(args: argparse.Namespace) -> ServeConfig:
    """Environment defaults, overridden by explicit flags."""
    config = config_from_env()
    overrides = {
        name: value
        for name, value in (
            ("host", args.host),
            ("port", args.port),
            ("batch_window", args.batch_window),
            ("cache_capacity", args.cache),
            ("jobs", args.jobs),
        )
        if value is not None
    }
    return replace(config, **overrides) if overrides else config


async def _run(config: ServeConfig) -> int:
    server = ReproServer(config=config)
    await server.start()
    print(f"repro.serve listening on http://{server.host}:{server.port}", file=sys.stderr)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = resolve_config(args)
    stack = contextlib.ExitStack()
    if args.trace:
        stack.enter_context(obs.session(args.trace))
    with stack:
        try:
            return asyncio.run(_run(config))
        except KeyboardInterrupt:
            return 0
