"""The serving core: async ranking-as-a-service over the shard map.

:class:`RankingService` is the transport-independent application object —
the HTTP layer (:mod:`repro.serve.http`), the stateful test harness and
the load benchmark all drive exactly these methods, so correctness
proven against the in-process API transfers to the wire protocol.

Request flow:

* **update / remove** mutate one shard through the voter-keyed
  aggregator API, bump the shard version, and invalidate every cached
  answer scoped to that shard's codec — a mutation can never leave a
  stale consensus in the cache.
* **distance** resolves voter references against the shard *at request
  time* (snapshot semantics: a concurrent update does not retroactively
  change an enqueued query), consults the LRU cache (keyed on codec
  identity + the rankings themselves — content-addressed, so immune to
  shard churn by construction), and otherwise awaits the
  :class:`~repro.serve.batching.DistanceBatcher`, which coalesces
  concurrent requests into one ``pairwise_distance_matrix`` call.
* **consensus** answers scores/top-k/full/partial queries straight from
  the shard's online aggregator (bit-for-bit equal to the offline batch
  path), cached under the shard's codec until the next mutation. The
  ``kemeny`` kind instead runs the SCC-condensed *exact* solver over the
  shard's current voter rankings when the instance is certifiably small
  (every dominance component within the DP cap), raising otherwise.
* **snapshot / restore** round-trip the whole shard map through the
  existing ``__reduce__`` pickle paths.

Every request runs under a ``serve.request`` span, counts into
``serve.requests`` / ``serve.requests.<route>``, and records a
``serve.latency.<route>`` histogram observation (nanoseconds) when a
trace session is armed.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

from repro import obs
from repro.aggregate.decompose import kemeny_decomposed
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import AggregationError
import repro.metrics.plugins  # noqa: F401 — registers the first-party metric plugins
from repro.metrics.registry import get_metric
from repro.serve.batching import DistanceBatcher
from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.shards import Shard, ShardMap

__all__ = ["RankingService", "CONSENSUS_KINDS"]

#: Consensus output shapes and the aggregator methods answering them.
#: ``kemeny`` is the certified-exact outlier: answered by the
#: SCC-condensed Held–Karp solver over the shard's voter map, and raising
#: (→ 409) when any dominance component exceeds the per-component DP cap.
CONSENSUS_KINDS = ("scores", "full", "partial", "topk", "kemeny")


@contextmanager
def _route(route: str) -> Iterator[None]:
    """Span + counters + latency histogram around one request."""
    if not obs.enabled():
        yield
        return
    start = time.perf_counter_ns()
    with obs.trace("serve.request", route=route):
        obs.add("serve.requests")
        obs.add(f"serve.requests.{route}")
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - start
            obs.histogram(f"serve.latency.{route}").observe(float(elapsed))


class RankingService:
    """Sharded distance/consensus/update serving over the batch kernels."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self._config = config if config is not None else ServeConfig()
        self._shards = ShardMap(tie=self._config.tie)
        self._cache = ResultCache(self._config.cache_capacity)
        self._batcher = DistanceBatcher(
            window=self._config.batch_window, jobs=self._config.jobs
        )

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def shards(self) -> ShardMap:
        return self._shards

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    async def update(
        self, domain: Iterable[Item], voter: str, ranking: PartialRanking
    ) -> dict[str, object]:
        """Insert or replace ``voter``'s ranking in the domain's shard."""
        with _route("update"):
            shard = self._shards.shard_for(domain, create=True)
            replaced = shard.update(voter, ranking)
            self._cache.invalidate(shard.codec)
            return {
                "voter": voter,
                "replaced": replaced,
                "voters": len(shard),
                "version": shard.version,
            }

    async def remove(self, domain: Iterable[Item], voter: str) -> dict[str, object]:
        """Drop ``voter`` from the domain's shard (raises if unknown)."""
        with _route("remove"):
            shard = self._shards.shard_for(domain)
            shard.remove(voter)
            self._cache.invalidate(shard.codec)
            return {"voter": voter, "voters": len(shard), "version": shard.version}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _resolve_ranking(
        self, shard: Shard | None, domain: frozenset[Item], value: PartialRanking | str
    ) -> PartialRanking:
        """A literal ranking, or a voter reference resolved at request time."""
        if isinstance(value, PartialRanking):
            if value.domain != domain:
                raise AggregationError(
                    "query ranking domain differs from the request domain"
                )
            return value
        if shard is None:
            raise AggregationError(
                f"voter reference {value!r} needs an existing shard for the domain"
            )
        return shard.resolve(value)

    async def distance(
        self,
        domain: Iterable[Item],
        sigma: PartialRanking | str,
        tau: PartialRanking | str,
        metric: str = "kendall",
        p: float = 0.5,
    ) -> float:
        """``d(sigma, tau)`` under ``metric`` — batched, cached, bit-exact.

        ``sigma`` / ``tau`` are literal rankings or voter-id references
        (resolved against the shard when the request is *accepted*, so
        the answer reflects that instant even if the batch flushes after
        further churn).
        """
        with _route("distance"):
            # resolved through the metric plugin registry: every
            # registered spelling (built-in or plugin) is servable, and
            # unknown names raise the shared UnknownMetricError (→ 400)
            canonical = get_metric(metric).name
            key = frozenset(domain) if not isinstance(domain, frozenset) else domain
            if not key:
                raise AggregationError("the query domain must be non-empty")
            shard = self._shards.get(key)
            first = self._resolve_ranking(shard, key, sigma)
            second = self._resolve_ranking(shard, key, tau)
            # stateless queries (no shard yet) still share the interned codec
            codec = shard.codec if shard is not None else DomainCodec.for_domain(key)
            return await self._distance_resolved(codec, first, second, canonical, p)

    async def _distance_resolved(
        self,
        codec: DomainCodec,
        first: PartialRanking,
        second: PartialRanking,
        canonical: str,
        p: float,
    ) -> float:
        cache_key = (canonical, p, frozenset((first, second)))
        cached = self._cache.get(codec, cache_key)
        if cached is not None:
            return float(cached)  # type: ignore[arg-type]
        value = await self._batcher.distance(codec, first, second, canonical, p)
        self._cache.put(codec, cache_key, value)
        return value

    async def consensus(
        self,
        domain: Iterable[Item],
        kind: str = "full",
        k: int | None = None,
    ) -> object:
        """The current aggregate of a shard (Lemma 8 / Theorems 9–11).

        ``kind`` is one of :data:`CONSENSUS_KINDS`; ``topk`` needs ``k``.
        Returns a score ``dict`` for ``scores`` and a
        :class:`PartialRanking` otherwise. ``kemeny`` answers with the
        *certified-exact* ``K^(1/2)`` aggregation of the shard's voters
        via SCC decomposition, raising :class:`AggregationError` (HTTP
        409) when a dominance component exceeds the exact-DP cap — exact
        consensus on easy instances, an explicit refusal (fall back to
        ``full``) on hard ones. Answers are cached under the shard's
        codec and invalidated by any mutation of that shard.
        """
        with _route("consensus"):
            if kind not in CONSENSUS_KINDS:
                raise AggregationError(
                    f"unknown consensus kind {kind!r}; expected one of "
                    f"{CONSENSUS_KINDS}"
                )
            if kind == "topk" and k is None:
                raise AggregationError("consensus kind 'topk' requires k")
            shard = self._shards.shard_for(domain)
            cache_key = ("consensus", kind, k)
            cached = self._cache.get(shard.codec, cache_key)
            if cached is not None:
                return cached
            aggregator = shard.aggregator
            value: object
            if kind == "scores":
                value = aggregator.scores()
            elif kind == "full":
                value = aggregator.full_ranking()
            elif kind == "partial":
                value = aggregator.partial_ranking()
            elif kind == "kemeny":
                # the voter map is the profile; require_exact certifies
                # the answer or raises before any exponential work
                value = kemeny_decomposed(
                    tuple(shard.voters.values()), require_exact=True
                ).ranking
            else:
                value = aggregator.top_k(int(k))  # type: ignore[arg-type]
            self._cache.put(shard.codec, cache_key, value)
            return value

    # ------------------------------------------------------------------
    # Snapshot / restore / stats
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialize the full shard map (cache and batcher are derived state)."""
        with _route("snapshot"):
            return self._shards.snapshot()

    def restore(self, blob: bytes) -> None:
        """Replace the shard map from a snapshot; drops every cached answer."""
        with _route("restore"):
            restored = ShardMap.restore(blob)
            self._shards = restored
            self._cache.clear()

    async def drain(self) -> None:
        """Await every open distance batch (orderly shutdown)."""
        await self._batcher.drain()

    def stats(self) -> dict[str, object]:
        """Structural serving state (always available, obs or not)."""
        return {
            "shards": len(self._shards),
            "voters": self._shards.total_voters(),
            "cache": self._cache.stats,
            "pending_batches": self._batcher.pending_groups(),
            "config": {
                "batch_window": self._config.batch_window,
                "cache_capacity": self._config.cache_capacity,
                "tie": self._config.tie,
                "jobs": self._config.jobs,
            },
        }
