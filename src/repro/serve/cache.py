"""The serving layer's LRU result cache, scoped for exact invalidation.

Cache entries are keyed twice over:

* a **scope** — the interned :class:`~repro.core.codec.DomainCodec` of
  the shard the result was computed against (codec *identity* is domain
  identity, so one ``invalidate(codec)`` drops every answer a shard
  mutation could have changed and nothing else);
* a **key** — the request fingerprint inside the scope. Distance
  entries key on ``(metric, p, frozenset({sigma, tau}))`` — the rankings
  themselves, whose hashes are cached on the objects — so equal queries
  hit regardless of argument order and a cached value can never be stale
  (it depends only on the two immutable rankings). Consensus entries key
  on ``(kind, k)`` and are exactly what shard invalidation exists for.

Hits, misses, evictions and invalidations are reported both through
``repro.obs`` counters (``serve.cache.*``) and as exact local integers
(:attr:`ResultCache.stats`), so the stateful test harness can assert
cache behaviour without arming a trace session.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro import obs

__all__ = ["ResultCache"]

_MISSING = object()


class ResultCache:
    """A scope-aware LRU cache of serving results.

    ``capacity`` bounds the total entry count across scopes; least
    recently *used* entries evict first. ``capacity=0`` disables the
    cache (every ``get`` misses, ``put`` is a no-op), which the test
    harness uses to diff cached against uncached behaviour bit for bit.
    """

    __slots__ = (
        "_capacity", "_entries", "_scope_keys",
        "hits", "misses", "evictions", "invalidations",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0 (got {capacity})")
        self._capacity = capacity
        self._entries: OrderedDict[tuple[Hashable, Hashable], object] = OrderedDict()
        self._scope_keys: dict[Hashable, set[Hashable]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, scope: Hashable, key: Hashable) -> object:
        """The cached value, or ``None`` on a miss (values are never None)."""
        value = self._entries.get((scope, key), _MISSING)
        if value is _MISSING:
            self.misses += 1
            obs.add("serve.cache.misses")
            return None
        self._entries.move_to_end((scope, key))
        self.hits += 1
        obs.add("serve.cache.hits")
        return value

    def put(self, scope: Hashable, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over capacity."""
        if self._capacity == 0:
            return
        full = (scope, key)
        self._entries[full] = value
        self._entries.move_to_end(full)
        self._scope_keys.setdefault(scope, set()).add(key)
        while len(self._entries) > self._capacity:
            (old_scope, old_key), _ = self._entries.popitem(last=False)
            self._forget_scope_key(old_scope, old_key)
            self.evictions += 1
            obs.add("serve.cache.evictions")

    def invalidate(self, scope: Hashable) -> int:
        """Drop every entry computed under ``scope``; returns the count."""
        keys = self._scope_keys.pop(scope, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop((scope, key), None)
        dropped = len(keys)
        self.invalidations += dropped
        obs.add("serve.cache.invalidations", dropped)
        return dropped

    def clear(self) -> None:
        """Drop everything (used on whole-service restore)."""
        self._entries.clear()
        self._scope_keys.clear()

    def _forget_scope_key(self, scope: Hashable, key: Hashable) -> None:
        keys = self._scope_keys.get(scope)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._scope_keys[scope]

    @property
    def stats(self) -> dict[str, int]:
        """Exact local counters (independent of obs sessions)."""
        return {
            "size": len(self._entries),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
