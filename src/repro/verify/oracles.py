"""The oracle registry: every public metric/aggregation entry point paired
with a *reference* implementation and its fast/batch/parallel variants.

An :class:`OracleEntry` is a differential-testing unit: one independent,
deliberately naive computation of a quantity (O(n²) loops over positions,
or the exponential Hausdorff enumeration) plus the list of production code
paths that promise to agree with it bit for bit — the Fenwick/array
kernels, the dense/pairs matrix strategies, and the process-pool variants.
The fuzz driver (:mod:`repro.verify.fuzz`) evaluates every variant of
every entry on generated workloads and reports any disagreement.

Entries declare which ``repro.metrics.__all__`` names they ``cover``; the
RP010 analysis rule cross-references that declaration against the actual
export surface so a new public metric cannot ship without an oracle.

Entries marked ``selftest_only`` are deliberate mutants (e.g. a flipped
tie penalty) used by :mod:`repro.verify.selftest` to prove the harness
can actually catch a bug; they never run in normal fuzzing.
"""

from __future__ import annotations

import pickle
import tempfile
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.aggregate.batch import (
    median_fixed_type_batch,
    median_full_ranking_batch,
    median_partial_ranking_batch,
    median_scores_batch,
    median_top_k_batch,
)
from repro.aggregate.decompose import kemeny_decomposed
from repro.aggregate.kemeny import kemeny_optimal
from repro.aggregate.matching import optimal_footrule_aggregation
from repro.aggregate.medrank import medrank, medrank_out_of_core
from repro.aggregate.median import (
    median_fixed_type,
    median_full_ranking,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.online import OnlineMedianAggregator
from repro.core.arena import ProfileArena
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import PartialRanking
from repro.core.refine import common_full_ranking, star
from repro.db.mmap_lists import SortedListStore
from repro.metrics.batch import pair_counts_matrix, pairwise_distance_matrix
from repro.metrics.fast import (
    count_inversions_array,
    kendall_hausdorff_large,
    kendall_large,
    pair_counts_large,
)
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    footrule_hausdorff_bruteforce,
    kendall_hausdorff,
    kendall_hausdorff_bruteforce,
    kendall_hausdorff_counts,
)
from repro.metrics.kendall import (
    PairCounts,
    kendall,
    kendall_full,
    kendall_naive,
    pair_counts,
)
from repro.metrics.normalized import (
    max_footrule,
    max_kendall,
    normalized_footrule,
    normalized_footrule_hausdorff,
    normalized_kendall,
    normalized_kendall_hausdorff,
)

__all__ = [
    "Rankings",
    "OracleEntry",
    "values_equal",
    "oracle_entries",
]

#: The rankings handed to a check: a (sigma, tau) pair for ``kind="pair"``
#: entries, a whole profile for ``kind="profile"`` entries.
Rankings = tuple[PartialRanking, ...]

_OracleFn = Callable[[Rankings], object]


@dataclass(frozen=True, slots=True)
class OracleEntry:
    """One differential-testing unit: a reference plus agreeing variants."""

    name: str
    kind: str  # "pair" (takes sigma, tau) or "profile" (takes the profile)
    citation: str
    covers: tuple[str, ...]
    reference: _OracleFn
    variants: tuple[tuple[str, _OracleFn], ...]
    #: Skip (or domain-restrict) workloads larger than this — set on the
    #: exponential brute-force oracles and the Held–Karp aggregation.
    max_items: int | None = None
    #: Variant names that spawn process pools; run only on a subsample of
    #: rounds (``--expensive-every``).
    expensive: frozenset[str] = field(default=frozenset())
    #: Deliberate mutant used by the self-test; excluded from normal runs.
    selftest_only: bool = False
    #: Optional workload normalization applied before evaluation (e.g.
    #: star-refining to full rankings); must be idempotent so a replayed
    #: prepared workload is prepared to itself.
    prepare: Callable[[Rankings], Rankings] | None = None

    def variant_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.variants)


def values_equal(expected: object, actual: object) -> bool:
    """Bit-for-bit equality across the value shapes oracles return.

    Handles numpy arrays (shape + element-exact), tuples/lists
    (element-wise recursion), and plain values (``==``; exact float
    equality is *intentional* here — agreement across implementations is
    promised bit for bit, not approximately).
    """
    if isinstance(expected, np.ndarray) or isinstance(actual, np.ndarray):
        a = np.asarray(expected)
        b = np.asarray(actual)
        return a.shape == b.shape and bool(np.array_equal(a, b))
    if isinstance(expected, (tuple, list)) and isinstance(actual, (tuple, list)):
        return len(expected) == len(actual) and all(
            values_equal(u, v) for u, v in zip(expected, actual)
        )
    return bool(expected == actual)


# ----------------------------------------------------------------------
# Naive reference implementations (position loops; no shared kernels)
# ----------------------------------------------------------------------


def _sorted_items(sigma: PartialRanking) -> list[object]:
    return sorted(sigma.domain, key=repr)


def _pair_counts_naive(sigma: PartialRanking, tau: PartialRanking) -> PairCounts:
    """O(n²) pair classification straight from the definitions."""
    items = _sorted_items(sigma)
    discordant = tied_first = tied_second = tied_both = concordant = 0
    for i, x in enumerate(items):
        for y in items[i + 1 :]:
            ds = sigma.position(x) - sigma.position(y)
            dt = tau.position(x) - tau.position(y)
            if ds == 0 and dt == 0:
                tied_both += 1
            elif ds == 0:
                tied_first += 1
            elif dt == 0:
                tied_second += 1
            elif (ds > 0) != (dt > 0):
                discordant += 1
            else:
                concordant += 1
    return PairCounts(
        discordant=discordant,
        tied_first_only=tied_first,
        tied_second_only=tied_second,
        tied_both=tied_both,
        concordant=concordant,
    )


def _footrule_naive(sigma: PartialRanking, tau: PartialRanking) -> float:
    """F_prof as a bare sum of |position differences| (half-integers, so
    every summation order gives the identical float)."""
    return float(
        sum(abs(sigma.position(x) - tau.position(x)) for x in _sorted_items(sigma))
    )


def _kendall_full_naive(sigma: PartialRanking, tau: PartialRanking) -> int:
    """Classical Kendall tau on full rankings: O(n²) discordance count."""
    items = _sorted_items(sigma)
    count = 0
    for i, x in enumerate(items):
        for y in items[i + 1 :]:
            ds = sigma.position(x) - sigma.position(y)
            dt = tau.position(x) - tau.position(y)
            if (ds > 0) != (dt > 0):
                count += 1
    return count


def _normalize(value: float, maximum: float) -> float:
    return 0.0 if maximum == 0 else value / maximum


def _normalized_naive(sigma: PartialRanking, tau: PartialRanking) -> tuple[float, ...]:
    """All four [0, 1]-scaled metrics from naive pieces."""
    n = len(sigma)
    counts = _pair_counts_naive(sigma, tau)
    return (
        _normalize(counts.kendall(0.5), max_kendall(n)),
        _normalize(_footrule_naive(sigma, tau), max_footrule(n)),
        _normalize(float(counts.kendall_hausdorff()), max_kendall(n)),
        _normalize(footrule_hausdorff(sigma, tau), max_footrule(n)),
    )


def _kendall_flipped_tie(sigma: PartialRanking, tau: PartialRanking) -> float:
    """Deliberate mutant of ``K^(1/2)``: also penalizes pairs tied in
    *both* rankings (which the real metric never does). Used by the
    self-test to prove the harness catches an injected bug."""
    counts = pair_counts(sigma, tau)
    return counts.discordant + 0.5 * (
        counts.tied_first_only + counts.tied_second_only + counts.tied_both
    )


# ----------------------------------------------------------------------
# Adapters: two-ranking / profile callables over the Rankings tuple
# ----------------------------------------------------------------------


def _pair(fn: Callable[[PartialRanking, PartialRanking], object]) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return fn(rankings[0], rankings[1])

    return call


def _pair_kendall(fn: Callable[..., float], p: float) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return fn(rankings[0], rankings[1], p)

    return call


def _matrix_entry_pair_counts(strategy: str) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return pair_counts_matrix(rankings[:2], strategy=strategy).pair_counts(0, 1)

    return call


def _matrix_entry_distance(metric: str) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return float(pairwise_distance_matrix(rankings[:2], metric)[0, 1])

    return call


def _kendall_full_inversions(rankings: Rankings) -> object:
    """Cover :func:`count_inversions_array`: on full rankings, discordances
    are inversions of tau's bucket sequence read in sigma's order."""
    sigma, tau = rankings[0], rankings[1]
    codec = DomainCodec.for_profile((sigma, tau))
    x, _ = sigma.dense_arrays(codec)
    y, _ = tau.dense_arrays(codec)
    return count_inversions_array(y[np.argsort(x, kind="stable")])


def _normalized_fast(rankings: Rankings) -> object:
    sigma, tau = rankings[0], rankings[1]
    return (
        normalized_kendall(sigma, tau),
        normalized_footrule(sigma, tau),
        normalized_kendall_hausdorff(sigma, tau),
        normalized_footrule_hausdorff(sigma, tau),
    )


def _refine_to_full(rankings: Rankings) -> Rankings:
    """Star-refine every ranking to a full one against the canonical rho.

    Idempotent (a full ranking refines to itself), so replaying an
    already-prepared workload is safe.
    """
    rho = common_full_ranking(rankings[0])
    return tuple(star(rho, sigma) for sigma in rankings)


def _profile_matrix_reference(
    fn: Callable[[PartialRanking, PartialRanking], float],
) -> _OracleFn:
    """Plain-Python all-pairs matrix from the object-level metric."""

    def call(rankings: Rankings) -> object:
        return np.array(
            [[float(fn(s, t)) for t in rankings] for s in rankings],
            dtype=np.float64,
        )

    return call


def _profile_matrix_variant(metric: str, strategy: str, jobs: int | None) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return pairwise_distance_matrix(rankings, metric, strategy=strategy, jobs=jobs)

    return call


#: The four distance entry points exercised by the arena-vs-object check.
_ALL_BATCH_METRICS = ("kendall", "footrule", "kendall_hausdorff", "footrule_hausdorff")


def _all_metric_matrices(use_arena: bool, jobs: int | None) -> _OracleFn:
    """All four pairwise matrices from either profile representation.

    The arena path encodes the profile into a fresh shared-memory segment,
    computes every matrix from the zero-copy position data, and detaches
    (unlinking the segment) before returning — a leak here would fail the
    arena lifecycle tests, not just this oracle.
    """

    def call(rankings: Rankings) -> object:
        if use_arena:
            with ProfileArena.from_profile(rankings) as arena:
                return tuple(
                    pairwise_distance_matrix(arena, metric, jobs=jobs)
                    for metric in _ALL_BATCH_METRICS
                )
        return tuple(
            pairwise_distance_matrix(rankings, metric, jobs=jobs)
            for metric in _ALL_BATCH_METRICS
        )

    return call


def _matching_variant(jobs: int | None) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return optimal_footrule_aggregation(rankings, jobs=jobs)

    return call


def _kemeny_variant(jobs: int | None) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return kemeny_optimal(rankings, jobs=jobs)

    return call


def _kemeny_monolithic_objective(rankings: Rankings) -> object:
    """The single-DP optimum value (the pre-decomposition code path)."""
    _, objective = kemeny_optimal(rankings, decompose=False)
    return objective


def _kemeny_decomposed_objective(jobs: int | None) -> _OracleFn:
    """The SCC-condensed optimum value.

    Only the *objective* is compared: when several full rankings are
    optimal, the monolithic DP and the per-component DPs may break the
    tie differently, but the optimum value is unique and (for dyadic
    penalties) exactly representable, so equality is bit-for-bit.
    """

    def call(rankings: Rankings) -> object:
        result = kemeny_decomposed(rankings, jobs=jobs, require_exact=True)
        return result.objective

    return call


# -- median aggregation: dict reference engine vs array kernels ---------

_MEDIAN_TIES = ("low", "mid", "high")


def _deterministic_weights(count: int) -> list[float]:
    """A fixed non-uniform positive weight vector (dyadic quarters)."""
    return [1.0 + (index % 4) * 0.25 for index in range(count)]


def _median_scores_engine(engine: str, weighted: bool) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        weights = _deterministic_weights(len(rankings)) if weighted else None
        if engine == "array":
            return tuple(
                median_scores_batch(rankings, tie=tie, weights=weights)
                for tie in _MEDIAN_TIES
            )
        return tuple(
            median_scores(rankings, tie=tie, weights=weights, engine="dict")
            for tie in _MEDIAN_TIES
        )

    return call


def _median_outputs_engine(engine: str) -> _OracleFn:
    """Theorem 9/10/11 + Corollary 30 outputs under one engine.

    ``engine="arena"`` runs the array kernels but feeds them the profile
    through a shared-memory :class:`~repro.core.arena.ProfileArena`
    instead of the object sequence.
    """

    def call(rankings: Rankings) -> object:
        n = len(rankings[0])
        k = (n + 1) // 2
        head = (n + 1) // 2
        bucket_type = (head, n - head) if n > head else (n,)
        if engine == "arena":
            with ProfileArena.from_profile(rankings) as arena:
                return (
                    median_top_k_batch(arena, k),
                    median_full_ranking_batch(arena),
                    median_partial_ranking_batch(arena),
                    median_fixed_type_batch(arena, bucket_type),
                )
        if engine == "array":
            return (
                median_top_k_batch(rankings, k),
                median_full_ranking_batch(rankings),
                median_partial_ranking_batch(rankings),
                median_fixed_type_batch(rankings, bucket_type),
            )
        return (
            median_top_k(rankings, k, engine="dict"),
            median_full_ranking(rankings, engine="dict"),
            median_partial_ranking(rankings, engine="dict"),
            median_fixed_type(rankings, bucket_type, engine="dict"),
        )

    return call


def _median_scores_arena(weighted: bool) -> _OracleFn:
    """Arena-backed twin of the ``array`` engine in :func:`_median_scores_engine`."""

    def call(rankings: Rankings) -> object:
        weights = _deterministic_weights(len(rankings)) if weighted else None
        with ProfileArena.from_profile(rankings) as arena:
            return tuple(
                median_scores_batch(arena, tie=tie, weights=weights)
                for tie in _MEDIAN_TIES
            )

    return call


def _online_reference(rankings: Rankings) -> object:
    """Offline dict-engine scores after every prefix, then one discard."""
    snapshots = [
        median_scores(rankings[: index + 1], engine="dict")
        for index in range(len(rankings))
    ]
    if len(rankings) > 1:
        snapshots.append(median_scores(rankings[1:], engine="dict"))
    return tuple(snapshots)


def _online_bulk(use_arena: bool) -> _OracleFn:
    """Final scores after ingesting the whole profile (then one discard).

    The arena path uses :meth:`OnlineMedianAggregator.add_arena` — one
    vectorized bulk append — and must land in exactly the state the
    per-ranking ``add`` loop reaches, including after a later object-level
    ``discard`` interleaves with it.
    """

    def call(rankings: Rankings) -> object:
        aggregator = OnlineMedianAggregator(rankings[0].domain)
        if use_arena:
            with ProfileArena.from_profile(rankings) as arena:
                aggregator.add_arena(arena)
        else:
            for sigma in rankings:
                aggregator.add(sigma)
        snapshots = [aggregator.scores()]
        if len(rankings) > 1:
            aggregator.discard(rankings[0])
            snapshots.append(aggregator.scores())
        return tuple(snapshots)

    return call


def _medrank_k(rankings: Rankings) -> int:
    """A deterministic k for the MEDRANK differential pair."""
    return min(2, len(rankings[0]))


def _medrank_in_memory(rankings: Rankings) -> object:
    result = medrank(rankings, k=_medrank_k(rankings))
    return (result.winners, result.access_log)


def _medrank_via_store(rankings: Rankings) -> object:
    """Out-of-core MEDRANK over a freshly built memory-mapped store.

    Winner slots map back to items through the codec (slot order IS the
    canonical item order), and the access log must match the in-memory
    run exactly — same stopping depth, same bookkeeping.
    """
    codec = DomainCodec.for_profile(rankings)
    with tempfile.TemporaryDirectory() as tmp:
        store = SortedListStore.build(Path(tmp) / "lists", rankings)
        result = medrank_out_of_core(store, k=_medrank_k(rankings))
    items = codec.items
    winners = tuple(items[slot] for slot in result.winner_slots)
    return (winners, result.access_log)


def _online_variant(through_pickle: bool) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        aggregator = OnlineMedianAggregator(rankings[0].domain)
        snapshots = []
        for sigma in rankings:
            if through_pickle:
                aggregator = pickle.loads(pickle.dumps(aggregator))
            aggregator.add(sigma)
            snapshots.append(aggregator.scores())
        if len(rankings) > 1:
            aggregator.discard(rankings[0])
            snapshots.append(aggregator.scores())
        return tuple(snapshots)

    return call


def _update_voter_keys(count: int) -> list[str]:
    """Voter ids cycling over roughly half the profile, forcing replaces."""
    span = max(1, (count + 1) // 2)
    return [f"v{index % span}" for index in range(count)]


def _online_update_reference(rankings: Rankings) -> object:
    """Offline medians of the voter map after every keyed update.

    Models the serving churn shape: voters re-rank (replace) rather than
    append, then one voter is forgotten. The ground truth is simply the
    offline median over whatever each voter currently contributes.
    """
    voters: dict[str, PartialRanking] = {}
    snapshots = []
    for key, sigma in zip(_update_voter_keys(len(rankings)), rankings):
        voters[key] = sigma
        snapshots.append(median_scores(list(voters.values()), engine="dict"))
    if len(voters) > 1:
        del voters["v0"]
        snapshots.append(median_scores(list(voters.values()), engine="dict"))
    return tuple(snapshots)


def _online_update_variant(through_pickle: bool) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        aggregator = OnlineMedianAggregator(rankings[0].domain)
        snapshots = []
        for key, sigma in zip(_update_voter_keys(len(rankings)), rankings):
            if through_pickle:
                aggregator = pickle.loads(pickle.dumps(aggregator))
            aggregator.update(key, sigma)
            snapshots.append(aggregator.scores())
        if len(aggregator.voters) > 1:
            aggregator.forget("v0")
            snapshots.append(aggregator.scores())
        return tuple(snapshots)

    return call


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------


def _build_entries() -> tuple[OracleEntry, ...]:
    return (
        OracleEntry(
            name="pair-counts",
            kind="pair",
            citation="Proposition 6 pair categories (U, S, T)",
            covers=("pair_counts", "pair_counts_large", "pair_counts_matrix"),
            reference=_pair(_pair_counts_naive),
            variants=(
                ("fenwick", _pair(pair_counts)),
                ("array", _pair(pair_counts_large)),
                ("matrix-dense", _matrix_entry_pair_counts("dense")),
                ("matrix-tiled", _matrix_entry_pair_counts("tiled")),
                ("matrix-pairs", _matrix_entry_pair_counts("pairs")),
            ),
        ),
        OracleEntry(
            name="kendall-p-half",
            kind="pair",
            citation="K^(p) at p = 1/2 (K_prof)",
            covers=("kendall", "kendall_large"),
            reference=_pair_kendall(kendall_naive, 0.5),
            variants=(
                ("object", _pair_kendall(kendall, 0.5)),
                ("array", _pair_kendall(kendall_large, 0.5)),
                ("matrix", _matrix_entry_distance("kendall")),
            ),
        ),
        OracleEntry(
            name="kendall-p-quarter",
            kind="pair",
            citation="K^(p) in the near-metric regime p = 1/4 (Proposition 13)",
            covers=("kendall", "kendall_large"),
            reference=_pair_kendall(kendall_naive, 0.25),
            variants=(
                ("object", _pair_kendall(kendall, 0.25)),
                ("array", _pair_kendall(kendall_large, 0.25)),
            ),
        ),
        OracleEntry(
            name="kendall-p-one",
            kind="pair",
            citation="K^(p) at p = 1 (ties fully penalized)",
            covers=("kendall", "kendall_large"),
            reference=_pair_kendall(kendall_naive, 1.0),
            variants=(
                ("object", _pair_kendall(kendall, 1.0)),
                ("array", _pair_kendall(kendall_large, 1.0)),
            ),
        ),
        OracleEntry(
            name="kendall-full",
            kind="pair",
            citation="classical Kendall tau on full rankings",
            covers=("kendall_full", "count_inversions_array"),
            reference=_pair(_kendall_full_naive),
            variants=(
                ("object", _pair(kendall_full)),
                ("inversions-array", _kendall_full_inversions),
            ),
            prepare=_refine_to_full,
        ),
        OracleEntry(
            name="footrule",
            kind="pair",
            citation="F_prof: L1 distance on positions",
            covers=("footrule",),
            reference=_pair(_footrule_naive),
            variants=(
                ("object", _pair(footrule)),
                ("matrix", _matrix_entry_distance("footrule")),
            ),
        ),
        OracleEntry(
            name="footrule-full",
            kind="pair",
            citation="classical Spearman footrule on full rankings",
            covers=("footrule_full",),
            reference=_pair(_footrule_naive),
            variants=(("object", _pair(footrule_full)),),
            prepare=_refine_to_full,
        ),
        OracleEntry(
            name="kendall-hausdorff",
            kind="pair",
            citation="K_Haus: Theorem 5 witnesses vs Proposition 6 closed form",
            covers=(
                "kendall_hausdorff",
                "kendall_hausdorff_counts",
                "kendall_hausdorff_large",
            ),
            reference=_pair(kendall_hausdorff),
            variants=(
                ("counts", _pair(kendall_hausdorff_counts)),
                ("array", _pair(kendall_hausdorff_large)),
                ("matrix", _matrix_entry_distance("kendall_hausdorff")),
            ),
        ),
        OracleEntry(
            name="kendall-hausdorff-bruteforce",
            kind="pair",
            citation="K_Haus: exhaustive max-min over full refinements",
            covers=("kendall_hausdorff_counts",),
            reference=_pair(kendall_hausdorff_bruteforce),
            variants=(("counts", _pair(kendall_hausdorff_counts)),),
            max_items=5,
        ),
        OracleEntry(
            name="footrule-hausdorff",
            kind="pair",
            citation="F_Haus: Theorem 5 witness construction",
            covers=("footrule_hausdorff",),
            reference=_pair(footrule_hausdorff),
            variants=(("matrix", _matrix_entry_distance("footrule_hausdorff")),),
        ),
        OracleEntry(
            name="footrule-hausdorff-bruteforce",
            kind="pair",
            citation="F_Haus: exhaustive max-min over full refinements",
            covers=("footrule_hausdorff",),
            reference=_pair(footrule_hausdorff_bruteforce),
            variants=(("witnesses", _pair(footrule_hausdorff)),),
            max_items=5,
        ),
        OracleEntry(
            name="normalized",
            kind="pair",
            citation="[0, 1]-scaled variants of all four metrics",
            covers=(
                "normalized_kendall",
                "normalized_footrule",
                "normalized_kendall_hausdorff",
                "normalized_footrule_hausdorff",
            ),
            reference=_pair(_normalized_naive),
            variants=(("fast", _normalized_fast),),
        ),
        OracleEntry(
            name="batch-kendall",
            kind="profile",
            citation="all-pairs K_prof matrix vs the per-pair object metric",
            covers=("pairwise_distance_matrix", "pair_counts_matrix"),
            reference=_profile_matrix_reference(kendall),
            variants=(
                ("auto", _profile_matrix_variant("kendall", "auto", None)),
                ("dense", _profile_matrix_variant("kendall", "dense", None)),
                ("tiled", _profile_matrix_variant("kendall", "tiled", None)),
                ("pairs", _profile_matrix_variant("kendall", "pairs", None)),
                ("pairs-jobs2", _profile_matrix_variant("kendall", "pairs", 2)),
            ),
            expensive=frozenset({"pairs-jobs2"}),
        ),
        OracleEntry(
            name="batch-footrule",
            kind="profile",
            citation="all-pairs F_prof matrix vs the per-pair object metric",
            covers=("pairwise_distance_matrix",),
            reference=_profile_matrix_reference(footrule),
            variants=(
                ("serial", _profile_matrix_variant("footrule", "auto", None)),
                ("jobs2", _profile_matrix_variant("footrule", "auto", 2)),
            ),
            expensive=frozenset({"jobs2"}),
        ),
        OracleEntry(
            name="batch-kendall-hausdorff",
            kind="profile",
            citation="all-pairs K_Haus matrix vs the per-pair closed form",
            covers=("pairwise_distance_matrix",),
            reference=_profile_matrix_reference(kendall_hausdorff_counts),
            variants=(
                ("dense", _profile_matrix_variant("kendall_hausdorff", "dense", None)),
                ("pairs", _profile_matrix_variant("kendall_hausdorff", "pairs", None)),
            ),
        ),
        OracleEntry(
            name="batch-footrule-hausdorff",
            kind="profile",
            citation="all-pairs F_Haus matrix vs the per-pair witness metric",
            covers=("pairwise_distance_matrix",),
            reference=_profile_matrix_reference(footrule_hausdorff),
            variants=(
                ("serial", _profile_matrix_variant("footrule_hausdorff", "auto", None)),
                ("jobs2", _profile_matrix_variant("footrule_hausdorff", "auto", 2)),
            ),
            expensive=frozenset({"jobs2"}),
        ),
        OracleEntry(
            name="batch-arena",
            kind="profile",
            citation="zero-copy shared-memory profiles vs object profiles",
            covers=("pairwise_distance_matrix", "pair_counts_matrix"),
            reference=_all_metric_matrices(use_arena=False, jobs=None),
            variants=(
                ("arena-serial", _all_metric_matrices(use_arena=True, jobs=None)),
                ("arena-jobs2", _all_metric_matrices(use_arena=True, jobs=2)),
            ),
            expensive=frozenset({"arena-jobs2"}),
        ),
        OracleEntry(
            name="aggregate-footrule-matching",
            kind="profile",
            citation="optimal footrule aggregation: serial vs pooled cost matrix",
            covers=(),
            reference=_matching_variant(None),
            variants=(("jobs2", _matching_variant(2)),),
            expensive=frozenset({"jobs2"}),
        ),
        OracleEntry(
            name="aggregate-kemeny",
            kind="profile",
            citation="exact K^(p) aggregation: serial vs pooled pair costs",
            covers=(),
            reference=_kemeny_variant(None),
            variants=(("jobs2", _kemeny_variant(2)),),
            max_items=7,
            expensive=frozenset({"jobs2"}),
        ),
        OracleEntry(
            name="aggregate-kemeny-decomposed",
            kind="profile",
            citation="SCC-condensed exact K^(p) optimum == monolithic Held-Karp optimum",
            covers=(),
            reference=_kemeny_monolithic_objective,
            variants=(
                ("decomposed", _kemeny_decomposed_objective(None)),
                ("decomposed-jobs2", _kemeny_decomposed_objective(2)),
            ),
            max_items=7,
            expensive=frozenset({"decomposed-jobs2"}),
        ),
        OracleEntry(
            name="aggregate-median-scores",
            kind="profile",
            citation="Lemma 8 median score function: dict gathers vs matrix kernel",
            covers=("median_scores_array", "median_scores_batch"),
            reference=_median_scores_engine("dict", weighted=False),
            variants=(("array", _median_scores_engine("array", weighted=False)),),
        ),
        OracleEntry(
            name="aggregate-median-weighted",
            kind="profile",
            citation="Lemma 8W weighted-voter medians, all tie rules",
            covers=("median_scores_batch",),
            reference=_median_scores_engine("dict", weighted=True),
            variants=(
                ("array", _median_scores_engine("array", weighted=True)),
                ("arena", _median_scores_arena(weighted=True)),
            ),
        ),
        OracleEntry(
            name="aggregate-median-outputs",
            kind="profile",
            citation="Theorems 9-11 / Corollary 30 outputs: dict vs array engine",
            covers=(
                "median_top_k_batch",
                "median_full_ranking_batch",
                "median_partial_ranking_batch",
                "median_fixed_type_batch",
            ),
            reference=_median_outputs_engine("dict"),
            variants=(
                ("array", _median_outputs_engine("array")),
                ("arena", _median_outputs_engine("arena")),
            ),
        ),
        OracleEntry(
            name="aggregate-online-median",
            kind="profile",
            citation="online add/discard snapshots vs offline Lemma 8 medians",
            covers=(),
            reference=_online_reference,
            variants=(
                ("online", _online_variant(through_pickle=False)),
                ("online-pickled", _online_variant(through_pickle=True)),
            ),
        ),
        OracleEntry(
            name="aggregate-online-update",
            kind="profile",
            citation="voter-keyed replace churn vs offline medians of the voter map",
            covers=(),
            reference=_online_update_reference,
            variants=(
                ("update", _online_update_variant(through_pickle=False)),
                ("update-pickled", _online_update_variant(through_pickle=True)),
            ),
        ),
        OracleEntry(
            name="aggregate-online-arena",
            kind="profile",
            citation="bulk arena ingestion vs per-ranking adds, then a discard",
            covers=(),
            reference=_online_bulk(use_arena=False),
            variants=(("add-arena", _online_bulk(use_arena=True)),),
        ),
        OracleEntry(
            name="medrank-out-of-core",
            kind="profile",
            citation="MEDRANK over memory-mapped sorted lists vs the in-memory loop",
            covers=(),
            reference=_medrank_in_memory,
            variants=(("mmap-store", _medrank_via_store),),
        ),
        OracleEntry(
            name="selftest-kendall-flipped-tie",
            kind="pair",
            citation="deliberate mutant: tie penalty applied to tied-both pairs",
            covers=(),
            reference=_pair_kendall(kendall_naive, 0.5),
            variants=(("mutant", _pair(_kendall_flipped_tie)),),
            selftest_only=True,
        ),
    )


#: The hand-curated entries. Static: the built-in metrics keep their
#: richly cross-covered entries above, authored once at import time.
_STATIC_ENTRIES: tuple[OracleEntry, ...] = _build_entries()


def _plugin_batch_variant(
    batch: Callable[..., np.ndarray], jobs: int | None
) -> _OracleFn:
    def call(rankings: Rankings) -> object:
        return batch(rankings, jobs=jobs)

    return call


def _plugin_entries() -> tuple[OracleEntry, ...]:
    """One auto-contributed entry per registered non-builtin plugin.

    Every :class:`~repro.metrics.registry.MetricPlugin` ships an O(n²)
    reference oracle; registering a plugin therefore buys a
    differential check for free — the plain-Python all-pairs matrix
    from the oracle against the scalar kernel, the batch kernel, and
    the batch kernel over a 2-process pool. Rebuilt on each call so
    plugins registered after import (third-party, tests) are picked up
    by ``--list-checks`` and the fuzz loop automatically.
    """
    # Imported lazily: force first-party plugin registration without a
    # module-level verify -> plugins import edge.
    import repro.metrics.plugins  # noqa: F401
    from repro.metrics.registry import registered_metrics

    entries = []
    for plugin in registered_metrics():
        if plugin.builtin:
            continue
        entries.append(
            OracleEntry(
                name=f"plugin-{plugin.name}",
                kind="profile",
                citation=plugin.citation,
                covers=(),
                reference=_profile_matrix_reference(plugin.oracle),
                variants=(
                    ("scalar", _profile_matrix_reference(plugin.scalar)),
                    ("batch", _plugin_batch_variant(plugin.batch, None)),
                    ("batch-jobs2", _plugin_batch_variant(plugin.batch, 2)),
                ),
                expensive=frozenset({"batch-jobs2"}),
            )
        )
    return tuple(entries)


def oracle_entries() -> tuple[OracleEntry, ...]:
    """Every registered oracle entry (including self-test mutants).

    Static hand-curated entries first, then one per registered
    non-builtin metric plugin.
    """
    return _STATIC_ENTRIES + _plugin_entries()
