"""``python -m repro.verify`` — run the verification harness."""

from repro.verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
