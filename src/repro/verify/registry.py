"""Check registry: a flat, addressable namespace over oracles and relations.

Every check has a stable string id — ``oracle:<entry-name>`` for a
differential oracle entry, ``relation:<relation-name>`` for a metamorphic
relation — used by the CLI (``--checks``), replay files, and the analysis
rule RP010. :func:`run_check` evaluates one check on a workload and
returns the (possibly empty) list of violation descriptions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.verify.oracles import OracleEntry, Rankings, oracle_entries, values_equal
from repro.verify.relations import Relation, relations

__all__ = [
    "CheckInfo",
    "all_checks",
    "find_check",
    "select_checks",
    "run_check",
    "covered_names",
]


@dataclass(frozen=True, slots=True)
class CheckInfo:
    """Addressable metadata for one registered check."""

    check_id: str
    kind: str  # "oracle" or "relation"
    citation: str
    #: Rankings consumed per evaluation; 0 means "the whole profile".
    arity: int
    max_items: int | None
    selftest_only: bool


def _oracle_info(entry: OracleEntry) -> CheckInfo:
    return CheckInfo(
        check_id=f"oracle:{entry.name}",
        kind="oracle",
        citation=entry.citation,
        arity=2 if entry.kind == "pair" else 0,
        max_items=entry.max_items,
        selftest_only=entry.selftest_only,
    )


def _relation_info(relation: Relation) -> CheckInfo:
    return CheckInfo(
        check_id=f"relation:{relation.name}",
        kind="relation",
        citation=relation.citation,
        arity=relation.arity,
        max_items=None,
        selftest_only=False,
    )


def _oracle_by_name() -> dict[str, OracleEntry]:
    return {entry.name: entry for entry in oracle_entries()}


def _relation_by_name() -> dict[str, Relation]:
    return {relation.name: relation for relation in relations()}


def all_checks(include_selftest: bool = False) -> tuple[CheckInfo, ...]:
    """Every registered check, oracles first, in registration order."""
    infos = [_oracle_info(entry) for entry in oracle_entries()]
    infos.extend(_relation_info(relation) for relation in relations())
    if not include_selftest:
        infos = [info for info in infos if not info.selftest_only]
    return tuple(infos)


def find_check(check_id: str) -> CheckInfo:
    """Resolve a check id (self-test checks included); raises ``KeyError``."""
    for info in all_checks(include_selftest=True):
        if info.check_id == check_id:
            return info
    raise KeyError(f"unknown check id {check_id!r}; see --list-checks")


def select_checks(
    patterns: Sequence[str] | None,
    include_selftest: bool = False,
) -> tuple[CheckInfo, ...]:
    """Checks whose id contains any of the given substrings (all if None).

    Raises ``ValueError`` when a pattern matches nothing — a misspelled
    ``--checks`` filter silently running zero checks would defeat the
    point of the harness.
    """
    checks = all_checks(include_selftest=include_selftest)
    if not patterns:
        return checks
    selected: list[CheckInfo] = []
    for pattern in patterns:
        matches = [info for info in checks if pattern in info.check_id]
        if not matches:
            raise ValueError(f"--checks pattern {pattern!r} matches no check id")
        selected.extend(info for info in matches if info not in selected)
    return tuple(selected)


def run_check(
    check_id: str,
    rankings: Rankings,
    *,
    include_expensive: bool = True,
) -> list[str]:
    """Evaluate one check on a workload; returns violation descriptions.

    For an oracle check the reference runs once and every (non-skipped)
    variant is compared bit for bit; for a relation check the predicate
    runs directly. An empty list means the workload passed.
    """
    kind, _, name = check_id.partition(":")
    if kind == "oracle":
        try:
            entry = _oracle_by_name()[name]
        except KeyError:
            raise KeyError(f"unknown check id {check_id!r}") from None
        return _run_oracle(entry, rankings, include_expensive)
    if kind == "relation":
        try:
            relation = _relation_by_name()[name]
        except KeyError:
            raise KeyError(f"unknown check id {check_id!r}") from None
        violation = relation.check(rankings)
        return [] if violation is None else [f"{relation.name}: {violation}"]
    raise KeyError(f"malformed check id {check_id!r}; expected 'oracle:…' or 'relation:…'")


def _run_oracle(
    entry: OracleEntry, rankings: Rankings, include_expensive: bool
) -> list[str]:
    if entry.prepare is not None:
        rankings = entry.prepare(rankings)
    expected = entry.reference(rankings)
    failures: list[str] = []
    for variant_name, variant in entry.variants:
        if not include_expensive and variant_name in entry.expensive:
            continue
        actual = variant(rankings)
        if not values_equal(expected, actual):
            failures.append(
                f"{entry.name}/{variant_name}: reference returned {expected!r} "
                f"but variant returned {actual!r}"
            )
    return failures


def covered_names() -> frozenset[str]:
    """Union of the ``covers`` declarations of the non-self-test entries.

    Runtime counterpart of the RP010 static cross-reference against
    ``repro.metrics.__all__``.
    """
    names: set[str] = set()
    for entry in oracle_entries():
        if not entry.selftest_only:
            names.update(entry.covers)
    return frozenset(names)
