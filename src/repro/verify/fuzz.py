"""The fuzz driver: draw workloads, run every check, collect discrepancies.

One *round* is fully determined by its ``round_seed``: a workload family
is picked (random bucket orders, bucketized Mallows, db-derived attribute
sorts, or adversarial tie structures — one giant bucket, all singletons,
top-k with a huge tail), a profile is drawn from
:mod:`repro.generators`, and every selected check is evaluated on samples
from it. Workloads for size-capped checks (the exponential brute-force
oracles, Held–Karp aggregation) are domain-restricted rather than
skipped, so every check runs every round.

Rounds are independent, so ``--jobs`` distributes them over a process
pool (:mod:`repro.parallel`); results are identical for any job count
because each round derives everything from its own seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro import obs
from repro.generators import (
    adversarial_profile_workload,
    db_profile_workload,
    mallows_profile_workload,
    random_profile_workload,
)
from repro.generators.random import random_bucket_order
from repro.parallel import parallel_map
from repro.verify.oracles import Rankings
from repro.verify.registry import CheckInfo, find_check, run_check

__all__ = [
    "Discrepancy",
    "FuzzReport",
    "draw_profile",
    "run_round",
    "run_fuzz",
]

#: Pairs sampled per round for each two-ranking check.
_PAIR_SAMPLES = 2

_DB_CATALOGS = ("restaurants", "flights", "bibliography")


@dataclass(frozen=True, slots=True)
class Discrepancy:
    """One observed disagreement, with enough provenance to replay it."""

    check_id: str
    detail: str
    rankings: Rankings
    round_index: int
    round_seed: int
    workload: str

    def describe(self) -> str:
        sizes = f"n={len(self.rankings[0])}, m={len(self.rankings)}"
        return (
            f"[round {self.round_index}, seed {self.round_seed}, "
            f"{self.workload}, {sizes}] {self.check_id}: {self.detail}"
        )


@dataclass(frozen=True, slots=True)
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    rounds: int
    seed: int
    check_ids: tuple[str, ...]
    discrepancies: tuple[Discrepancy, ...]

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.discrepancies)} DISCREPANCIES"
        return (
            f"{self.rounds} rounds x {len(self.check_ids)} checks "
            f"(seed {self.seed}): {status}"
        )


def draw_profile(rng: random.Random) -> tuple[str, Rankings]:
    """Draw one workload: (family description, rankings over a common domain)."""
    family = rng.choice(("random", "mallows", "db", "adversarial"))
    if family == "random":
        n = rng.randint(2, 24)
        m = rng.randint(2, 6)
        tie_bias = rng.choice((0.0, 0.2, 0.5, 0.8))
        workload = random_profile_workload(
            n, m, seed=rng.randrange(2**31), tie_bias=tie_bias
        )
    elif family == "mallows":
        n = rng.randint(3, 20)
        m = rng.randint(2, 5)
        phi = rng.choice((0.1, 0.3, 0.7))
        workload = mallows_profile_workload(n, m, phi=phi, seed=rng.randrange(2**31))
    elif family == "db":
        workload = db_profile_workload(
            n=rng.randint(8, 24),
            seed=rng.randrange(2**31),
            catalog=rng.choice(_DB_CATALOGS),
        )
    else:
        workload = adversarial_profile_workload(
            n=rng.randint(4, 24), seed=rng.randrange(2**31)
        )
    return workload.name, workload.rankings


def _restrict_to_max_items(rankings: Rankings, max_items: int) -> Rankings:
    domain = sorted(rankings[0].domain, key=repr)
    if len(domain) <= max_items:
        return rankings
    return tuple(sigma.restricted_to(domain[:max_items]) for sigma in rankings)


def _samples_for(
    info: CheckInfo, profile: Rankings, rng: random.Random
) -> list[Rankings]:
    """Workload samples for one check: the whole profile for profile
    checks, sampled tuples for pair/relation checks (padded with extra
    random bucket orders when the profile is smaller than the arity)."""
    if info.arity == 0:
        samples = [profile]
    else:
        domain = sorted(profile[0].domain, key=repr)
        samples = []
        for _ in range(_PAIR_SAMPLES):
            pool = list(profile)
            while len(pool) < info.arity:
                pool.append(random_bucket_order(domain, rng))
            samples.append(tuple(rng.sample(pool, info.arity)))
    if info.max_items is not None:
        samples = [_restrict_to_max_items(sample, info.max_items) for sample in samples]
    return samples


def run_round(
    round_index: int,
    round_seed: int,
    checks: Sequence[CheckInfo],
    *,
    include_expensive: bool = True,
) -> list[Discrepancy]:
    """Run every check on one freshly drawn workload."""
    rng = random.Random(round_seed)
    workload_name, profile = draw_profile(rng)
    discrepancies: list[Discrepancy] = []
    with obs.trace("verify.round", index=round_index, workload=workload_name):
        obs.add("verify.rounds")
        _run_round_checks(
            round_index,
            round_seed,
            checks,
            workload_name,
            profile,
            rng,
            include_expensive,
            discrepancies,
        )
    return discrepancies


def _run_round_checks(
    round_index: int,
    round_seed: int,
    checks: Sequence[CheckInfo],
    workload_name: str,
    profile: Rankings,
    rng: random.Random,
    include_expensive: bool,
    discrepancies: list[Discrepancy],
) -> None:
    for info in checks:
        for sample in _samples_for(info, profile, rng):
            obs.add("verify.checks")
            try:
                failures = run_check(
                    info.check_id, sample, include_expensive=include_expensive
                )
            except Exception as exc:  # repro: noqa[RP007] — a crash IS a finding
                failures = [f"raised {type(exc).__name__}: {exc}"]
            if failures:
                obs.add("verify.discrepancies", len(failures))
            for detail in failures:
                discrepancies.append(
                    Discrepancy(
                        check_id=info.check_id,
                        detail=detail,
                        rankings=sample,
                        round_index=round_index,
                        round_seed=round_seed,
                        workload=workload_name,
                    )
                )


#: Worker task: (round_index, round_seed, check ids, include_expensive).
_RoundTask = tuple[int, int, tuple[str, ...], bool]


def _round_task(task: _RoundTask) -> list[Discrepancy]:
    """Module-level pool worker (picklable); resolves checks by id."""
    round_index, round_seed, check_ids, include_expensive = task
    checks = [find_check(check_id) for check_id in check_ids]
    return run_round(
        round_index, round_seed, checks, include_expensive=include_expensive
    )


def run_fuzz(
    rounds: int,
    seed: int = 0,
    *,
    checks: Sequence[CheckInfo],
    jobs: int | None = None,
    expensive_every: int = 10,
) -> FuzzReport:
    """Run ``rounds`` independent fuzz rounds; returns the full report.

    Round seeds derive deterministically from ``seed``, and each round is
    self-contained, so the report is identical for any ``jobs`` value.
    Pool-spawning variants run only on every ``expensive_every``-th round.
    """
    if rounds <= 0:
        raise ValueError(f"rounds={rounds} must be positive")
    if expensive_every <= 0:
        raise ValueError(f"expensive_every={expensive_every} must be positive")
    base = random.Random(seed)
    check_ids = tuple(info.check_id for info in checks)
    tasks: list[_RoundTask] = [
        (index, base.randrange(2**63), check_ids, index % expensive_every == 0)
        for index in range(rounds)
    ]
    per_round = parallel_map(_round_task, tasks, jobs=jobs)
    discrepancies = tuple(
        discrepancy for round_result in per_round for discrepancy in round_result
    )
    return FuzzReport(
        rounds=rounds,
        seed=seed,
        check_ids=check_ids,
        discrepancies=discrepancies,
    )
