"""Greedy shrinking of failing workloads to minimal reproducers.

Two reduction moves, applied to a fixpoint under an evaluation budget:

* drop whole rankings from a profile workload (never below two);
* remove single items from the common domain via
  :meth:`PartialRanking.restricted_to` (never below two items), which
  preserves the relative order and tie structure of the survivors.

A candidate reduction is kept only when the check still fails on it, so
the result is a locally minimal case that reproduces the original
discrepancy — small enough to eyeball the bucket structures directly.
"""

from __future__ import annotations

from repro import obs
from repro.core.partial_ranking import Item
from repro.verify.oracles import Rankings
from repro.verify.registry import find_check, run_check

__all__ = ["shrink_case"]

_MIN_ITEMS = 2
_MIN_RANKINGS = 2


def _still_fails(check_id: str, rankings: Rankings, include_expensive: bool) -> bool:
    try:
        return bool(
            run_check(check_id, rankings, include_expensive=include_expensive)
        )
    except Exception:  # repro: noqa[RP007] — a crash is a failure to preserve
        return True


def _restrict_all(rankings: Rankings, keep: list[Item]) -> Rankings:
    return tuple(sigma.restricted_to(keep) for sigma in rankings)


def shrink_case(
    check_id: str,
    rankings: Rankings,
    *,
    include_expensive: bool = True,
    max_evaluations: int = 300,
) -> Rankings:
    """Greedily minimize a failing workload; returns the reduced workload.

    If the original workload does not actually fail (e.g. the bug is
    nondeterministic), it is returned unchanged.
    """
    info = find_check(check_id)
    evaluations = 0

    def fails(candidate: Rankings) -> bool:
        nonlocal evaluations
        evaluations += 1
        obs.add("verify.shrink.steps")
        return _still_fails(check_id, candidate, include_expensive)

    with obs.trace("verify.shrink", check=check_id):
        if not fails(rankings):
            return rankings

        current = rankings
        improved = True
        while improved and evaluations < max_evaluations:
            improved = False
            # move 1: drop whole rankings (profile workloads only)
            if info.arity == 0:
                for index in range(len(current)):
                    if len(current) <= _MIN_RANKINGS:
                        break
                    candidate = current[:index] + current[index + 1 :]
                    if evaluations >= max_evaluations:
                        return current
                    if fails(candidate):
                        current = candidate
                        improved = True
                        break
                if improved:
                    continue
            # move 2: remove one domain item at a time
            domain = sorted(current[0].domain, key=repr)
            for item in domain:
                if len(domain) <= _MIN_ITEMS:
                    break
                keep = [other for other in domain if other != item]
                if evaluations >= max_evaluations:
                    return current
                candidate = _restrict_all(current, keep)
                if fails(candidate):
                    current = candidate
                    improved = True
                    break
        return current
