"""Differential + metamorphic verification of the metric implementations.

The library ships three structurally different implementations of every
paper metric (object-level definitions, array kernels, batch matrices)
plus process-pool execution paths, all promising bit-for-bit agreement.
This package turns that promise — and the paper's theorems — into a
continuously executable harness:

* :mod:`repro.verify.oracles` — the oracle registry: reference
  implementations paired with their fast/batch/parallel variants;
* :mod:`repro.verify.relations` — paper theorems as metamorphic checks;
* :mod:`repro.verify.registry` — the flat check namespace and runner;
* :mod:`repro.verify.fuzz` — the seeded fuzz driver over
  :mod:`repro.generators` workloads;
* :mod:`repro.verify.shrink` / :mod:`repro.verify.replay` — minimal
  reproducers and deterministic replay files;
* :mod:`repro.verify.selftest` — the harness verifying itself against a
  deliberately injected mutation.

Run it: ``python -m repro.verify --rounds 50 --seed 0`` (see
``docs/TESTING.md``).
"""

from repro.verify.fuzz import Discrepancy, FuzzReport, run_fuzz
from repro.verify.oracles import OracleEntry, Rankings, oracle_entries, values_equal
from repro.verify.registry import (
    CheckInfo,
    all_checks,
    covered_names,
    find_check,
    run_check,
    select_checks,
)
from repro.verify.relations import Relation, relations
from repro.verify.replay import load_replay, replay_file, write_replay
from repro.verify.selftest import SELFTEST_CHECK_ID, SelfTestResult, run_selftest
from repro.verify.shrink import shrink_case

__all__ = [
    "OracleEntry",
    "Rankings",
    "oracle_entries",
    "values_equal",
    "Relation",
    "relations",
    "CheckInfo",
    "all_checks",
    "find_check",
    "select_checks",
    "run_check",
    "covered_names",
    "Discrepancy",
    "FuzzReport",
    "run_fuzz",
    "shrink_case",
    "write_replay",
    "load_replay",
    "replay_file",
    "SELFTEST_CHECK_ID",
    "SelfTestResult",
    "run_selftest",
]
