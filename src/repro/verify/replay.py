"""Deterministic replay files for fuzz discrepancies.

A replay file is a small JSON document pinning everything needed to
re-evaluate one failing check: the check id, the exact (usually shrunk)
rankings as nested bucket lists, and provenance (seed, round, original
detail). Replaying runs :func:`repro.verify.registry.run_check` on the
stored workload — no random draws involved — so a failure reproduces
bit for bit on any machine, and a fixed tree reports the file as stale.

Items must be JSON-faithful scalars (``int`` / ``str``), which covers
every generator in :mod:`repro.generators`; richer item types would not
round-trip through JSON unambiguously and are rejected at write time.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.partial_ranking import Item, PartialRanking
from repro.verify.oracles import Rankings
from repro.verify.registry import run_check

__all__ = [
    "REPLAY_SCHEMA",
    "ReplayError",
    "write_replay",
    "load_replay",
    "replay_file",
]

REPLAY_SCHEMA = "repro.verify/1"


class ReplayError(ValueError):
    """A replay file could not be written or parsed."""


def _encode_ranking(sigma: PartialRanking) -> list[list[Item]]:
    encoded: list[list[Item]] = []
    for bucket in sigma.buckets:
        members = sorted(bucket, key=repr)
        for item in members:
            if not isinstance(item, (int, str)) or isinstance(item, bool):
                raise ReplayError(
                    f"replay files support int/str items only, got {item!r}"
                )
        encoded.append(members)
    return encoded


def write_replay(
    path: str | Path,
    check_id: str,
    rankings: Rankings,
    *,
    seed: int | None = None,
    round_index: int | None = None,
    detail: str = "",
) -> Path:
    """Serialize one failing workload; returns the written path."""
    document = {
        "schema": REPLAY_SCHEMA,
        "check": check_id,
        "seed": seed,
        "round": round_index,
        "detail": detail,
        "rankings": [_encode_ranking(sigma) for sigma in rankings],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return target


def load_replay(path: str | Path) -> tuple[str, Rankings, dict[str, object]]:
    """Parse a replay file into (check_id, rankings, provenance)."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReplayError(f"cannot read replay file {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("schema") != REPLAY_SCHEMA:
        raise ReplayError(f"{path} is not a {REPLAY_SCHEMA} replay file")
    check_id = document.get("check")
    raw_rankings = document.get("rankings")
    if not isinstance(check_id, str) or not isinstance(raw_rankings, list):
        raise ReplayError(f"{path} is missing 'check' or 'rankings'")
    rankings = tuple(PartialRanking(buckets) for buckets in raw_rankings)
    provenance = {
        key: document.get(key) for key in ("seed", "round", "detail")
    }
    return check_id, rankings, provenance


def replay_file(path: str | Path, *, include_expensive: bool = True) -> list[str]:
    """Re-run the stored check; returns current violation descriptions.

    An empty list means the recorded failure no longer reproduces (the
    bug was fixed); a non-empty list reproduces it deterministically.
    """
    check_id, rankings, _ = load_replay(path)
    return run_check(check_id, rankings, include_expensive=include_expensive)
