"""Command-line front end: ``python -m repro.verify``.

Modes:

* default — fuzz: ``--rounds N --seed S [--jobs J] [--checks PATTERN]``;
  on failure, shrinks the first discrepancies and writes replay files.
* ``--replay FILE`` — re-run one captured failure; exits 1 while it still
  reproduces, 0 once the tree is fixed.
* ``--self-test`` — inject the deliberate mutant and require the harness
  to catch, shrink, and replay it; exits 0 only if all stages pass.
* ``--list-checks`` — print every check id with its paper citation.

Exit codes: 0 clean, 1 discrepancies (or self-test failure, or a replay
that still reproduces), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ReproError
from repro.verify.fuzz import Discrepancy, run_fuzz
from repro.verify.registry import all_checks, select_checks
from repro.verify.replay import ReplayError, replay_file, write_replay
from repro.verify.selftest import run_selftest
from repro.verify.shrink import shrink_case

__all__ = ["main", "build_parser"]

#: Discrepancies shrunk and captured as replay files per run.
_MAX_REPLAYS = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential + metamorphic verification: fuzz every metric "
            "implementation against its reference oracle and the paper's "
            "theorems."
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=50, help="fuzz rounds to run (default: 50)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for the run (default: 0)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="process-pool size for rounds (default: REPRO_JOBS or serial)",
    )
    parser.add_argument(
        "--checks",
        action="append",
        metavar="PATTERN",
        help="only run checks whose id contains PATTERN (repeatable)",
    )
    parser.add_argument(
        "--expensive-every",
        type=int,
        default=10,
        metavar="K",
        help="run pool-spawning variants every K-th round (default: 10)",
    )
    parser.add_argument(
        "--replay-dir",
        default="fuzz-replays",
        metavar="DIR",
        help="directory for replay files written on failure (default: fuzz-replays)",
    )
    parser.add_argument(
        "--replay",
        metavar="FILE",
        help="re-run one captured replay file instead of fuzzing",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the harness catches a deliberately injected mutation",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="list check ids and exit"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    return parser


def _cmd_list_checks(fmt: str) -> int:
    checks = all_checks()
    if fmt == "json":
        payload = [
            {"id": info.check_id, "kind": info.kind, "citation": info.citation}
            for info in checks
        ]
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        width = max(len(info.check_id) for info in checks)
        for info in checks:
            print(f"{info.check_id:<{width}}  {info.citation}")
    return 0


def _cmd_self_test() -> int:
    result = run_selftest()
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_replay(path: str) -> int:
    failures = replay_file(path)
    if failures:
        print(f"replay {path} still reproduces:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"replay {path} no longer fails (fixed)")
    return 0


def _capture(discrepancy: Discrepancy, directory: Path, index: int) -> Path:
    """Shrink one discrepancy and write it as a replay file."""
    shrunk = shrink_case(
        discrepancy.check_id, discrepancy.rankings, include_expensive=True
    )
    slug = discrepancy.check_id.replace(":", "-").replace("/", "-")
    return write_replay(
        directory / f"replay-{index:02d}-{slug}.json",
        discrepancy.check_id,
        shrunk,
        seed=discrepancy.round_seed,
        round_index=discrepancy.round_index,
        detail=discrepancy.detail,
    )


def _cmd_fuzz(args: argparse.Namespace) -> int:
    try:
        checks = select_checks(args.checks)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.rounds <= 0:
        print(f"error: --rounds {args.rounds} must be positive", file=sys.stderr)
        return 2
    report = run_fuzz(
        args.rounds,
        args.seed,
        checks=checks,
        jobs=args.jobs,
        expensive_every=args.expensive_every,
    )
    replay_paths: list[Path] = []
    if not report.ok:
        directory = Path(args.replay_dir)
        for index, discrepancy in enumerate(report.discrepancies[:_MAX_REPLAYS]):
            replay_paths.append(_capture(discrepancy, directory, index))

    if args.format == "json":
        payload = {
            "schema": "repro.verify/report/1",
            "rounds": report.rounds,
            "seed": report.seed,
            "checks": list(report.check_ids),
            "discrepancies": [d.describe() for d in report.discrepancies],
            "replays": [str(path) for path in replay_paths],
            "ok": report.ok,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(report.summary())
        for discrepancy in report.discrepancies:
            print(f"  {discrepancy.describe()}")
        for path in replay_paths:
            print(f"  replay written: {path}")
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_checks:
            return _cmd_list_checks(args.format)
        if args.self_test:
            return _cmd_self_test()
        if args.replay is not None:
            return _cmd_replay(args.replay)
        return _cmd_fuzz(args)
    except (ReproError, ReplayError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
