"""Self-test: verify the verifier by injecting a deliberate mutation.

The oracle registry ships a ``selftest_only`` entry whose "variant" is a
mutant ``K^(1/2)`` that also penalizes pairs tied in *both* rankings —
exactly the kind of subtle tie-handling bug the harness exists to catch.
The self-test asserts the whole pipeline works end to end against it:

1. a direct :func:`run_check` on a known tied pair reports the mismatch;
2. the fuzz driver surfaces it from generated workloads;
3. the shrinker reduces a failing workload to a minimal one that still
   fails (two items suffice: a single tied pair);
4. a written replay file reproduces the failure deterministically.

A harness change that silently stops detecting mutations fails this test
— the verifier is itself verified.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.partial_ranking import PartialRanking
from repro.verify.fuzz import FuzzReport, run_fuzz
from repro.verify.registry import find_check, run_check
from repro.verify.replay import replay_file, write_replay
from repro.verify.shrink import shrink_case

__all__ = ["SELFTEST_CHECK_ID", "SelfTestResult", "run_selftest"]

SELFTEST_CHECK_ID = "oracle:selftest-kendall-flipped-tie"


@dataclass(frozen=True, slots=True)
class SelfTestResult:
    """Outcome of the four self-test stages."""

    caught_direct: bool
    caught_fuzz: bool
    shrunk_domain_size: int | None
    shrunk_still_fails: bool
    replay_reproduces: bool
    fuzz_report: FuzzReport

    @property
    def ok(self) -> bool:
        return (
            self.caught_direct
            and self.caught_fuzz
            and self.shrunk_still_fails
            and self.replay_reproduces
        )

    def summary(self) -> str:
        stages = (
            ("direct check catches mutant", self.caught_direct),
            ("fuzz driver catches mutant", self.caught_fuzz),
            (
                f"shrinker minimizes (domain size {self.shrunk_domain_size})",
                self.shrunk_still_fails,
            ),
            ("replay file reproduces", self.replay_reproduces),
        )
        lines = [f"  [{'ok' if passed else 'FAIL'}] {label}" for label, passed in stages]
        verdict = "self-test PASSED" if self.ok else "self-test FAILED"
        return "\n".join([*lines, verdict])


def run_selftest(
    replay_dir: str | Path | None = None,
    rounds: int = 8,
    seed: int = 0,
) -> SelfTestResult:
    """Run all self-test stages; the harness must catch the mutant."""
    # stage 1: a deterministic tied pair (one pair tied in both rankings)
    sigma = PartialRanking([[0, 1], [2]])
    tau = PartialRanking([[0, 1, 2]])
    direct_failures = run_check(SELFTEST_CHECK_ID, (sigma, tau))
    caught_direct = bool(direct_failures)

    # stage 2: the fuzz driver must surface it from generated workloads
    report = run_fuzz(rounds, seed, checks=[find_check(SELFTEST_CHECK_ID)])
    caught_fuzz = not report.ok

    # stages 3 and 4 work on the first fuzz discrepancy (fall back to the
    # deterministic pair so a broken fuzz stage is still diagnosable)
    if report.discrepancies:
        failing = report.discrepancies[0].rankings
        detail = report.discrepancies[0].detail
    else:
        failing = (sigma, tau)
        detail = direct_failures[0] if direct_failures else ""

    shrunk = shrink_case(SELFTEST_CHECK_ID, failing)
    shrunk_failures = run_check(SELFTEST_CHECK_ID, shrunk)
    shrunk_still_fails = bool(shrunk_failures)
    shrunk_domain_size = len(shrunk[0]) if shrunk else None

    if replay_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-verify-selftest-") as tmp:
            replay_reproduces = _replay_round_trip(Path(tmp), shrunk, detail)
    else:
        replay_reproduces = _replay_round_trip(Path(replay_dir), shrunk, detail)

    return SelfTestResult(
        caught_direct=caught_direct,
        caught_fuzz=caught_fuzz,
        shrunk_domain_size=shrunk_domain_size,
        shrunk_still_fails=shrunk_still_fails,
        replay_reproduces=replay_reproduces,
        fuzz_report=report,
    )


def _replay_round_trip(
    directory: Path, rankings: tuple[PartialRanking, ...], detail: str
) -> bool:
    path = write_replay(
        directory / "selftest-replay.json",
        SELFTEST_CHECK_ID,
        rankings,
        detail=detail,
    )
    return bool(replay_file(path))
