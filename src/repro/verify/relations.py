"""The metamorphic relation library: paper theorems as executable checks.

Each :class:`Relation` takes ``arity`` rankings over a common domain and
returns ``None`` (the relation holds) or a human-readable violation
description. Unlike the differential oracles (:mod:`repro.verify.oracles`),
which only say two implementations *agree*, these say the implementations
agree with the *mathematics*: a harness bug that broke reference and
variant identically would still be caught here.

The catalog (see :func:`relations`):

* identities every metric must satisfy — symmetry, ``d(x, x) = 0``,
  invariance under reversing both arguments;
* the ``*``-refinement contraction of Lemma 3 / Lemma 4;
* the Theorem 5 witness structure and its rho-independence, with the
  Proposition 6 closed form and the Lemma 25 profile counterpart;
* the Theorem 7 equivalence band (Theorem 20, Theorem 24, Lemma 25) plus
  the classical Diaconis–Graham inequalities on full refinements;
* the Proposition 13 triangle / near-triangle inequalities;
* monotonicity of ``K^(p)`` in the penalty parameter;
* soundness of the SCC-condensed exact Kemeny decomposition (the
  divide-and-conquer optimum equals the monolithic Held–Karp optimum).

Exact (``!=``) comparisons below are deliberate: every quantity involved
is a half- or quarter-integer, exactly representable in float64, and the
equalities are proved identities, not approximations. Inequalities that
mix proved bounds use a 1e-9 absolute tolerance, matching
:mod:`repro.metrics.equivalence`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.aggregate.decompose import kemeny_decomposed
from repro.aggregate.kemeny import kemeny_optimal, pair_cost_array
from repro.aggregate.median import median_scores
from repro.aggregate.objective import total_distance
from repro.core.partial_ranking import PartialRanking
from repro.core.refine import common_full_ranking, is_refinement, star
from repro.metrics.equivalence import check_proved_bounds, metric_bundle
from repro.metrics.footrule import footrule, footrule_full
from repro.metrics.hausdorff import (
    footrule_hausdorff,
    hausdorff_witnesses,
    kendall_hausdorff_counts,
)
from repro.metrics.batch import pair_counts_matrix
from repro.metrics.kendall import kendall, kendall_full, pair_counts
from repro.verify.oracles import Rankings

__all__ = ["Relation", "relations"]

_TOL = 1e-9

_CheckFn = Callable[[Rankings], str | None]

#: The four metrics as (name, distance) pairs used by the identity checks.
_METRICS: tuple[tuple[str, Callable[[PartialRanking, PartialRanking], float]], ...] = (
    ("k_prof", kendall),
    ("f_prof", footrule),
    ("k_haus", kendall_hausdorff_counts),
    ("f_haus", footrule_hausdorff),
)


@dataclass(frozen=True, slots=True)
class Relation:
    """One executable metamorphic property of the metric family."""

    name: str
    arity: int
    citation: str
    check: _CheckFn


def _check_symmetry(rankings: Rankings) -> str | None:
    sigma, tau = rankings[0], rankings[1]
    for name, metric in _METRICS:
        forward = metric(sigma, tau)
        backward = metric(tau, sigma)
        if forward != backward:
            return f"{name} not symmetric: d(s,t)={forward} but d(t,s)={backward}"
    return None


def _check_regularity(rankings: Rankings) -> str | None:
    sigma = rankings[0]
    for name, metric in _METRICS:
        value = metric(sigma, sigma)
        if value != 0:
            return f"{name}(s, s) = {value}, expected 0"
    return None


def _check_reversal(rankings: Rankings) -> str | None:
    sigma, tau = rankings[0], rankings[1]
    for name, metric in _METRICS:
        plain = metric(sigma, tau)
        reversed_both = metric(sigma.reverse(), tau.reverse())
        if plain != reversed_both:
            return (
                f"{name} not reversal-invariant: d(s,t)={plain} but "
                f"d(s^R,t^R)={reversed_both}"
            )
    return None


def _check_star_contraction(rankings: Rankings) -> str | None:
    """Lemma 3 / Lemma 4: refining sigma by tau removes exactly the
    sigma-only tie penalty — ``K^(p)(tau*sigma, tau) = K^(p)(sigma, tau)
    - p |S|`` — and the refinement relation holds."""
    sigma, tau = rankings[0], rankings[1]
    refined = star(tau, sigma)
    if not is_refinement(refined, sigma):
        return f"star(tau, sigma) = {refined!r} does not refine sigma"
    tied_sigma_only = pair_counts(sigma, tau).tied_first_only
    for p in (0.25, 0.5, 1.0):
        before = kendall(sigma, tau, p)
        after = kendall(refined, tau, p)
        expected = before - p * tied_sigma_only
        if after != expected:
            return (
                f"K^({p})(tau*sigma, tau) = {after}, expected "
                f"{before} - {p}*{tied_sigma_only} = {expected}"
            )
    return None


def _check_witnesses(rankings: Rankings) -> str | None:
    """Theorem 5 structure: witnesses are full rankings refining their
    sides, attain the Proposition 6 closed form, and the Hausdorff values
    do not depend on the choice of rho."""
    sigma, tau = rankings[0], rankings[1]
    w = hausdorff_witnesses(sigma, tau)
    for label, witness, side in (
        ("sigma_1", w.sigma_1, sigma),
        ("sigma_2", w.sigma_2, sigma),
        ("tau_1", w.tau_1, tau),
        ("tau_2", w.tau_2, tau),
    ):
        if not witness.is_full:
            return f"witness {label} is not a full ranking: {witness!r}"
        if not is_refinement(witness, side):
            return f"witness {label} does not refine its side"
    from_witnesses = max(
        kendall_full(w.sigma_1, w.tau_1), kendall_full(w.sigma_2, w.tau_2)
    )
    closed_form = kendall_hausdorff_counts(sigma, tau)
    if from_witnesses != closed_form:
        return (
            f"K_Haus from witnesses = {from_witnesses}, Proposition 6 "
            f"closed form = {closed_form}"
        )
    rho_alt = common_full_ranking(sigma).reverse()
    w2 = hausdorff_witnesses(sigma, tau, rho_alt)
    k_alt = max(kendall_full(w2.sigma_1, w2.tau_1), kendall_full(w2.sigma_2, w2.tau_2))
    if k_alt != from_witnesses:
        return f"K_Haus depends on rho: {from_witnesses} vs {k_alt}"
    f_default = max(
        footrule_full(w.sigma_1, w.tau_1), footrule_full(w.sigma_2, w.tau_2)
    )
    f_alt = max(
        footrule_full(w2.sigma_1, w2.tau_1), footrule_full(w2.sigma_2, w2.tau_2)
    )
    if f_default != f_alt:
        return f"F_Haus depends on rho: {f_default} vs {f_alt}"
    return None


def _check_closed_forms(rankings: Rankings) -> str | None:
    """Proposition 6 (``K_Haus = |U| + max(|S|, |T|)``) and Lemma 25
    (``K_prof = |U| + (|S| + |T|)/2``) from independently derived counts."""
    sigma, tau = rankings[0], rankings[1]
    counts = pair_counts(sigma, tau)
    k_haus = kendall_hausdorff_counts(sigma, tau)
    expected_haus = counts.discordant + max(
        counts.tied_first_only, counts.tied_second_only
    )
    if k_haus != expected_haus:
        return f"K_Haus = {k_haus}, Proposition 6 predicts {expected_haus}"
    k_prof = kendall(sigma, tau)
    expected_prof = counts.discordant + (
        counts.tied_first_only + counts.tied_second_only
    ) / 2
    if k_prof != expected_prof:
        return f"K_prof = {k_prof}, Lemma 25 predicts {expected_prof}"
    return None


def _check_equivalence_band(rankings: Rankings) -> str | None:
    """The Theorem 7 constant-factor band (Theorem 20, Theorem 24,
    Lemma 25), delegated to :func:`repro.metrics.equivalence.check_proved_bounds`."""
    bundle = metric_bundle(rankings[0], rankings[1])
    failures = check_proved_bounds(bundle)
    return "; ".join(failures) if failures else None


def _check_diaconis_graham(rankings: Rankings) -> str | None:
    """The classical ``K <= F <= 2K`` on the full refinements obtained by
    star-refining both sides with a common rho."""
    rho = common_full_ranking(rankings[0])
    sigma_full = star(rho, rankings[0])
    tau_full = star(rho, rankings[1])
    k = kendall_full(sigma_full, tau_full)
    f = footrule_full(sigma_full, tau_full)
    if k > f + _TOL or f > 2 * k + _TOL:
        return f"Diaconis-Graham violated on full refinements: K={k}, F={f}"
    return None


def _check_near_triangle(rankings: Rankings) -> str | None:
    """Proposition 13: ``K^(p)`` satisfies the triangle inequality for
    p >= 1/2 and the c-relaxed version with ``c = 1/(2p)`` below; the
    other three metrics are genuine metrics (c = 1)."""
    a, b, c = rankings[0], rankings[1], rankings[2]
    for name, metric in _METRICS:
        direct = metric(a, c)
        detour = metric(a, b) + metric(b, c)
        if direct > detour + _TOL:
            return f"{name} triangle violated: d(a,c)={direct} > {detour}"
    for p, constant in ((0.25, 2.0), (0.5, 1.0), (1.0, 1.0)):
        direct_p = kendall(a, c, p)
        detour_p = kendall(a, b, p) + kendall(b, c, p)
        if direct_p > constant * detour_p + _TOL:
            return (
                f"K^({p}) near-triangle violated: d(a,c)={direct_p} > "
                f"{constant} * {detour_p}"
            )
    return None


def _check_penalty_monotone(rankings: Rankings) -> str | None:
    """``K^(p)`` is nondecreasing (indeed linear) in p: larger tie
    penalties can only increase the distance."""
    sigma, tau = rankings[0], rankings[1]
    grid = (0.0, 0.25, 0.5, 0.75, 1.0)
    values = [kendall(sigma, tau, p) for p in grid]
    for (p_lo, lo), (p_hi, hi) in zip(zip(grid, values), zip(grid[1:], values[1:])):
        if lo > hi + _TOL:
            return f"K^(p) decreasing in p: K^({p_lo})={lo} > K^({p_hi})={hi}"
    return None


def _check_refinement_distance_drop(rankings: Rankings) -> str | None:
    """Refining sigma toward tau never increases any of the four
    distances to tau (the contraction direction of Lemma 3 / Lemma 4)."""
    sigma, tau = rankings[0], rankings[1]
    refined = star(tau, sigma)
    for name, metric in _METRICS:
        before = metric(sigma, tau)
        after = metric(refined, tau)
        if after > before + _TOL:
            return (
                f"{name} increased under refinement toward tau: "
                f"{before} -> {after}"
            )
    return None


def _check_weighted_uniform_median(rankings: Rankings) -> str | None:
    """Weighted median with uniform weights equals the unweighted median.

    With every voter weight equal to a constant ``c > 0`` the weighted L1
    objective is ``c`` times the unweighted one, so the minimizer sets
    coincide — for every tie rule, and bitwise on both engines (the
    prefix-weight crossings happen at the same indices).
    """
    for constant in (1.0, 0.5):
        weights = [constant] * len(rankings)
        for tie in ("low", "mid", "high"):
            plain = median_scores(rankings, tie=tie, engine="dict")
            for engine in ("dict", "array"):
                weighted = median_scores(
                    rankings, tie=tie, weights=weights, engine=engine
                )
                if weighted != plain:
                    return (
                        f"uniform weights {constant} changed the {tie} median "
                        f"on the {engine} engine"
                    )
    return None


def _check_tiled_gemm_agreement(rankings: Rankings) -> str | None:
    """The cache-blocked GEMM, the one-shot dense GEMM, and the per-pair
    kernels classify every pair of rankings identically.

    All three strategies are forced on the small instance (where each is
    affordable), and the classifications are additionally checked against
    the object-level :func:`pair_counts` — integer quantities throughout,
    so every comparison is exact."""
    matrices = {
        strategy: pair_counts_matrix(rankings, strategy=strategy)
        for strategy in ("dense", "tiled", "pairs")
    }
    for i in range(len(rankings)):
        for j in range(i + 1, len(rankings)):
            dense = matrices["dense"].pair_counts(i, j)
            for strategy in ("tiled", "pairs"):
                other = matrices[strategy].pair_counts(i, j)
                if other != dense:
                    return (
                        f"pair ({i},{j}): {strategy} strategy classifies "
                        f"{other}, dense GEMM classifies {dense}"
                    )
            objectwise = pair_counts(rankings[i], rankings[j])
            if dense != objectwise:
                return (
                    f"pair ({i},{j}): dense GEMM classifies {dense}, the "
                    f"object metric {objectwise}"
                )
    return None


#: Domain cap for the decomposition relation: every component DP is at
#: most 2^10 states, so the check stays cheap on every fuzzed profile.
_DECOMPOSE_MAX_ITEMS = 10


def _check_scc_decomposition(rankings: Rankings) -> str | None:
    """The decomposed solver certifies the monolithic optimum.

    On a (self-restricted) instance small enough to cross-check:

    * the SCC components partition the domain and the returned ranking
      places them in an order where every cross-component pair sits at
      its pairwise-minimum cost (the soundness precondition);
    * the decomposed objective equals the monolithic Held–Karp optimum
      *exactly* (both are sums of the same half-integer pair costs), and
      independently re-evaluating the returned ranking against the
      profile reproduces it;
    * the reported lower bound never exceeds the optimum.
    """
    domain = sorted(rankings[0].domain, key=repr)
    if len(domain) > _DECOMPOSE_MAX_ITEMS:
        keep = domain[:_DECOMPOSE_MAX_ITEMS]
        rankings = tuple(sigma.restricted_to(keep) for sigma in rankings)
    result = kemeny_decomposed(rankings, require_exact=True)
    if not result.exact:
        return "require_exact=True returned a result with exact=False"
    _, monolithic = kemeny_optimal(rankings, decompose=False)
    if result.objective != monolithic:
        return (
            f"decomposed optimum {result.objective} != monolithic "
            f"Held-Karp optimum {monolithic}"
        )
    reevaluated = total_distance(result.ranking, rankings, "k_prof")
    if reevaluated != result.objective:
        return (
            f"reported objective {result.objective} but the ranking costs "
            f"{reevaluated} against the profile"
        )
    covered = [item for component in result.components for item in component]
    if sorted(covered, key=repr) != sorted(rankings[0].domain, key=repr) or len(
        covered
    ) != len(set(covered)):
        return "SCC components do not partition the domain"
    items, cost = pair_cost_array(rankings)
    slot = {item: i for i, item in enumerate(items)}
    for a, earlier in enumerate(result.components):
        for later in result.components[a + 1 :]:
            for x in earlier:
                for y in later:
                    forward = cost[slot[x], slot[y]]
                    backward = cost[slot[y], slot[x]]
                    if forward > backward:
                        return (
                            f"components misordered: placing {x!r} before "
                            f"{y!r} costs {forward} > {backward}"
                        )
    if result.lower_bound > result.objective + _TOL:
        return (
            f"pairwise lower bound {result.lower_bound} exceeds the "
            f"optimum {result.objective}"
        )
    return None


_RELATIONS: tuple[Relation, ...] = (
    Relation("symmetry", 2, "metric axiom (Proposition 13)", _check_symmetry),
    Relation("regularity", 1, "metric axiom: d(x, x) = 0", _check_regularity),
    Relation("reversal-invariance", 2, "relabeling invariance", _check_reversal),
    Relation("star-contraction", 2, "Lemma 3 / Lemma 4", _check_star_contraction),
    Relation("hausdorff-witnesses", 2, "Theorem 5 / Proposition 6", _check_witnesses),
    Relation("closed-forms", 2, "Proposition 6 / Lemma 25", _check_closed_forms),
    Relation("equivalence-band", 2, "Theorem 7 (Theorem 20, Theorem 24)", _check_equivalence_band),
    Relation("diaconis-graham", 2, "classical K <= F <= 2K on full rankings", _check_diaconis_graham),
    Relation("near-triangle", 3, "Proposition 13", _check_near_triangle),
    Relation("penalty-monotonicity", 2, "K^(p) linear in p", _check_penalty_monotone),
    Relation(
        "refinement-monotonicity", 2, "Lemma 3 / Lemma 4", _check_refinement_distance_drop
    ),
    Relation(
        "tiled-gemm-agreement",
        0,
        "Proposition 6 pair categories: blocked GEMM == dense GEMM == per-pair",
        _check_tiled_gemm_agreement,
    ),
    Relation(
        "kemeny-scc-decomposition",
        0,
        "ParCons condensation: decomposed optimum == monolithic Held-Karp optimum",
        _check_scc_decomposition,
    ),
    Relation(
        "median-weighted-uniform",
        0,
        "Lemma 8 / Lemma 8W: uniform voter weights reduce to the plain median",
        _check_weighted_uniform_median,
    ),
)


def _plugin_symmetry_check(
    name: str, metric: Callable[[PartialRanking, PartialRanking], float]
) -> _CheckFn:
    def check(rankings: Rankings) -> str | None:
        sigma, tau = rankings[0], rankings[1]
        forward = metric(sigma, tau)
        backward = metric(tau, sigma)
        if forward != backward:
            return f"{name} not symmetric: d(s,t)={forward} but d(t,s)={backward}"
        return None

    return check


def _plugin_regularity_check(
    name: str, metric: Callable[[PartialRanking, PartialRanking], float]
) -> _CheckFn:
    def check(rankings: Rankings) -> str | None:
        sigma = rankings[0]
        value = metric(sigma, sigma)
        if value != 0:
            return f"{name}(s, s) = {value}, expected 0"
        return None

    return check


def _plugin_relations() -> tuple[Relation, ...]:
    """Auto-contributed symmetry + regularity checks per metric plugin.

    Each registered non-builtin plugin claims an ``axiom_class``; the
    bare minimum either class implies is symmetry and ``d(x, x) = 0``,
    so every plugin gets both relations for free (mirroring
    :func:`_check_symmetry` / :func:`_check_regularity`, which keep
    covering the four built-ins). Rebuilt per call so late-registered
    plugins propagate to ``--list-checks`` and the fuzz loop.
    """
    # Imported lazily: force first-party plugin registration without a
    # module-level verify -> plugins import edge.
    import repro.metrics.plugins  # noqa: F401
    from repro.metrics.registry import registered_metrics

    rels = []
    for plugin in registered_metrics():
        if plugin.builtin:
            continue
        rels.append(
            Relation(
                f"symmetry-{plugin.name}",
                2,
                f"metric axiom ({plugin.axiom_class}): {plugin.citation}",
                _plugin_symmetry_check(plugin.name, plugin.scalar),
            )
        )
        rels.append(
            Relation(
                f"regularity-{plugin.name}",
                1,
                f"metric axiom ({plugin.axiom_class}): {plugin.citation}",
                _plugin_regularity_check(plugin.name, plugin.scalar),
            )
        )
    return tuple(rels)


def relations() -> tuple[Relation, ...]:
    """The full metamorphic relation catalog.

    The static catalog plus auto-contributed symmetry/regularity
    relations for every registered non-builtin metric plugin.
    """
    return _RELATIONS + _plugin_relations()
