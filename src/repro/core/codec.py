"""Interned domain codecs: one shared item ⇄ index encoding per domain.

Every array kernel in :mod:`repro.metrics.fast` and
:mod:`repro.metrics.batch` needs the items of the common domain ``D``
arranged in a fixed order so that two rankings' dense vectors line up
element-wise. A :class:`DomainCodec` is that arrangement: the items sorted
by the library's canonical key (type name, then ``repr``), plus the inverse
``item -> slot`` mapping.

Codecs are *interned*: :meth:`DomainCodec.for_domain` returns the same
codec object for the same domain, so every ranking of a profile encodes
against one shared codec and :meth:`PartialRanking.dense_arrays
<repro.core.partial_ranking.PartialRanking.dense_arrays>` caches by codec
identity. The intern table holds codecs weakly — once no ranking caches
against a codec it can be collected.

The canonical order deliberately coincides with
:func:`repro.core.refine.common_full_ranking` (both sort by the canonical
bucket key), so a codec's slot order doubles as the deterministic tie-break
ranking ``rho`` of Theorem 5: array kernels break residual ties by slot
index and match the object-based Hausdorff computations bit for bit.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from weakref import WeakValueDictionary

import numpy as np
import numpy.typing as npt

from repro.core.partial_ranking import Item, PartialRanking, _canonical_bucket_key
from repro.errors import DomainMismatchError, InvalidRankingError

__all__ = ["DomainCodec"]


class DomainCodec:
    """A canonical, interned ``item ⇄ index`` encoding of one domain.

    Do not call the constructor directly in application code — use
    :meth:`for_domain` / :meth:`for_profile` so equal domains share one
    codec and per-ranking array caches hit.
    """

    __slots__ = ("_domain", "_items", "_index", "__weakref__")

    _interned: "WeakValueDictionary[frozenset[Item], DomainCodec]" = WeakValueDictionary()

    def __init__(self, domain: Iterable[Item]) -> None:
        frozen = domain if isinstance(domain, frozenset) else frozenset(domain)
        if not frozen:
            raise InvalidRankingError("cannot build a codec for an empty domain")
        self._domain = frozen
        self._items: tuple[Item, ...] = tuple(sorted(frozen, key=_canonical_bucket_key))
        self._index: dict[Item, int] = {item: i for i, item in enumerate(self._items)}

    # ------------------------------------------------------------------
    # Interning constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_domain(cls, domain: frozenset[Item]) -> "DomainCodec":
        """The shared codec for ``domain`` (created on first request)."""
        codec = cls._interned.get(domain)
        if codec is None:
            codec = cls(domain)
            cls._interned[codec._domain] = codec
        return codec

    @classmethod
    def for_profile(cls, rankings: Sequence[PartialRanking]) -> "DomainCodec":
        """The shared codec for a profile, validating the common domain.

        Raises :class:`~repro.errors.DomainMismatchError` if the profile is
        empty or its rankings disagree on the domain.
        """
        if not rankings:
            raise DomainMismatchError("cannot build a codec for an empty profile")
        domain = rankings[0].domain
        for index, ranking in enumerate(rankings[1:], start=1):
            if ranking.domain is not domain and ranking.domain != domain:
                raise DomainMismatchError(
                    f"profile ranking {index} has a different domain than ranking 0 "
                    f"(sizes {len(ranking)} and {len(domain)})"
                )
        return cls.for_domain(domain)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def domain(self) -> frozenset[Item]:
        """The encoded item set."""
        return self._domain

    @property
    def items(self) -> tuple[Item, ...]:
        """All items in canonical (slot) order."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._index

    def slot(self, item: Item) -> int:
        """The 0-based slot of ``item`` in the canonical order."""
        try:
            return self._index[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in codec domain") from None

    def __repr__(self) -> str:
        return f"DomainCodec(<{len(self._items)} items>)"

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(
        self, ranking: PartialRanking
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.float64]]:
        """Encode one ranking as dense ``(bucket_index, positions)`` arrays.

        Both arrays are aligned to :attr:`items` and returned read-only, so
        they can be cached and shared safely. Prefer
        :meth:`PartialRanking.dense_arrays
        <repro.core.partial_ranking.PartialRanking.dense_arrays>`, which
        memoizes this per ranking.
        """
        if ranking.domain is not self._domain and ranking.domain != self._domain:
            raise DomainMismatchError(
                f"ranking domain (size {len(ranking)}) does not match codec domain "
                f"(size {len(self._items)})"
            )
        n = len(self._items)
        # same-package access to the ranking's internal dicts: one dict
        # lookup per item instead of a method call per item
        bucket_of = ranking._bucket_index
        position_of = ranking._positions
        bucket_index = np.fromiter(
            (bucket_of[item] for item in self._items), dtype=np.int64, count=n
        )
        positions = np.fromiter(
            (position_of[item] for item in self._items), dtype=np.float64, count=n
        )
        bucket_index.setflags(write=False)
        positions.setflags(write=False)
        return bucket_index, positions
