"""Core data model: partial rankings (bucket orders) and refinement algebra."""

from repro.core.arena import ArenaHandle, ProfileArena, int32_fits, storage_dtype
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.core.refine import (
    common_full_ranking,
    full_refinements,
    is_refinement,
    star,
    star_chain,
)
from repro.core.topk import (
    footrule_location_parameter,
    project_to_active_domain,
    top_k_from_scores,
)

__all__ = [
    "Item",
    "PartialRanking",
    "DomainCodec",
    "ArenaHandle",
    "ProfileArena",
    "int32_fits",
    "storage_dtype",
    "star",
    "star_chain",
    "is_refinement",
    "full_refinements",
    "common_full_ranking",
    "top_k_from_scores",
    "project_to_active_domain",
    "footrule_location_parameter",
]
