"""Top-k list helpers and the Appendix A.3 correspondence.

A *top-k list* in this paper is a partial ranking whose type is
``(1, 1, ..., 1, |D| - k)``: k singleton buckets followed by one bottom
bucket holding everything else. Appendix A.3 relates the partial-ranking
metrics restricted to top-k lists to the distance measures of
Fagin–Kumar–Sivakumar (SODA 2003); in particular, the footrule-with-location
parameter metric ``F^(ℓ)`` coincides with ``F_prof`` at the canonical
location ``ℓ = (|D| + k + 1) / 2``.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError

__all__ = [
    "top_k_from_scores",
    "top_k_cutoff",
    "project_to_active_domain",
    "footrule_location_parameter",
    "footrule_with_location",
    "top_items",
]


def top_k_from_scores(
    scores: Mapping[Item, Any],
    k: int,
    *,
    reverse: bool = False,
) -> PartialRanking:
    """Build a top-k list by score, with deterministic tie-breaking.

    The k best-scoring items become the singleton buckets (ties broken by
    item repr for reproducibility); the remainder forms the bottom bucket.
    """
    if not 0 < k <= len(scores):
        raise InvalidRankingError(f"k={k} out of range for domain of size {len(scores)}")
    def key(item: Item) -> tuple[Any, str, str]:
        return (scores[item], type(item).__name__, repr(item))

    ordered = sorted(scores, key=key, reverse=reverse)
    return PartialRanking.top_k(ordered[:k], scores.keys())


def top_k_cutoff(sigma: PartialRanking, k: int) -> PartialRanking:
    """Coarsen a partial ranking into a top-k list.

    Buckets lying entirely within the first k positions become singleton
    buckets (ties broken canonically); everything else collapses into the
    bottom bucket. A bucket straddling the cutoff raises, because there is
    no canonical way to split it — refine the ranking first.
    """
    if not 0 < k < len(sigma):
        raise InvalidRankingError(f"k={k} out of range for domain of size {len(sigma)}")
    top: list[Item] = []
    for bucket in sigma.buckets:
        if len(top) == k:
            break
        if len(top) + len(bucket) > k:
            raise InvalidRankingError(
                f"bucket of size {len(bucket)} straddles the top-{k} cutoff; "
                "refine the ranking before truncating"
            )
        top.extend(sorted(bucket, key=repr))
    return PartialRanking.top_k(top, sigma.domain)


def project_to_active_domain(
    sigma: PartialRanking,
    tau: PartialRanking,
    k: int,
) -> tuple[PartialRanking, PartialRanking]:
    """Restrict two top-k lists to their *active domain* (Appendix A.3).

    The active domain is the union of the items in the top k buckets of
    either list. This reproduces the Fagin–Kumar–Sivakumar setting in which
    each top-k list carries its own small domain.
    """
    if not sigma.is_top_k(k) or not tau.is_top_k(k):
        raise InvalidRankingError("both rankings must be top-k lists for the same k")
    active: set[Item] = set()
    for ranking in (sigma, tau):
        for bucket in ranking.buckets[:k]:
            active.update(bucket)
    return sigma.restricted_to(active), tau.restricted_to(active)


def footrule_location_parameter(domain_size: int, k: int) -> float:
    """The canonical location parameter ``ℓ = (|D| + k + 1) / 2``.

    At this ℓ, ``F^(ℓ)`` equals ``F_prof`` on top-k lists (Appendix A.3).
    """
    return (domain_size + k + 1) / 2


def footrule_with_location(
    sigma: PartialRanking,
    tau: PartialRanking,
    k: int,
    ell: float | None = None,
) -> float:
    """The footrule distance with location parameter ``ℓ`` (Appendix A.3).

    Every item outside the top k of a list is treated as sitting at
    position ℓ; the distance is the L1 distance between the two adjusted
    position vectors. ``ell`` defaults to the canonical value at which this
    equals ``F_prof``.
    """
    if sigma.domain != tau.domain:
        raise DomainMismatchError("footrule_with_location requires a common domain")
    if not sigma.is_top_k(k) or not tau.is_top_k(k):
        raise InvalidRankingError("both rankings must be top-k lists for the same k")
    if ell is None:
        ell = footrule_location_parameter(len(sigma), k)
    if ell <= k:
        raise InvalidRankingError(f"location parameter ell={ell} must exceed k={k}")

    def adjusted(ranking: PartialRanking, item: Item) -> float:
        pos = ranking[item]
        return pos if pos <= k else ell

    return sum(abs(adjusted(sigma, item) - adjusted(tau, item)) for item in sigma.domain)


def top_items(sigma: PartialRanking, k: int) -> list[Item]:
    """Return the k top items of a top-k list, best first."""
    if not sigma.is_top_k(k):
        raise InvalidRankingError("ranking is not a top-k list for this k")
    result: list[Item] = []
    for bucket in sigma.buckets[:k]:
        (item,) = bucket
        result.append(item)
    return result
