"""Refinement algebra on partial rankings.

The paper's key constructive tool is the ``*`` operator (§2): ``tau * sigma``
is the refinement of ``sigma`` whose ties are broken according to ``tau``.
The Hausdorff characterization (Theorem 5) is expressed entirely in chains of
``*`` applications such as ``rho * tau^R * sigma``, so this module exposes

* :func:`star` — the binary operator,
* :func:`star_chain` — left-to-right evaluation of a chain (associativity
  makes the grouping irrelevant; the property tests verify this),
* :func:`full_refinements` — exhaustive enumeration of the full rankings
  refining a partial ranking (the exponential set the Hausdorff metrics
  quantify over; usable for small domains as a test oracle),
* :func:`is_refinement` / :func:`common_full_ranking` — convenience helpers.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import permutations

from repro.core.partial_ranking import Item, PartialRanking

__all__ = [
    "star",
    "star_chain",
    "is_refinement",
    "full_refinements",
    "count_full_refinements",
    "common_full_ranking",
]


def star(tau: PartialRanking, sigma: PartialRanking) -> PartialRanking:
    """Return ``tau * sigma``: sigma refined with ties broken by tau.

    Properties guaranteed by the definition (and enforced by tests):

    * the result refines ``sigma``;
    * if ``sigma(i) == sigma(j)`` and ``tau(i) < tau(j)`` then the result
      places ``i`` ahead of ``j``;
    * items tied in both stay tied;
    * if ``tau`` is a full ranking the result is a full ranking.
    """
    return sigma.refined_by(tau)


def star_chain(*rankings: PartialRanking) -> PartialRanking:
    """Evaluate ``r1 * r2 * ... * rk`` (right-associated, as in the paper).

    ``star_chain(rho, tau, sigma)`` computes ``rho * (tau * sigma)``; since
    ``*`` is associative the grouping does not matter.
    """
    if not rankings:
        raise ValueError("star_chain requires at least one ranking")
    result = rankings[-1]
    for tau in reversed(rankings[:-1]):
        result = star(tau, result)
    return result


def is_refinement(sigma: PartialRanking, tau: PartialRanking) -> bool:
    """True if ``sigma`` refines ``tau`` (``sigma ⪯ tau``)."""
    return sigma.is_refinement_of(tau)


def count_full_refinements(sigma: PartialRanking) -> int:
    """Return the number of full rankings refining ``sigma``.

    This is the product of the factorials of the bucket sizes.
    """
    total = 1
    for size in sigma.type:
        for factor in range(2, size + 1):
            total *= factor
    return total


def full_refinements(sigma: PartialRanking) -> Iterator[PartialRanking]:
    """Yield every full ranking that refines ``sigma``.

    The count is the product of bucket-size factorials, so this is only
    feasible for small buckets; it is the exhaustive oracle behind the
    Hausdorff metric tests.
    """

    def expand(index: int, prefix: list[Item]) -> Iterator[list[Item]]:
        if index == len(sigma.buckets):
            yield prefix
            return
        for ordering in permutations(sorted(sigma.buckets[index], key=repr)):
            yield from expand(index + 1, prefix + list(ordering))

    for sequence in expand(0, []):
        yield PartialRanking.from_sequence(sequence)


def common_full_ranking(sigma: PartialRanking) -> PartialRanking:
    """Return a canonical full ranking over ``sigma``'s domain.

    Theorem 5 needs "an arbitrary full ranking rho" used consistently for
    both sides; this helper provides a deterministic choice (items sorted by
    type name then repr), so Hausdorff computations are reproducible.
    """
    ordered = sorted(sigma.domain, key=lambda item: (type(item).__name__, repr(item)))
    return PartialRanking.from_sequence(ordered)
