"""Shared-memory profile arenas: one encoding, any number of processes.

The batch kernels already encode a profile once per *process* — the
interned :class:`~repro.core.codec.DomainCodec` plus the per-ranking
:meth:`~repro.core.partial_ranking.PartialRanking.dense_arrays` caches
collapse the m² pairwise evaluations to m encodes. What they did not
solve is the *process boundary*: every pooled code path shipped whole
``(m, n)`` matrices to each worker through pickle, which at the
million-item scale costs more than the kernels themselves.

A :class:`ProfileArena` stores the profile **once** in
:mod:`multiprocessing.shared_memory` as two ``(m, n)`` matrices — the
bucket-index matrix and the position matrix in doubled "half units"
(positions are multiples of ½, so ``2·position`` is an exact integer):

* **int32 storage mode** is auto-selected whenever the doubled positions
  fit (``2n < 2³¹``, i.e. every realistic domain), halving memory and
  bus traffic; totals derived from the arena are still accumulated in
  int64 — narrowing is a *storage* decision sanctioned by
  :func:`int32_fits`, never an accumulator one (RP014 enforces this).
* workers **map, not copy**: :func:`repro.parallel.parallel_map_arena`
  ships only the :class:`ArenaHandle` (a name and a shape) and each
  worker attaches the same physical pages.
* float64 positions are decoded lazily (``half · 0.5``, exact) and
  cached per attached process, so the object-layer kernels see exactly
  the floats they always saw — every arena-backed result is required to
  be bit-for-bit equal to the list-of-rankings path, and the
  ``oracle:aggregate-arena-backed`` / ``oracle:pairwise-strategies``
  checks assert it.

Lifecycle: arenas are refcounted per process. :meth:`from_profile` and
:meth:`attach` return an arena holding one reference; a repeated
:meth:`attach` of the same segment in the same process returns the same
object with its refcount bumped. :meth:`detach` drops one reference;
the last detach closes the mapping and — only in the creating process —
unlinks the segment. The Hypothesis suite drives interleaved
attach/detach sequences across a real pool boundary and asserts that the
segment is gone (and only gone) after the creator's last detach.
"""

from __future__ import annotations

import os
import sys
from collections.abc import Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any
from weakref import WeakValueDictionary

import numpy as np
import numpy.typing as npt

from repro import obs
from repro.core.codec import DomainCodec
from repro.core.partial_ranking import Item, PartialRanking
from repro.errors import InvalidRankingError

__all__ = ["ArenaHandle", "ProfileArena", "int32_fits", "storage_dtype"]

_INT32_MAX = 2**31 - 1


def int32_fits(n: int) -> bool:
    """True when an n-item domain fits the int32 storage mode.

    The stored quantities are bucket indices (< n) and doubled positions
    (≤ 2n), so the binding constraint is ``2n ≤ 2³¹ − 1``. This predicate
    is the *sanction* RP014 recognizes: narrowing to int32 inside the
    kernel modules is legal only downstream of this check.
    """
    return 2 * n <= _INT32_MAX


def storage_dtype(n: int) -> type[np.signedinteger[Any]]:
    """The arena storage dtype for an n-item domain (int32 when it fits)."""
    return np.int32 if int32_fits(n) else np.int64


@dataclass(frozen=True, slots=True)
class ArenaHandle:
    """A picklable address of an arena: everything a worker needs to map it.

    Deliberately tiny — a segment name and the matrix geometry — so
    handing it to a pool task costs bytes where pickling the matrices
    cost gigabytes. The handle carries no domain items; decoding slots
    back to items needs the codec and stays in the owning process.
    """

    name: str
    m: int
    n: int
    storage: str  # "int32" | "int64"

    @property
    def nbytes(self) -> int:
        """Total payload bytes of the two stored matrices."""
        return 2 * self.m * self.n * np.dtype(self.storage).itemsize

    def attach(self) -> "ProfileArena":
        """Shorthand for :meth:`ProfileArena.attach`."""
        return ProfileArena.attach(self)


def _unregister_from_tracker(shm: shared_memory.SharedMemory) -> None:
    """Detach a non-creating process from the resource tracker.

    On POSIX, ``SharedMemory(name=...)`` registers the segment with the
    attaching process's resource tracker, which would unlink it when
    *that* process exits — destroying a segment the creator still owns
    (bpo-39959; fixed by ``track=False`` only in 3.13). Ownership here is
    explicit and refcounted, so attachers must not be tracked.
    """
    if sys.platform == "win32":  # pragma: no cover - no tracker on Windows
        return
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - tracker always ships on POSIX
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except (AttributeError, OSError):  # pragma: no cover - tracker internals moved
        pass


class ProfileArena:
    """A profile of m rankings over n items, resident in shared memory.

    Build with :meth:`from_profile` (or the codec-interned
    :meth:`for_profile`) in the owning process; address with
    :meth:`handle`; map in any process with :meth:`attach`. Release every
    reference with :meth:`detach` — the arena is also a context manager
    that detaches on exit.
    """

    __slots__ = (
        "_shm",
        "_buckets",
        "_half",
        "_codec",
        "_profile",
        "_positions",
        "_owner_pid",
        "_refs",
        "_m",
        "_n",
        "_storage",
        "__weakref__",
    )

    #: Process-local registry of live arenas by segment name, so repeated
    #: attaches (e.g. every task of a pool worker) share one mapping.
    _live: "WeakValueDictionary[str, ProfileArena]" = WeakValueDictionary()
    #: Codec-identity intern table for :meth:`for_profile`.
    _by_codec: "WeakValueDictionary[int, ProfileArena]" = WeakValueDictionary()

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        m: int,
        n: int,
        storage: str,
        codec: DomainCodec | None,
        profile: tuple[PartialRanking, ...] | None,
        owner_pid: int | None,
    ) -> None:
        self._shm = shm
        self._m = m
        self._n = n
        self._storage = storage
        self._codec = codec
        self._profile = profile
        self._positions: npt.NDArray[np.float64] | None = None
        self._owner_pid = owner_pid
        self._refs = 1
        dtype = np.dtype(storage)
        cells = m * n
        buckets = np.ndarray((m, n), dtype=dtype, buffer=shm.buf)
        half = np.ndarray(
            (m, n), dtype=dtype, buffer=shm.buf, offset=cells * dtype.itemsize
        )
        buckets.setflags(write=False)
        half.setflags(write=False)
        self._buckets = buckets
        self._half = half
        ProfileArena._live[shm.name] = self

    # ------------------------------------------------------------------
    # Construction and attachment
    # ------------------------------------------------------------------

    @classmethod
    def from_profile(
        cls,
        rankings: Sequence[PartialRanking],
        codec: DomainCodec | None = None,
    ) -> "ProfileArena":
        """Encode a profile into a fresh shared-memory segment.

        Validates the common domain (via the codec), writes both matrices
        directly into the segment, and returns the owning arena with one
        reference held.
        """
        if codec is None:
            codec = DomainCodec.for_profile(rankings)
        m, n = len(rankings), len(codec)
        if m == 0:
            raise InvalidRankingError("cannot build an arena for an empty profile")
        dtype = np.dtype(storage_dtype(n))
        cells = m * n
        shm = shared_memory.SharedMemory(create=True, size=2 * cells * dtype.itemsize)
        buckets = np.ndarray((m, n), dtype=dtype, buffer=shm.buf)
        half = np.ndarray(
            (m, n), dtype=dtype, buffer=shm.buf, offset=cells * dtype.itemsize
        )
        for row, ranking in enumerate(rankings):
            bucket_row, position_row = ranking.dense_arrays(codec)
            # positions are multiples of ½, so 2·position is an exact
            # integer; rint makes the cast representation-independent
            if int32_fits(n):
                # sanctioned storage narrowing: both quantities fit by the
                # guard; every consumer accumulates in int64
                buckets[row] = bucket_row.astype(np.int32)
                half[row] = np.rint(position_row * 2.0).astype(np.int32)
            else:
                buckets[row] = bucket_row
                half[row] = np.rint(position_row * 2.0).astype(np.int64)
        arena = cls(
            shm,
            m,
            n,
            dtype.name,
            codec,
            tuple(rankings),
            owner_pid=os.getpid(),
        )
        obs.add("core.arena.creates")
        obs.add("core.arena.bytes", 2 * cells * dtype.itemsize)
        return arena

    @classmethod
    def for_profile(cls, rankings: Sequence[PartialRanking]) -> "ProfileArena":
        """The interned arena for this exact profile (codec-identity keyed).

        Returns the live arena built earlier for the same codec and the
        same ranking objects (compared by identity — the arena holds
        strong references, so identity is stable), with its refcount
        bumped; otherwise builds a new one. Every return value must be
        balanced by one :meth:`detach`.
        """
        codec = DomainCodec.for_profile(rankings)
        cached = cls._by_codec.get(id(codec))
        if (
            cached is not None
            and cached.attached
            and cached._codec is codec
            and cached._profile is not None
            and len(cached._profile) == len(rankings)
            and all(a is b for a, b in zip(cached._profile, rankings))
        ):
            cached._refs += 1
            obs.add("core.arena.intern_hits")
            return cached
        arena = cls.from_profile(rankings, codec)
        cls._by_codec[id(codec)] = arena
        return arena

    @classmethod
    def attach(cls, handle: ArenaHandle) -> "ProfileArena":
        """Map an existing segment (zero-copy; memoized per process).

        In the creating process (or a forked child that inherited the
        mapping) this returns the original arena object with its refcount
        bumped; elsewhere it opens the named segment read-only. Attached
        arenas carry no codec — slot-space kernels only.
        """
        live = cls._live.get(handle.name)
        if live is not None and live.attached:
            live._refs += 1
            obs.add("core.arena.attaches")
            return live
        shm = shared_memory.SharedMemory(name=handle.name)
        _unregister_from_tracker(shm)
        arena = cls(
            shm, handle.m, handle.n, handle.storage, None, None, owner_pid=None
        )
        obs.add("core.arena.attaches")
        return arena

    def handle(self) -> ArenaHandle:
        """The picklable address of this arena."""
        self._require_attached()
        return ArenaHandle(
            name=self._shm.name, m=self._m, n=self._n, storage=self._storage
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        """Whether this process still holds at least one reference."""
        return self._refs > 0

    @property
    def refcount(self) -> int:
        return self._refs

    def detach(self) -> None:
        """Drop one reference; the last one closes (and owner-unlinks).

        Closing invalidates every array view handed out by this arena in
        this process. Only the process that created the segment unlinks
        it — a forked worker that inherited the owner object merely
        closes its mapping.
        """
        self._require_attached()
        self._refs -= 1
        obs.add("core.arena.detaches")
        if self._refs:
            return
        # drop the views before closing the buffer they borrow
        self._buckets = None  # type: ignore[assignment]
        self._half = None  # type: ignore[assignment]
        self._positions = None
        self._profile = None
        self._shm.close()
        if self._owner_pid == os.getpid():
            self._shm.unlink()
            obs.add("core.arena.unlinks")

    def __enter__(self) -> "ProfileArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.attached:
            self.detach()

    def _require_attached(self) -> None:
        if self._refs <= 0:
            raise InvalidRankingError("arena has been detached")

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of rankings (matrix rows)."""
        return self._m

    @property
    def n(self) -> int:
        """Domain size (matrix columns)."""
        return self._n

    @property
    def storage(self) -> str:
        """Storage dtype name: ``int32`` (fast path) or ``int64``."""
        return self._storage

    @property
    def nbytes(self) -> int:
        """Shared-memory payload of the two matrices."""
        return 2 * self._m * self._n * np.dtype(self._storage).itemsize

    @property
    def codec(self) -> DomainCodec | None:
        """The profile's codec; ``None`` on handle-attached arenas."""
        return self._codec

    @property
    def bucket_rows(self) -> npt.NDArray[np.signedinteger[Any]]:
        """The ``(m, n)`` bucket-index matrix, read-only, storage dtype."""
        self._require_attached()
        return self._buckets

    @property
    def half_position_rows(self) -> npt.NDArray[np.signedinteger[Any]]:
        """Doubled positions (``2·position``, exact integers), read-only.

        The int fast path: differences and sums of these stay in int64
        (consumers must accumulate with ``dtype=np.int64``) and relate to
        the float positions by an exact factor of 2.
        """
        self._require_attached()
        return self._half

    @property
    def positions(self) -> npt.NDArray[np.float64]:
        """Float64 position matrix, decoded once per process and cached.

        ``half · 0.5`` is exact (halves of integers below 2⁵³), so these
        are bit-for-bit the floats :func:`repro.metrics.batch.position_matrix`
        builds from the rankings themselves.
        """
        self._require_attached()
        cached = self._positions
        if cached is None:
            cached = self._half.astype(np.float64) * 0.5
            cached.setflags(write=False)
            self._positions = cached
            obs.add("core.arena.decodes")
        return cached

    def items(self) -> tuple[Item, ...]:
        """Slot-ordered domain items (owner-side arenas only)."""
        if self._codec is None:
            raise InvalidRankingError(
                "handle-attached arena carries no codec; decode slots in the owner"
            )
        return self._codec.items

    def __len__(self) -> int:
        return self._m

    def __repr__(self) -> str:
        state = "attached" if self.attached else "detached"
        return (
            f"ProfileArena(m={self._m}, n={self._n}, storage={self._storage}, "
            f"{state}, refs={self._refs})"
        )
