"""Partial rankings (bucket orders) as an immutable value type.

A *bucket order* is a linear order with ties: an ordered partition
``B_1, ..., B_t`` of a domain ``D``. The associated *partial ranking* maps
each item ``x`` in bucket ``B_i`` to the bucket's position

    ``pos(B_i) = sum_{j < i} |B_j| + (|B_i| + 1) / 2``,

the average location within the bucket (Fagin et al., PODS 2004, §2). All
positions are multiples of one half, so they are exactly representable as
floats and every L1 computation in this library is exact.

:class:`PartialRanking` is hashable and immutable; all "mutating" operations
(reverse, refinement) return new instances.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from itertools import islice
from typing import TYPE_CHECKING, Any, TypeVar

from repro.errors import InvalidRankingError

if TYPE_CHECKING:
    import numpy as np
    import numpy.typing as npt

    from repro.core.codec import DomainCodec

Item = Hashable
T = TypeVar("T", bound=Item)

__all__ = ["Item", "PartialRanking"]


def _canonical_bucket_key(item: Item) -> tuple[str, str]:
    """Deterministic sort key for items inside a bucket.

    Items within a bucket are unordered mathematically; we keep a canonical
    order (by type name, then repr) so that iteration, ``repr`` and
    tie-breaking behaviour are reproducible across runs regardless of hash
    randomization.
    """
    return (type(item).__name__, repr(item))


class PartialRanking:
    """An immutable bucket order / partial ranking over a finite domain.

    Parameters
    ----------
    buckets:
        The ordered partition: an iterable of non-empty iterables of
        hashable items. Earlier buckets are "better" (lower positions).

    Raises
    ------
    InvalidRankingError
        If any bucket is empty, an item repeats, or an item is unhashable.

    Examples
    --------
    >>> sigma = PartialRanking([["a"], ["b", "c"], ["d"]])
    >>> sigma["a"], sigma["b"], sigma["c"], sigma["d"]
    (1.0, 2.5, 2.5, 4.0)
    >>> sigma.type
    (1, 2, 1)
    """

    __slots__ = (
        "_buckets",
        "_positions",
        "_bucket_index",
        "_hash",
        "_domain",
        "_order",
        "_dense",
    )

    def __init__(self, buckets: Iterable[Iterable[Item]]) -> None:
        frozen: list[frozenset[Item]] = []
        for raw in buckets:
            try:
                bucket = frozenset(raw)
            except TypeError as exc:
                raise InvalidRankingError(f"bucket contains unhashable items: {exc}") from exc
            if not bucket:
                raise InvalidRankingError("buckets must be non-empty")
            frozen.append(bucket)

        positions: dict[Item, float] = {}
        bucket_index: dict[Item, int] = {}
        offset = 0
        for index, bucket in enumerate(frozen):
            pos = offset + (len(bucket) + 1) / 2
            for item in bucket:
                if item in positions:
                    raise InvalidRankingError(f"item {item!r} appears in more than one bucket")
                positions[item] = pos
                bucket_index[item] = index
            offset += len(bucket)

        self._buckets: tuple[frozenset[Item], ...] = tuple(frozen)
        self._positions = positions
        self._bucket_index = bucket_index
        self._hash: int | None = None
        # lazily-computed caches; see the matching properties/methods
        self._domain: frozenset[Item] | None = None
        self._order: tuple[Item, ...] | None = None
        self._dense: (
            tuple[DomainCodec, npt.NDArray[np.int64], npt.NDArray[np.float64]] | None
        ) = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_sequence(cls, items: Sequence[Item]) -> "PartialRanking":
        """Build a full ranking (all singleton buckets) from an ordered sequence.

        >>> PartialRanking.from_sequence("abc").is_full
        True
        """
        return cls([[item] for item in items])

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[Item, Any],
        *,
        reverse: bool = False,
    ) -> "PartialRanking":
        """Build a partial ranking by sorting items by score.

        Items with equal scores share a bucket — this is exactly the
        "sort a database column with few distinct values" operation the
        paper motivates. By default lower scores rank first (ascending
        sort); pass ``reverse=True`` to rank higher scores first.

        This is also the paper's ``f-bar`` construction: the partial
        ranking induced by an arbitrary real-valued function ``f``.

        >>> PartialRanking.from_scores({"a": 2, "b": 1, "c": 2})
        PartialRanking['b' | 'a', 'c']
        """
        if not scores:
            raise InvalidRankingError("cannot rank an empty mapping of scores")
        groups: dict[Any, list[Item]] = {}
        for item, score in scores.items():
            groups.setdefault(score, []).append(item)
        try:
            ordered = sorted(groups, reverse=reverse)
        except TypeError as exc:
            raise InvalidRankingError(f"scores are not mutually comparable: {exc}") from exc
        return cls([groups[score] for score in ordered])

    @classmethod
    def top_k(
        cls,
        top_items: Sequence[Item],
        domain: Iterable[Item],
    ) -> "PartialRanking":
        """Build a top-k list: k singleton buckets plus one bottom bucket.

        ``top_items`` gives the top elements in order; every other member
        of ``domain`` goes into the bottom bucket (§2 of the paper — note
        that unlike Fagin–Kumar–Sivakumar 2003, the bottom bucket is part
        of the ranking so that all rankings share the fixed domain).

        >>> PartialRanking.top_k(["a", "b"], "abcd").type
        (1, 1, 2)
        """
        domain_set = set(domain)
        top_list = list(top_items)
        top_set = set(top_list)
        if len(top_set) != len(top_list):
            raise InvalidRankingError("top_items contains duplicates")
        if not top_set <= domain_set:
            missing = top_set - domain_set
            raise InvalidRankingError(f"top_items not in domain: {sorted(map(repr, missing))}")
        rest = domain_set - top_set
        buckets: list[list[Item]] = [[item] for item in top_list]
        if rest:
            buckets.append(sorted(rest, key=_canonical_bucket_key))
        if not buckets:
            raise InvalidRankingError("top-k list over an empty domain")
        return cls(buckets)

    @classmethod
    def single_bucket(cls, domain: Iterable[Item]) -> "PartialRanking":
        """Build the trivial partial ranking where everything is tied."""
        return cls([list(domain)])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def buckets(self) -> tuple[frozenset[Item], ...]:
        """The ordered partition as a tuple of frozensets."""
        return self._buckets

    @property
    def domain(self) -> frozenset[Item]:
        """The set of all ranked items.

        Computed once and cached: every metric call checks
        ``sigma.domain != tau.domain``, so the property must not allocate
        a fresh frozenset per access.
        """
        if self._domain is None:
            self._domain = frozenset(self._positions)
        return self._domain

    @property
    def positions(self) -> dict[Item, float]:
        """A fresh ``item -> position`` dict (the F-profile of §3.1)."""
        return dict(self._positions)

    @property
    def type(self) -> tuple[int, ...]:
        """The type of the bucket order: the sequence of bucket sizes (§A.1)."""
        return tuple(len(bucket) for bucket in self._buckets)

    @property
    def is_full(self) -> bool:
        """True if every bucket is a singleton (a full ranking)."""
        return all(len(bucket) == 1 for bucket in self._buckets)

    def is_top_k(self, k: int) -> bool:
        """True if this is a top-k list: k singletons then one bottom bucket.

        A full ranking over n items counts as a top-n (and top-(n-1)) list.
        """
        if not 0 <= k <= len(self):
            return False
        t = self.type
        if len(self) == k:
            return t == (1,) * k
        return t == (1,) * k + (len(self) - k,)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item: Item) -> bool:
        return item in self._positions

    def __getitem__(self, item: Item) -> float:
        """Return the position ``sigma(item)``."""
        try:
            return self._positions[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in ranking domain") from None

    def position(self, item: Item) -> float:
        """Alias of ``self[item]``, reading closer to the paper's sigma(x)."""
        return self[item]

    def bucket_index(self, item: Item) -> int:
        """Return the 0-based index of the bucket containing ``item``."""
        try:
            return self._bucket_index[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in ranking domain") from None

    def bucket_of(self, item: Item) -> frozenset[Item]:
        """Return the bucket containing ``item``."""
        return self._buckets[self.bucket_index(item)]

    def items_in_order(self) -> list[Item]:
        """All items, bucket by bucket, canonical order within buckets.

        The canonical order is computed once and cached (``__iter__`` and
        ``repr`` hit it repeatedly in experiments); the returned list is a
        fresh copy the caller may mutate.
        """
        return list(self._canonical_order())

    def _canonical_order(self) -> tuple[Item, ...]:
        if self._order is None:
            ordered: list[Item] = []
            for bucket in self._buckets:
                ordered.extend(sorted(bucket, key=_canonical_bucket_key))
            self._order = tuple(ordered)
        return self._order

    def __iter__(self) -> Iterator[Item]:
        return iter(self._canonical_order())

    def dense_arrays(
        self, codec: "DomainCodec"
    ) -> "tuple[npt.NDArray[np.int64], npt.NDArray[np.float64]]":
        """Dense per-item arrays aligned to ``codec``'s item order.

        Returns ``(bucket_index, positions)``: an int64 vector of 0-based
        bucket indices and a float64 vector of the paper's positions, both
        indexed by ``codec`` slots. Computed once per ranking and cached —
        this is what makes m² pairwise evaluations over a shared profile
        pay the per-ranking encoding cost only m times (see
        :mod:`repro.metrics.batch`). The arrays are read-only views of the
        cache; copy before mutating.
        """
        cached = self._dense
        if cached is not None and cached[0] is codec:
            return cached[1], cached[2]
        bucket_index, positions = codec.encode(self)
        self._dense = (codec, bucket_index, positions)
        return bucket_index, positions

    # ------------------------------------------------------------------
    # Pairwise relations
    # ------------------------------------------------------------------

    def ahead(self, x: Item, y: Item) -> bool:
        """True if ``x`` is ahead of (ranked strictly better than) ``y``."""
        return self[x] < self[y]

    def tied(self, x: Item, y: Item) -> bool:
        """True if ``x`` and ``y`` are tied (same bucket)."""
        return self[x] == self[y]

    # ------------------------------------------------------------------
    # Derived rankings
    # ------------------------------------------------------------------

    def reverse(self) -> "PartialRanking":
        """Return the reverse ranking ``sigma^R(d) = |D| + 1 - sigma(d)``.

        Reversing a bucket order is just reversing the bucket sequence.
        """
        reversed_ranking = PartialRanking.__new__(PartialRanking)
        buckets = tuple(reversed(self._buckets))
        n = len(self)
        reversed_ranking._buckets = buckets
        reversed_ranking._positions = {item: n + 1 - pos for item, pos in self._positions.items()}
        reversed_ranking._bucket_index = {
            item: len(buckets) - 1 - idx for item, idx in self._bucket_index.items()
        }
        reversed_ranking._hash = None
        reversed_ranking._domain = self._domain  # same item set; share the cache
        reversed_ranking._order = None
        reversed_ranking._dense = None
        return reversed_ranking

    def refined_by(self, tau: "PartialRanking") -> "PartialRanking":
        """Return the tau-refinement ``tau * self`` (paper §2).

        Ties of ``self`` are broken according to ``tau``: within each bucket
        of ``self``, items are re-partitioned into sub-buckets ordered by
        their ``tau`` positions; items tied in both stay tied.

        ``tau`` must share this ranking's domain. The operation is
        associative, which the test suite verifies property-wise.
        """
        from repro.errors import DomainMismatchError

        if tau.domain != self.domain:
            raise DomainMismatchError(
                "refinement requires identical domains "
                f"({len(tau)} vs {len(self)} items, differing contents)"
            )
        new_buckets: list[list[Item]] = []
        for bucket in self._buckets:
            groups: dict[float, list[Item]] = {}
            for item in bucket:
                groups.setdefault(tau[item], []).append(item)
            for pos in sorted(groups):
                new_buckets.append(groups[pos])
        return PartialRanking(new_buckets)

    def is_refinement_of(self, tau: "PartialRanking") -> bool:
        """True if ``self`` refines ``tau`` (written ``self ⪯ tau``).

        ``sigma`` refines ``tau`` iff ``tau(i) < tau(j)`` implies
        ``sigma(i) < sigma(j)``. Equivalently: every bucket of ``sigma``
        lies inside a single bucket of ``tau``, and the induced sequence of
        ``tau``-bucket indices along ``sigma``'s buckets is non-decreasing.
        """
        if tau.domain != self.domain:
            return False
        previous = -1
        for bucket in self._buckets:
            tau_indices = {tau.bucket_index(item) for item in bucket}
            if len(tau_indices) != 1:
                return False
            (index,) = tau_indices
            if index < previous:
                return False
            previous = index
        return True

    def restricted_to(self, subdomain: Iterable[Item]) -> "PartialRanking":
        """Return the ranking restricted to a subset of the domain.

        Bucket order is preserved; buckets that become empty vanish.
        """
        keep = set(subdomain)
        if not keep <= self.domain:
            raise InvalidRankingError("restriction set contains items outside the domain")
        if not keep:
            raise InvalidRankingError("cannot restrict to an empty domain")
        buckets = [bucket & keep for bucket in self._buckets]
        return PartialRanking([b for b in buckets if b])

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialRanking):
            return NotImplemented
        return self._buckets == other._buckets

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._buckets)
        return self._hash

    def __reduce__(
        self,
    ) -> tuple[type["PartialRanking"], tuple[tuple[frozenset[Item], ...]]]:
        # pickle only the ordered partition: the derived dicts and lazy
        # caches are rebuilt on load, keeping process-pool payloads small
        return (PartialRanking, (self._buckets,))

    def __repr__(self) -> str:
        ordered = iter(self._canonical_order())
        rendered = " | ".join(
            ", ".join(repr(item) for item in islice(ordered, len(bucket)))
            for bucket in self._buckets
        )
        return f"PartialRanking[{rendered}]"
