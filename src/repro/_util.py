"""Low-level algorithmic helpers shared across the library.

This module contains the small, well-tested machinery that the metric and
aggregation code builds on:

* :class:`FenwickTree` — a binary indexed tree over prefix counts, used for
  O(n log n) inversion / discordant-pair counting.
* :func:`count_inversions` — number of strictly decreasing pairs in a
  sequence of comparable values.
* :func:`sorted_slice_l1` — L1 cost of moving a sorted slice of values onto a
  single point, in O(log n) per query via prefix sums (used by the optimal
  bucketing dynamic program).
* :func:`ordered_partitions` — enumeration of all bucket orders of a set
  (used by the brute-force aggregation oracles).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterator, Sequence
from itertools import accumulate
from typing import TypeVar

T = TypeVar("T")

__all__ = [
    "FenwickTree",
    "count_inversions",
    "SortedSliceL1",
    "sorted_slice_l1",
    "ordered_partitions",
    "pairs",
]


class FenwickTree:
    """A Fenwick (binary indexed) tree over integer counts.

    Supports point updates and prefix-sum queries in O(log n). Indices are
    0-based on the public interface.
    """

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)

    def __len__(self) -> int:
        return self._size

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` to the count at ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Return the sum of counts at positions ``0..index`` inclusive.

        ``index = -1`` is allowed and yields 0.
        """
        if index >= self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        total = 0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        """Return the sum of all counts in the tree."""
        return self.prefix_sum(self._size - 1) if self._size else 0


def count_inversions(values: Sequence[float]) -> int:
    """Count pairs ``i < j`` with ``values[i] > values[j]`` (strictly).

    Equal values do not contribute. Runs in O(n log n) using a Fenwick tree
    over the ranks of the distinct values.
    """
    if len(values) < 2:
        return 0
    distinct = sorted(set(values))
    rank = {v: r for r, v in enumerate(distinct)}
    tree = FenwickTree(len(distinct))
    inversions = 0
    seen = 0
    for v in values:
        r = rank[v]
        # previously seen values strictly greater than v
        inversions += seen - tree.prefix_sum(r)
        tree.add(r)
        seen += 1
    return inversions


class SortedSliceL1:
    """Precomputed prefix sums over a sorted value sequence.

    Answers "what is ``sum(|v - point| for v in values[i:j])``" in O(log n)
    per query. The constructor requires ``values`` to be sorted ascending;
    this is validated once.
    """

    __slots__ = ("_values", "_prefix")

    def __init__(self, values: Sequence[float]) -> None:
        vals = list(values)
        if any(a > b for a, b in zip(vals, vals[1:])):
            raise ValueError("values must be sorted ascending")
        self._values = vals
        self._prefix = [0.0, *accumulate(vals)]

    def __len__(self) -> int:
        return len(self._values)

    def cost(self, start: int, stop: int, point: float) -> float:
        """Return ``sum(|values[k] - point| for k in range(start, stop))``."""
        if not 0 <= start <= stop <= len(self._values):
            raise IndexError(f"bad slice [{start}:{stop}] for length {len(self._values)}")
        if start == stop:
            return 0.0
        # split the slice at the first index whose value exceeds `point`
        split = bisect_right(self._values, point, start, stop)
        below = (split - start) * point - (self._prefix[split] - self._prefix[start])
        above = (self._prefix[stop] - self._prefix[split]) - (stop - split) * point
        return below + above

    def median_cost(self, start: int, stop: int) -> float:
        """Return the minimum L1 cost of the slice to any single point.

        The minimizer is the slice median; used as a sanity baseline by the
        bucketing DP tests.
        """
        if start == stop:
            return 0.0
        mid = (start + stop - 1) // 2
        return self.cost(start, stop, self._values[mid])


def sorted_slice_l1(values: Sequence[float], start: int, stop: int, point: float) -> float:
    """One-shot convenience wrapper around :class:`SortedSliceL1`."""
    return SortedSliceL1(values).cost(start, stop, point)


def ordered_partitions(items: Sequence[T]) -> Iterator[list[list[T]]]:
    """Yield every ordered set partition (bucket order) of ``items``.

    The number of ordered partitions of an n-set is the n-th Fubini number
    (1, 1, 3, 13, 75, 541, 4683, ...), so this is only usable for small n —
    it exists as an exhaustive oracle for the aggregation and DP tests.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in ordered_partitions(rest):
        # insert `first` into each existing bucket ...
        for i in range(len(partition)):
            grown = [list(bucket) for bucket in partition]
            grown[i].append(first)
            yield grown
        # ... or as a new singleton bucket at each position
        for i in range(len(partition) + 1):
            yield [*(list(b) for b in partition[:i]), [first], *(list(b) for b in partition[i:])]


def pairs(n: int) -> int:
    """Return ``n choose 2`` — the number of unordered pairs."""
    return n * (n - 1) // 2
