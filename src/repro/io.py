"""Serialization of partial rankings (JSON and CSV interchange formats).

A production rank-aggregation library must move rankings in and out of
files. Two formats are supported:

**JSON** — lossless for string/number items::

    {"buckets": [["a"], ["b", "c"], ["d"]]}

and profiles (several rankings over one domain)::

    {"rankings": [{"name": "by_price", "buckets": [...]}, ...]}

**CSV** — the database-friendly long format, one row per (ranking, item)::

    ranking,item,bucket
    by_price,a,0
    by_price,b,1

``bucket`` is the 0-based bucket index; equal indices within a ranking
mean tied. Items are read back as strings (CSV carries no types).
"""

from __future__ import annotations

import csv
import io as _io
import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TextIO

from repro.core.partial_ranking import PartialRanking
from repro.errors import InvalidRankingError, ReproError

__all__ = [
    "SerializationError",
    "ranking_to_dict",
    "ranking_from_dict",
    "dump_ranking_json",
    "load_ranking_json",
    "dump_profile_json",
    "load_profile_json",
    "dump_profile_csv",
    "load_profile_csv",
]


class SerializationError(ReproError, ValueError):
    """A ranking file was malformed."""


def ranking_to_dict(sigma: PartialRanking) -> dict:
    """JSON-ready dict with buckets in canonical within-bucket order."""
    return {
        "buckets": [
            sorted(bucket, key=lambda item: (type(item).__name__, repr(item)))
            for bucket in sigma.buckets
        ]
    }


def ranking_from_dict(payload: Mapping) -> PartialRanking:
    """Inverse of :func:`ranking_to_dict` (validates the shape)."""
    try:
        buckets = payload["buckets"]
    except (KeyError, TypeError):
        raise SerializationError("expected an object with a 'buckets' key") from None
    if not isinstance(buckets, list) or not all(isinstance(b, list) for b in buckets):
        raise SerializationError("'buckets' must be a list of lists")
    try:
        return PartialRanking(buckets)
    except InvalidRankingError as exc:
        raise SerializationError(f"invalid ranking payload: {exc}") from exc


def _open_for(target: str | Path | TextIO, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def dump_ranking_json(sigma: PartialRanking, target: str | Path | TextIO) -> None:
    """Write one ranking as JSON to a path or open text file."""
    handle, owned = _open_for(target, "w")
    try:
        json.dump(ranking_to_dict(sigma), handle, indent=2)
        handle.write("\n")
    finally:
        if owned:
            handle.close()


def load_ranking_json(source: str | Path | TextIO) -> PartialRanking:
    """Read one ranking from a JSON path or open text file."""
    handle, owned = _open_for(source, "r")
    try:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"not valid JSON: {exc}") from exc
    finally:
        if owned:
            handle.close()
    return ranking_from_dict(payload)


def dump_profile_json(
    rankings: Mapping[str, PartialRanking] | Sequence[PartialRanking],
    target: str | Path | TextIO,
) -> None:
    """Write a named or anonymous profile of rankings as JSON."""
    if isinstance(rankings, Mapping):
        named = list(rankings.items())
    else:
        named = [(f"ranking_{index}", sigma) for index, sigma in enumerate(rankings)]
    payload = {
        "rankings": [
            {"name": name, **ranking_to_dict(sigma)} for name, sigma in named
        ]
    }
    handle, owned = _open_for(target, "w")
    try:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    finally:
        if owned:
            handle.close()


def load_profile_json(source: str | Path | TextIO) -> dict[str, PartialRanking]:
    """Read a profile of rankings from JSON; returns name -> ranking."""
    handle, owned = _open_for(source, "r")
    try:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"not valid JSON: {exc}") from exc
    finally:
        if owned:
            handle.close()
    try:
        entries = payload["rankings"]
    except (KeyError, TypeError):
        raise SerializationError("expected an object with a 'rankings' key") from None
    profile: dict[str, PartialRanking] = {}
    for index, entry in enumerate(entries):
        name = entry.get("name", f"ranking_{index}")
        if name in profile:
            raise SerializationError(f"duplicate ranking name {name!r}")
        profile[name] = ranking_from_dict(entry)
    return profile


def dump_profile_csv(
    rankings: Mapping[str, PartialRanking],
    target: str | Path | TextIO,
) -> None:
    """Write a named profile in long CSV format (ranking, item, bucket)."""
    handle, owned = _open_for(target, "w")
    try:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(["ranking", "item", "bucket"])
        for name, sigma in rankings.items():
            for index, bucket in enumerate(sigma.buckets):
                for item in sorted(bucket, key=repr):
                    writer.writerow([name, item, index])
    finally:
        if owned:
            handle.close()


def load_profile_csv(source: str | Path | TextIO) -> dict[str, PartialRanking]:
    """Read a long-format CSV profile; items come back as strings."""
    handle, owned = _open_for(source, "r")
    try:
        content = handle.read()
    finally:
        if owned:
            handle.close()
    reader = csv.DictReader(_io.StringIO(content))
    required = {"ranking", "item", "bucket"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise SerializationError(
            f"CSV must have columns {sorted(required)}, got {reader.fieldnames}"
        )
    grouped: dict[str, dict[int, list[str]]] = {}
    for line_number, row in enumerate(reader, start=2):
        try:
            bucket_index = int(row["bucket"])
        except (TypeError, ValueError):
            raise SerializationError(
                f"line {line_number}: bucket index {row['bucket']!r} is not an integer"
            ) from None
        if bucket_index < 0:
            raise SerializationError(f"line {line_number}: negative bucket index")
        grouped.setdefault(row["ranking"], {}).setdefault(bucket_index, []).append(
            row["item"]
        )
    profile: dict[str, PartialRanking] = {}
    for name, buckets_by_index in grouped.items():
        indices = sorted(buckets_by_index)
        if indices != list(range(len(indices))):
            raise SerializationError(
                f"ranking {name!r}: bucket indices must be 0..t-1 without gaps, "
                f"got {indices}"
            )
        try:
            profile[name] = PartialRanking(
                [buckets_by_index[index] for index in indices]
            )
        except InvalidRankingError as exc:
            raise SerializationError(f"ranking {name!r}: {exc}") from exc
    if not profile:
        raise SerializationError("CSV contained no rankings")
    return profile
