"""Tests for the synthetic catalog generators."""

from __future__ import annotations

import pytest

from repro.db.sources import (
    AIRLINES,
    CUISINES,
    SUBJECT_AREAS,
    bibliography_catalog,
    flight_catalog,
    restaurant_catalog,
)


class TestRestaurantCatalog:
    def test_deterministic_under_seed(self):
        assert restaurant_catalog(20, seed=3).rows == restaurant_catalog(20, seed=3).rows

    def test_different_seeds_differ(self):
        assert restaurant_catalog(20, seed=1).rows != restaurant_catalog(20, seed=2).rows

    def test_schema(self):
        relation = restaurant_catalog(10)
        assert relation.attributes == {
            "id",
            "cuisine",
            "price",
            "stars",
            "distance_miles",
            "seats",
        }
        assert len(relation) == 10

    def test_few_valued_attributes_create_ties(self):
        relation = restaurant_catalog(200, seed=0)
        assert relation.distinct_values("cuisine") <= len(CUISINES)
        assert relation.distinct_values("price") <= 4
        assert relation.distinct_values("stars") <= 9
        ranking = relation.rank_by("cuisine", value_order=list(CUISINES))
        assert max(ranking.type) > 10

    def test_size_validation(self):
        with pytest.raises(ValueError):
            restaurant_catalog(0)


class TestFlightCatalog:
    def test_deterministic_under_seed(self):
        assert flight_catalog(20, seed=3).rows == flight_catalog(20, seed=3).rows

    def test_connections_has_at_most_four_values(self):
        relation = flight_catalog(300, seed=0)
        assert relation.distinct_values("connections") <= 4
        assert relation.distinct_values("airline") <= len(AIRLINES)

    def test_duration_correlates_with_connections(self):
        relation = flight_catalog(500, seed=0)
        by_connections: dict[int, list[int]] = {}
        for row in relation:
            by_connections.setdefault(row["connections"], []).append(
                row["duration_minutes"]
            )
        means = {
            c: sum(values) / len(values) for c, values in by_connections.items()
        }
        assert means[0] < means[2]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            flight_catalog(-5)


class TestBibliographyCatalog:
    def test_deterministic_under_seed(self):
        assert (
            bibliography_catalog(20, seed=3).rows == bibliography_catalog(20, seed=3).rows
        )

    def test_schema(self):
        relation = bibliography_catalog(10)
        assert relation.attributes == {
            "id",
            "year",
            "citations",
            "area",
            "pages",
            "num_authors",
        }

    def test_citations_are_heavy_tailed(self):
        relation = bibliography_catalog(300, seed=0)
        citations = [row["citations"] for row in relation]
        zero_fraction = sum(1 for c in citations if c == 0) / len(citations)
        assert zero_fraction > 0.3  # a large tied bucket at the bottom
        assert max(citations) > 10  # but a real tail exists

    def test_few_valued_attributes(self):
        relation = bibliography_catalog(200, seed=0)
        assert relation.distinct_values("area") <= len(SUBJECT_AREAS)
        assert relation.distinct_values("year") <= 7

    def test_size_validation(self):
        with pytest.raises(ValueError):
            bibliography_catalog(0)


class TestBibliographyWorkload:
    def test_workload_wiring(self):
        from repro.generators.workloads import db_profile_workload

        workload = db_profile_workload(50, seed=0, catalog="bibliography")
        assert workload.domain_size == 50
        assert workload.num_inputs == 4
        assert workload.max_bucket > 5  # the zero-citation bucket
