"""Unit and property tests for the Kendall metrics K, K^(p), K_prof."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking
from repro.errors import DomainMismatchError, InvalidRankingError
from repro.metrics.kendall import kendall, kendall_full, kendall_naive, pair_counts
from tests.conftest import bucket_order_pairs


class TestKendallFull:
    def test_identical_rankings(self):
        sigma = PartialRanking.from_sequence("abc")
        assert kendall_full(sigma, sigma) == 0

    def test_reversal_counts_all_pairs(self):
        sigma = PartialRanking.from_sequence("abcd")
        assert kendall_full(sigma, sigma.reverse()) == 6

    def test_adjacent_swap_is_one(self):
        sigma = PartialRanking.from_sequence("abc")
        tau = PartialRanking.from_sequence("bac")
        assert kendall_full(sigma, tau) == 1

    def test_partial_inputs_rejected(self):
        partial = PartialRanking([["a", "b"]])
        full = PartialRanking.from_sequence("ab")
        with pytest.raises(InvalidRankingError):
            kendall_full(partial, full)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            kendall_full(
                PartialRanking.from_sequence("ab"), PartialRanking.from_sequence("cd")
            )


class TestPenaltyCases:
    """The three cases of §3.1, exercised explicitly."""

    def test_case1_opposite_order_costs_one(self):
        sigma = PartialRanking.from_sequence("ab")
        tau = PartialRanking.from_sequence("ba")
        for p in (0.0, 0.3, 0.5, 1.0):
            assert kendall(sigma, tau, p) == 1.0

    def test_case2_tied_in_both_is_free(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["a", "b"], ["c"]])
        assert kendall(sigma, tau, 1.0) == 0.0

    def test_case3_tied_in_one_costs_p(self):
        sigma = PartialRanking([["a", "b"]])
        tau = PartialRanking.from_sequence("ab")
        for p in (0.0, 0.25, 0.5, 1.0):
            assert kendall(sigma, tau, p) == p

    def test_p_outside_unit_interval_rejected(self):
        sigma = PartialRanking([["a", "b"]])
        with pytest.raises(InvalidRankingError):
            kendall(sigma, sigma, p=1.5)
        with pytest.raises(InvalidRankingError):
            kendall_naive(sigma, sigma, p=-0.1)


class TestKProf:
    def test_worked_example(self):
        # pairs: (a,b) tied in sigma, split in tau -> 1/2;
        #        (a,c) a<c both -> 0; (b,c) b<c vs c<b -> 1
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["a"], ["c"], ["b"]])
        assert kendall(sigma, tau) == 1.5

    def test_symmetry(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["c", "b"], ["a"]])
        assert kendall(sigma, tau) == kendall(tau, sigma)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DomainMismatchError):
            kendall(PartialRanking([["a"]]), PartialRanking([["b"]]))

    @given(bucket_order_pairs())
    def test_fast_matches_naive(self, pair):
        sigma, tau = pair
        for p in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert kendall(sigma, tau, p) == pytest.approx(kendall_naive(sigma, tau, p))

    @given(bucket_order_pairs(), st.floats(min_value=0.01, max_value=1.0))
    def test_monotone_in_p(self, pair, p):
        sigma, tau = pair
        assert kendall(sigma, tau, p) <= kendall(sigma, tau, 1.0) + 1e-9

    @given(bucket_order_pairs())
    def test_equivalence_class_scaling(self, pair):
        # K^(p) <= K^(p') <= (p'/p) K^(p) for 0 < p < p' (§A.2)
        sigma, tau = pair
        p, p_prime = 0.25, 0.75
        low = kendall(sigma, tau, p)
        high = kendall(sigma, tau, p_prime)
        assert low <= high + 1e-9
        assert high <= (p_prime / p) * low + 1e-9


class TestPairCounts:
    def test_categories_sum_to_total(self):
        sigma = PartialRanking([["a", "b"], ["c", "d"]])
        tau = PartialRanking([["a"], ["b", "c"], ["d"]])
        counts = pair_counts(sigma, tau)
        assert counts.total == 6

    def test_classification_worked_example(self):
        sigma = PartialRanking([["a", "b"], ["c"]])
        tau = PartialRanking([["b"], ["a", "c"]])
        counts = pair_counts(sigma, tau)
        # (a,b): tied in sigma only -> S; (a,c): split both, same order;
        # (b,c): split both, same order... b<c in sigma, b<c in tau: concordant
        # (a,c): a<c sigma, a~c tau -> T
        assert counts.tied_first_only == 1
        assert counts.tied_second_only == 1
        assert counts.discordant == 0
        assert counts.concordant == 1
        assert counts.tied_both == 0

    def test_kendall_evaluation(self):
        sigma = PartialRanking([["a", "b"]])
        tau = PartialRanking.from_sequence("ba")
        counts = pair_counts(sigma, tau)
        assert counts.kendall(0.5) == 0.5
        assert counts.kendall_hausdorff() == 1

    @given(bucket_order_pairs())
    def test_counts_are_consistent(self, pair):
        sigma, tau = pair
        counts = pair_counts(sigma, tau)
        n = len(sigma)
        assert counts.total == n * (n - 1) // 2
        assert min(
            counts.discordant,
            counts.concordant,
            counts.tied_both,
            counts.tied_first_only,
            counts.tied_second_only,
        ) >= 0

    @given(bucket_order_pairs())
    def test_swapping_arguments_swaps_s_and_t(self, pair):
        sigma, tau = pair
        forward = pair_counts(sigma, tau)
        backward = pair_counts(tau, sigma)
        assert forward.tied_first_only == backward.tied_second_only
        assert forward.discordant == backward.discordant
        assert forward.tied_both == backward.tied_both
