"""Concurrency, batching, caching and transport tests for repro.serve.

The claims under test, in the order the module proves them:

* **Coalescing**: N concurrent distance requests over one domain produce
  exactly one ``pairwise_distance_matrix`` invocation — observable via
  the ``serve.batch.coalesced`` / ``serve.batch.flushes`` and
  ``metrics.batch.matrix_calls`` counters — and every response is
  bit-for-bit equal to the direct two-ranking metric.
* **Order independence**: the same queries submitted in a different
  arrival order produce identical bits.
* **Freshness**: a mutation arriving mid-batch never causes a stale
  response — voter references resolve when the request is accepted, the
  distance cache is content-addressed, and consensus entries are
  invalidated by the mutation.
* **Transport**: the HTTP/JSON layer round-trips every route, maps
  errors to 400/404/409, and keeps connections alive.
* **Snapshot portability**: a snapshot restored in a *different process*
  answers consensus queries bit-for-bit identically.
"""

from __future__ import annotations

import asyncio
import json
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import pytest

from repro import obs
from repro.aggregate.kemeny import kemeny_optimal
from repro.aggregate.median import median_scores
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng
from repro.metrics.footrule import footrule
from repro.metrics.kendall import kendall
from repro.metrics.plugins.weighted_footrule import weighted_footrule
from repro.obs import metrics, spans
from repro.serve import (
    RankingService,
    ReproServer,
    ResultCache,
    ServeConfig,
    SnapshotError,
    config_from_env,
)
from repro.serve.cli import build_parser, resolve_config

DOMAIN = frozenset(range(5))


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Detach ambient obs sessions and reset counters around every test."""
    saved = spans._SESSIONS[:]
    spans._SESSIONS.clear()
    spans._LOCAL.stack.clear()
    metrics.reset()
    yield
    spans._SESSIONS[:] = saved
    spans._LOCAL.stack.clear()
    metrics.reset()


def _rankings(count: int, seed: int = 7) -> list[PartialRanking]:
    """Distinct bucket orders over DOMAIN."""
    rng = resolve_rng(seed)
    seen: list[PartialRanking] = []
    while len(seen) < count:
        candidate = random_bucket_order(len(DOMAIN), rng, tie_bias=0.4)
        if candidate not in seen:
            seen.append(candidate)
    return seen


def run(coro: Any) -> Any:
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_concurrent_requests_one_matrix_call(self):
        """Nine concurrent queries -> one flush, one kernel call, exact bits."""
        service = RankingService(ServeConfig(batch_window=0.0, cache_capacity=0))
        rankings = _rankings(6)
        pairs = [(rankings[i], rankings[(i + 1) % 6]) for i in range(6)]
        pairs += [
            (rankings[0], rankings[3]),
            (rankings[1], rankings[4]),
            (rankings[2], rankings[5]),
        ]

        async def fire() -> list[float]:
            return await asyncio.gather(
                *(service.distance(DOMAIN, s, t) for s, t in pairs)
            )

        with obs.capture():
            values = run(fire())
        counters = obs.snapshot()["counters"]
        assert counters["serve.batch.flushes"] == 1
        assert counters["serve.batch.coalesced"] == len(pairs)
        assert counters["metrics.batch.matrix_calls"] == 1
        assert counters["serve.requests.distance"] == len(pairs)
        for value, (sigma, tau) in zip(values, pairs):
            assert value == kendall(sigma, tau, 0.5)

    def test_duplicate_queries_coalesce_and_dedup(self):
        """The same pair asked twice joins one batch of two distinct rankings."""
        service = RankingService(ServeConfig(batch_window=0.0, cache_capacity=0))
        sigma, tau = _rankings(2)

        async def fire() -> list[float]:
            return await asyncio.gather(
                service.distance(DOMAIN, sigma, tau),
                service.distance(DOMAIN, sigma, tau),
                service.distance(DOMAIN, tau, sigma),
            )

        with obs.capture():
            first, second, flipped = run(fire())
        counters = obs.snapshot()["counters"]
        assert counters["serve.batch.flushes"] == 1
        assert counters["serve.batch.coalesced"] == 3
        assert counters["metrics.batch.matrix_calls"] == 1
        assert first == second == flipped == kendall(sigma, tau, 0.5)

    def test_distinct_metric_groups_flush_separately(self):
        service = RankingService(ServeConfig(batch_window=0.0, cache_capacity=0))
        sigma, tau = _rankings(2)

        async def fire() -> list[float]:
            return await asyncio.gather(
                service.distance(DOMAIN, sigma, tau, metric="kendall"),
                service.distance(DOMAIN, sigma, tau, metric="footrule"),
            )

        with obs.capture():
            k_value, f_value = run(fire())
        counters = obs.snapshot()["counters"]
        assert counters["serve.batch.flushes"] == 2
        assert k_value == kendall(sigma, tau, 0.5)
        assert f_value == footrule(sigma, tau)

    def test_metric_aliases_share_a_batch(self):
        """k_prof and kendall are the same canonical group."""
        service = RankingService(ServeConfig(batch_window=0.0, cache_capacity=0))
        sigma, tau = _rankings(2)

        async def fire() -> list[float]:
            return await asyncio.gather(
                service.distance(DOMAIN, sigma, tau, metric="kendall"),
                service.distance(DOMAIN, sigma, tau, metric="k_prof"),
            )

        with obs.capture():
            values = run(fire())
        counters = obs.snapshot()["counters"]
        assert counters["serve.batch.flushes"] == 1
        assert values[0] == values[1] == kendall(sigma, tau, 0.5)

    def test_order_independence_bit_for_bit(self):
        rankings = _rankings(5)
        pairs = [(rankings[i], rankings[j]) for i in range(5) for j in range(i + 1, 5)]

        async def fire(service: RankingService, ordering: list[int]) -> dict:
            values = await asyncio.gather(
                *(service.distance(DOMAIN, *pairs[index]) for index in ordering)
            )
            return {ordering[pos]: value for pos, value in enumerate(values)}

        forward = run(fire(RankingService(ServeConfig(batch_window=0.0)), list(range(len(pairs)))))
        backward = run(
            fire(RankingService(ServeConfig(batch_window=0.0)), list(reversed(range(len(pairs)))))
        )
        assert forward == backward
        for index, (sigma, tau) in enumerate(pairs):
            assert forward[index] == kendall(sigma, tau, 0.5)

    def test_unknown_metric_rejected(self):
        service = RankingService(ServeConfig(batch_window=0.0))
        sigma, tau = _rankings(2)
        with pytest.raises(AggregationError):
            run(service.distance(DOMAIN, sigma, tau, metric="spearman"))

    def test_single_ranking_batch_answers_zero_without_kernel(self):
        service = RankingService(ServeConfig(batch_window=0.0, cache_capacity=0))
        (sigma,) = _rankings(1)

        with obs.capture():
            value = run(service.distance(DOMAIN, sigma, sigma))
        counters = obs.snapshot()["counters"]
        assert value == 0.0
        assert "metrics.batch.matrix_calls" not in counters


# ----------------------------------------------------------------------
# Freshness under mutation
# ----------------------------------------------------------------------


class TestFreshness:
    def test_mid_batch_mutation_uses_accept_time_snapshot(self):
        """A voter reference resolves when accepted, not when flushed."""
        old, new, probe = _rankings(3)

        async def scenario() -> tuple[float, float]:
            service = RankingService(ServeConfig(batch_window=0.02))
            await service.update(DOMAIN, "alice", old)
            task = asyncio.ensure_future(service.distance(DOMAIN, "alice", probe))
            await asyncio.sleep(0)  # the query is accepted, the window is open
            await service.update(DOMAIN, "alice", new)  # mid-window mutation
            accepted = await task
            fresh = await service.distance(DOMAIN, "alice", probe)
            await service.drain()
            return accepted, fresh

        accepted, fresh = run(scenario())
        assert accepted == kendall(old, probe, 0.5)
        assert fresh == kendall(new, probe, 0.5)

    def test_mutation_invalidates_consensus_cache(self):
        r1, r2 = _rankings(2)

        async def scenario() -> tuple[dict, dict, int]:
            service = RankingService(ServeConfig(batch_window=0.0))
            await service.update(DOMAIN, "alice", r1)
            first = await service.consensus(DOMAIN, kind="scores")
            again = await service.consensus(DOMAIN, kind="scores")
            assert again == first
            hits_before_mutation = service.cache.hits
            await service.update(DOMAIN, "bob", r2)
            after = await service.consensus(DOMAIN, kind="scores")
            return first, after, hits_before_mutation

        first, after, hits = run(scenario())
        assert hits >= 1  # the repeat was served from cache...
        assert first == median_scores([r1])
        assert after == median_scores([r1, r2])  # ...and the mutation dropped it

    def test_distance_cache_is_content_addressed(self):
        """Cached distances key on the rankings, so churn cannot stale them."""
        old, new, probe = _rankings(3)

        async def scenario() -> tuple[float, float, float]:
            service = RankingService(ServeConfig(batch_window=0.0))
            await service.update(DOMAIN, "alice", old)
            by_ref_old = await service.distance(DOMAIN, "alice", probe)
            await service.update(DOMAIN, "alice", new)
            by_ref_new = await service.distance(DOMAIN, "alice", probe)
            old_pair_still = await service.distance(DOMAIN, old, probe)
            return by_ref_old, by_ref_new, old_pair_still

        by_ref_old, by_ref_new, old_pair_still = run(scenario())
        assert by_ref_old == kendall(old, probe, 0.5)
        assert by_ref_new == kendall(new, probe, 0.5)
        assert old_pair_still == by_ref_old

    def test_voter_reference_without_shard_rejected(self):
        service = RankingService(ServeConfig(batch_window=0.0))
        (probe,) = _rankings(1)
        with pytest.raises(AggregationError):
            run(service.distance(DOMAIN, "nobody", probe))

    def test_restore_drops_every_cached_answer(self):
        r1, r2 = _rankings(2)

        async def scenario() -> tuple[dict, dict]:
            service = RankingService(ServeConfig(batch_window=0.0))
            await service.update(DOMAIN, "alice", r1)
            blob = service.snapshot()
            await service.update(DOMAIN, "bob", r2)
            await service.consensus(DOMAIN, kind="scores")  # cached under 2 voters
            service.restore(blob)
            restored = await service.consensus(DOMAIN, kind="scores")
            return restored, median_scores([r1])

        restored, expected = run(scenario())
        assert restored == expected


# ----------------------------------------------------------------------
# Certified-exact Kemeny consensus
# ----------------------------------------------------------------------


class TestKemenyConsensus:
    def test_matches_offline_solver(self):
        rankings = _rankings(3, seed=11)

        async def scenario() -> PartialRanking:
            service = RankingService(ServeConfig(batch_window=0.0))
            for index, ranking in enumerate(rankings):
                await service.update(DOMAIN, f"v{index}", ranking)
            return await service.consensus(DOMAIN, kind="kemeny")

        got = run(scenario())
        expected, _ = kemeny_optimal(rankings)
        assert got == expected

    def test_mutation_invalidates_kemeny_cache(self):
        r1, r2, r3 = _rankings(3, seed=13)

        async def scenario() -> tuple[PartialRanking, int, PartialRanking]:
            service = RankingService(ServeConfig(batch_window=0.0))
            await service.update(DOMAIN, "a", r1)
            await service.update(DOMAIN, "b", r2)
            first = await service.consensus(DOMAIN, kind="kemeny")
            again = await service.consensus(DOMAIN, kind="kemeny")
            assert again == first
            hits = service.cache.hits
            await service.update(DOMAIN, "c", r3)
            after = await service.consensus(DOMAIN, kind="kemeny")
            return first, hits, after

        first, hits, after = run(scenario())
        assert hits >= 1
        assert first == kemeny_optimal([r1, r2])[0]
        assert after == kemeny_optimal([r1, r2, r3])[0]

    def test_uncertifiable_shard_refused(self):
        # rotations over 20 items form one dominance SCC past the DP cap,
        # so the service must refuse (the HTTP layer maps this to 409)
        domain = frozenset(range(20))
        base = list(range(20))
        voters = [
            PartialRanking.from_sequence(base[shift:] + base[:shift])
            for shift in (0, 1, 2)
        ]

        async def scenario() -> None:
            service = RankingService(ServeConfig(batch_window=0.0))
            for index, ranking in enumerate(voters):
                await service.update(domain, f"v{index}", ranking)
            await service.consensus(domain, kind="kemeny")

        with pytest.raises(AggregationError, match="strongly-connected"):
            run(scenario())

    def test_scc_counters_flow_through_serving(self):
        rankings = _rankings(3, seed=17)

        async def scenario() -> None:
            service = RankingService(ServeConfig(batch_window=0.0))
            for index, ranking in enumerate(rankings):
                await service.update(DOMAIN, f"v{index}", ranking)
            await service.consensus(DOMAIN, kind="kemeny")

        with obs.capture():
            run(scenario())
        counters = obs.snapshot()["counters"]
        assert counters["serve.requests.consensus"] == 1
        assert counters["kemeny.scc.components"] >= 1
        assert counters["kemeny.scc.largest"] >= 1


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


def _literal(ranking: PartialRanking) -> dict:
    """The JSON bucket-literal form of a ranking."""
    return {"buckets": [list(bucket) for bucket in ranking.buckets]}


async def _post(port: int, path: str, payload: dict) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        return await _request_on(reader, writer, "POST", path, payload)
    finally:
        writer.close()
        await writer.wait_closed()


async def _request_on(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: dict | None,
) -> tuple[int, dict]:
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    data = json.loads(await reader.readexactly(length)) if length else {}
    return status, data


class TestHTTP:
    def _serve(self, scenario):
        """Run an async scenario against a live ephemeral-port server."""

        async def wrapped():
            server = ReproServer(
                config=ServeConfig(port=0, batch_window=0.0, cache_capacity=64)
            )
            await server.start()
            try:
                return await scenario(server)
            finally:
                await server.stop()

        return run(wrapped())

    def test_update_distance_consensus_roundtrip(self):
        sigma, tau = _rankings(2)
        domain = sorted(DOMAIN)

        async def scenario(server: ReproServer):
            status, body = await _post(
                server.port,
                "/v1/update",
                {"domain": domain, "voter": "alice", "ranking": _literal(sigma)},
            )
            assert status == 200
            assert body["result"]["replaced"] is False
            status, body = await _post(
                server.port,
                "/v1/distance",
                {
                    "domain": domain,
                    "sigma": {"voter": "alice"},
                    "tau": _literal(tau),
                },
            )
            assert status == 200
            assert body["result"]["distance"] == kendall(sigma, tau, 0.5)
            status, body = await _post(
                server.port, "/v1/consensus", {"domain": domain, "kind": "scores"}
            )
            assert status == 200
            expected = median_scores([sigma])
            assert {item: score for item, score in body["result"]["scores"]} == expected

        self._serve(scenario)

    def test_concurrent_http_distances_all_exact(self):
        rankings = _rankings(4)
        domain = sorted(DOMAIN)
        pairs = [(rankings[i], rankings[(i + 1) % 4]) for i in range(4)]

        async def scenario(server: ReproServer):
            responses = await asyncio.gather(
                *(
                    _post(
                        server.port,
                        "/v1/distance",
                        {
                            "domain": domain,
                            "sigma": _literal(s),
                            "tau": _literal(t),
                        },
                    )
                    for s, t in pairs
                )
            )
            for (status, body), (s, t) in zip(responses, pairs):
                assert status == 200
                assert body["result"]["distance"] == kendall(s, t, 0.5)

        self._serve(scenario)

    def test_error_mapping_and_keep_alive(self):
        domain = sorted(DOMAIN)

        async def scenario(server: ReproServer):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                # three requests on one keep-alive connection
                status, _ = await _request_on(reader, writer, "GET", "/v1/healthz", None)
                assert status == 200
                status, body = await _request_on(
                    reader, writer, "POST", "/v1/remove", {"domain": domain, "voter": "x"}
                )
                assert status == 409  # no shard for the domain yet
                status, body = await _request_on(
                    reader, writer, "POST", "/v1/distance", {"domain": domain}
                )
                assert status == 400  # missing sigma/tau
                assert "sigma" in body["error"]
            finally:
                writer.close()
                await writer.wait_closed()
            status, _ = await _post(server.port, "/v1/nope", {})
            assert status == 404
            status, body = await _post(
                server.port,
                "/v1/update",
                {"domain": domain, "voter": "a", "ranking": {"voter": "b"}},
            )
            assert status == 400  # update needs a literal ranking

        self._serve(scenario)

    def test_http_kemeny_consensus(self):
        rankings = _rankings(3, seed=19)
        domain = sorted(DOMAIN)

        async def scenario(server: ReproServer):
            for index, ranking in enumerate(rankings):
                await _post(
                    server.port,
                    "/v1/update",
                    {"domain": domain, "voter": f"v{index}", "ranking": _literal(ranking)},
                )
            status, body = await _post(
                server.port, "/v1/consensus", {"domain": domain, "kind": "kemeny"}
            )
            assert status == 200
            expected, _ = kemeny_optimal(rankings)
            assert body["result"] == _literal(expected)

        self._serve(scenario)

    def test_http_kemeny_refusal_maps_to_409(self):
        base = list(range(20))
        domain = base

        async def scenario(server: ReproServer):
            for index, shift in enumerate((0, 1, 2)):
                rotated = PartialRanking.from_sequence(base[shift:] + base[:shift])
                await _post(
                    server.port,
                    "/v1/update",
                    {"domain": domain, "voter": f"v{index}", "ranking": _literal(rotated)},
                )
            status, body = await _post(
                server.port, "/v1/consensus", {"domain": domain, "kind": "kemeny"}
            )
            assert status == 409
            assert "strongly-connected" in body["error"]

        self._serve(scenario)

    def test_http_unknown_metric_maps_to_400(self):
        sigma, tau = _rankings(2)
        domain = sorted(DOMAIN)

        async def scenario(server: ReproServer):
            status, body = await _post(
                server.port,
                "/v1/distance",
                {
                    "domain": domain,
                    "sigma": _literal(sigma),
                    "tau": _literal(tau),
                    "metric": "spearman",
                },
            )
            assert status == 400  # unresolvable name = malformed request
            assert "unknown metric" in body["error"]
            assert "kendall" in body["error"]  # the registered spellings
            # a registered plugin spelling serves fine on the same route
            status, body = await _post(
                server.port,
                "/v1/distance",
                {
                    "domain": domain,
                    "sigma": _literal(sigma),
                    "tau": _literal(tau),
                    "metric": "wf",
                },
            )
            assert status == 200
            assert body["result"]["distance"] == weighted_footrule(sigma, tau)

        self._serve(scenario)

    def test_http_snapshot_restore(self):
        sigma, tau = _rankings(2)
        domain = sorted(DOMAIN)

        async def scenario(server: ReproServer):
            await _post(
                server.port,
                "/v1/update",
                {"domain": domain, "voter": "a", "ranking": _literal(sigma)},
            )
            status, body = await _post(server.port, "/v1/snapshot", {})
            assert status == 200
            blob = body["result"]["snapshot"]
            await _post(
                server.port,
                "/v1/update",
                {"domain": domain, "voter": "b", "ranking": _literal(tau)},
            )
            status, body = await _post(server.port, "/v1/restore", {"snapshot": blob})
            assert status == 200
            assert body["result"] == {"restored": True, "shards": 1}
            status, body = await _post(
                server.port, "/v1/consensus", {"domain": domain, "kind": "scores"}
            )
            expected = median_scores([sigma])  # voter b is gone again
            assert {item: score for item, score in body["result"]["scores"]} == expected
            status, body = await _post(server.port, "/v1/restore", {"snapshot": "!!!"})
            assert status == 400

        self._serve(scenario)


# ----------------------------------------------------------------------
# Snapshot across a real process boundary
# ----------------------------------------------------------------------


def _consensus_in_child(blob: bytes, domain_items: tuple, k: int) -> tuple:
    """Worker: restore the snapshot in a fresh service and answer queries."""
    service = RankingService()
    service.restore(blob)
    domain = frozenset(domain_items)

    async def query() -> tuple:
        return (
            await service.consensus(domain, kind="scores"),
            await service.consensus(domain, kind="full"),
            await service.consensus(domain, kind="partial"),
            await service.consensus(domain, kind="topk", k=k),
        )

    return asyncio.run(query())


class TestSnapshotProcessBoundary:
    def test_restored_process_answers_identically(self):
        rankings = _rankings(4, seed=21)

        async def build() -> tuple[bytes, tuple]:
            service = RankingService(ServeConfig(batch_window=0.0))
            for index, ranking in enumerate(rankings):
                await service.update(DOMAIN, f"v{index}", ranking)
            local = (
                await service.consensus(DOMAIN, kind="scores"),
                await service.consensus(DOMAIN, kind="full"),
                await service.consensus(DOMAIN, kind="partial"),
                await service.consensus(DOMAIN, kind="topk", k=2),
            )
            return service.snapshot(), local

        blob, local = run(build())
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_consensus_in_child, blob, tuple(DOMAIN), 2).result()
        assert remote == local

    def test_garbage_blob_rejected(self):
        service = RankingService()
        with pytest.raises(SnapshotError):
            service.restore(b"not a snapshot")

    def test_layout_version_mismatch_rejected(self):
        service = RankingService()
        blob = pickle.dumps({"version": 999, "tie": "mid", "shards": []})
        with pytest.raises(SnapshotError):
            service.restore(blob)


# ----------------------------------------------------------------------
# Cache + config units
# ----------------------------------------------------------------------


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("s", "a", 1)
        cache.put("s", "b", 2)
        assert cache.get("s", "a") == 1  # refresh a; b is now LRU
        cache.put("s", "c", 3)
        assert cache.get("s", "b") is None
        assert cache.get("s", "a") == 1
        assert cache.stats["evictions"] == 1

    def test_scope_invalidation_is_exact(self):
        cache = ResultCache(8)
        cache.put("alpha", "k1", 1)
        cache.put("alpha", "k2", 2)
        cache.put("beta", "k1", 3)
        assert cache.invalidate("alpha") == 2
        assert cache.get("alpha", "k1") is None
        assert cache.get("beta", "k1") == 3
        assert cache.invalidate("alpha") == 0

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put("s", "k", 1)
        assert cache.get("s", "k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(batch_window=-0.1)
        with pytest.raises(ValueError):
            ServeConfig(cache_capacity=-1)
        with pytest.raises(ValueError):
            ServeConfig(port=70000)

    def test_env_roundtrip(self):
        config = config_from_env(
            {
                "REPRO_SERVE_HOST": "0.0.0.0",
                "REPRO_SERVE_PORT": "9000",
                "REPRO_SERVE_BATCH_WINDOW": "0.01",
                "REPRO_SERVE_CACHE": "16",
                "REPRO_SERVE_JOBS": "2",
            }
        )
        assert config == ServeConfig(
            host="0.0.0.0", port=9000, batch_window=0.01, cache_capacity=16, jobs=2
        )

    def test_malformed_env_warns_and_defaults(self):
        with pytest.warns(RuntimeWarning):
            config = config_from_env({"REPRO_SERVE_BATCH_WINDOW": "soon"})
        assert config.batch_window == ServeConfig().batch_window

    def test_cli_flags_override_env(self):
        args = build_parser().parse_args(["--port", "0", "--cache", "7"])
        config = resolve_config(args)
        assert config.port == 0
        assert config.cache_capacity == 7
