"""Tests for the majority-tournament / Condorcet utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.kemeny import kemeny_lower_bound, kemeny_optimal
from repro.aggregate.objective import total_distance
from repro.aggregate.tournament import (
    condorcet_winner,
    is_condorcet_consistent,
    majority_digraph,
    topological_aggregation,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, resolve_rng


def _consensus_profile():
    return [
        PartialRanking.from_sequence("abcd"),
        PartialRanking.from_sequence("abcd"),
        PartialRanking.from_sequence("abdc"),
    ]


def _cycle_profile():
    return [
        PartialRanking.from_sequence("abc"),
        PartialRanking.from_sequence("bca"),
        PartialRanking.from_sequence("cab"),
    ]


class TestMajorityDigraph:
    def test_consensus_graph_is_the_total_order(self):
        graph = majority_digraph(_consensus_profile())
        assert graph.has_edge("a", "b")
        assert graph.has_edge("a", "c")
        assert graph.has_edge("c", "d")  # 2 of 3 voters
        assert not graph.has_edge("d", "c")

    def test_margins_are_positive(self):
        graph = majority_digraph(_consensus_profile())
        for _, _, data in graph.edges(data=True):
            assert data["margin"] > 0
            assert data["cost"] >= 0

    def test_tied_pair_has_no_edge(self):
        rankings = [
            PartialRanking.from_sequence("ab"),
            PartialRanking.from_sequence("ba"),
        ]
        graph = majority_digraph(rankings)
        assert graph.number_of_edges() == 0

    def test_cycle_detected(self):
        assert not is_condorcet_consistent(_cycle_profile())
        assert is_condorcet_consistent(_consensus_profile())


class TestCondorcetWinner:
    def test_consensus_winner(self):
        assert condorcet_winner(_consensus_profile()) == "a"

    def test_cycle_has_no_winner(self):
        assert condorcet_winner(_cycle_profile()) is None

    def test_no_winner_with_tied_top(self):
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("bac"),
        ]
        assert condorcet_winner(rankings) is None


class TestTopologicalAggregation:
    def test_matches_lower_bound_and_exact_optimum(self):
        rankings = _consensus_profile()
        ranking, cost = topological_aggregation(rankings)
        assert ranking.is_full
        assert cost == pytest.approx(kemeny_lower_bound(rankings))
        _, exact = kemeny_optimal(rankings)
        assert cost == pytest.approx(exact)
        assert total_distance(ranking, rankings, "k_prof") == pytest.approx(cost)

    def test_cyclic_instance_rejected(self):
        with pytest.raises(AggregationError):
            topological_aggregation(_cycle_profile())

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_acyclic_random_instances_are_solved_exactly(self, seed):
        rng = resolve_rng(seed)
        rankings = [random_bucket_order(6, rng) for _ in range(5)]
        if not is_condorcet_consistent(rankings):
            return
        _, topo_cost = topological_aggregation(rankings)
        _, exact_cost = kemeny_optimal(rankings)
        assert topo_cost == pytest.approx(exact_cost)
        assert topo_cost == pytest.approx(kemeny_lower_bound(rankings))

    def test_condorcet_winner_tops_the_aggregation(self):
        rankings = _consensus_profile()
        ranking, _ = topological_aggregation(rankings)
        assert ranking.items_in_order()[0] == condorcet_winner(rankings)
