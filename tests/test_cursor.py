"""Tests for sorted-access cursors and access accounting."""

from __future__ import annotations

import pytest

from repro.core.partial_ranking import PartialRanking
from repro.db.cursor import CursorExhausted, CursorPool, SortedCursor


class TestSortedCursor:
    def test_yields_items_in_ranked_order(self):
        sigma = PartialRanking([["b"], ["a", "c"]])
        cursor = SortedCursor(sigma)
        item, pos = cursor.next_item()
        assert (item, pos) == ("b", 1.0)
        item, pos = cursor.next_item()
        assert pos == 2.5

    def test_accounting(self):
        sigma = PartialRanking.from_sequence("abc")
        cursor = SortedCursor(sigma)
        assert cursor.accesses == 0
        cursor.next_item()
        cursor.next_item()
        assert cursor.accesses == 2
        assert cursor.depth == 2
        assert not cursor.exhausted

    def test_exhaustion_raises(self):
        cursor = SortedCursor(PartialRanking([["only"]]))
        cursor.next_item()
        assert cursor.exhausted
        with pytest.raises(CursorExhausted):
            cursor.next_item()

    def test_peek_position_is_frontier(self):
        sigma = PartialRanking([["a"], ["b", "c"], ["d"]])
        cursor = SortedCursor(sigma)
        assert cursor.peek_position() == 1.0
        cursor.next_item()
        assert cursor.peek_position() == 2.5
        cursor.next_item()
        # still inside the {b, c} bucket
        assert cursor.peek_position() == 2.5

    def test_peek_does_not_consume(self):
        cursor = SortedCursor(PartialRanking.from_sequence("ab"))
        cursor.peek_position()
        assert cursor.accesses == 0

    def test_peek_after_exhaustion_is_last_bucket(self):
        cursor = SortedCursor(PartialRanking.from_sequence("ab"))
        cursor.next_item()
        cursor.next_item()
        assert cursor.peek_position() == 2.0


class TestCursorPool:
    def test_round_advances_every_cursor(self):
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("cab"),
        ]
        pool = CursorPool.over(rankings)
        seen = pool.advance_round()
        assert [(index, item) for index, item, _ in seen] == [(0, "a"), (1, "c")]
        assert pool.total_accesses == 2

    def test_exhaustion(self):
        pool = CursorPool.over([PartialRanking([["x"]])])
        assert not pool.exhausted
        pool.advance_round()
        assert pool.exhausted
        assert pool.advance_round() == []
