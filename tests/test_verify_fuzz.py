"""Live fuzz smoke, behind the ``fuzz`` marker.

Deselected by the default ``-m 'not fuzz'`` addopts so the tier-1 suite
stays fast; CI runs it explicitly (``pytest -m fuzz``) and the nightly
workflow drives the same harness much harder via
``python -m repro.verify --rounds 200``.
"""

from __future__ import annotations

import pytest

from repro.verify import all_checks, run_fuzz

pytestmark = pytest.mark.fuzz


def test_fuzz_smoke_five_rounds():
    report = run_fuzz(5, seed=0, checks=all_checks())
    assert report.ok, report.summary() + "".join(
        f"\n  {d.describe()}" for d in report.discrepancies
    )


def test_fuzz_smoke_with_pool():
    report = run_fuzz(5, seed=0, checks=all_checks(), jobs=2)
    assert report.ok, report.summary()
