"""End-to-end integration tests across the whole library."""

from __future__ import annotations

import pytest

from repro import (
    AttributePreference,
    MedianAggregator,
    PartialRanking,
    PreferenceQuery,
    footrule,
    footrule_hausdorff,
    kendall,
    kendall_hausdorff,
    medrank,
    nra_median,
    optimal_footrule_aggregation,
    restaurant_catalog,
    total_distance,
)
from repro.generators.workloads import db_profile_workload, mallows_profile_workload
from repro.metrics.equivalence import check_proved_bounds, metric_bundle


class TestRestaurantScenario:
    """The paper's §1 scenario, front to back."""

    def test_catalog_search_pipeline(self):
        relation = restaurant_catalog(120, seed=4)
        query = PreferenceQuery.build(
            AttributePreference("cuisine", value_order=["thai", "italian"]),
            AttributePreference("price"),
            AttributePreference("stars", reverse=True),
            AttributePreference("distance_miles", bins=(2.0, 5.0, 10.0)),
            k=5,
        )
        result = query.execute(relation)

        # the inputs really are heavily tied partial rankings
        assert all(ties > 1 for ties in result.ties_per_input)
        # the top-5 list is well-formed
        assert result.ranking.is_top_k(5)
        # sequential access read far less than the whole input
        assert result.access_log.total_accesses < 4 * len(relation)

        # the online (access-efficient) and offline aggregations agree on
        # quality within the proved constant
        offline = query.execute_offline(relation)
        rankings = list(result.input_rankings)
        online_cost = total_distance(result.ranking, rankings, "f_prof")
        offline_cost = total_distance(offline, rankings, "f_prof")
        assert online_cost <= 3 * offline_cost + 1e-9 or offline_cost == 0

    def test_query_winner_is_defensible(self):
        relation = restaurant_catalog(60, seed=9)
        query = PreferenceQuery.build(
            AttributePreference("price"),
            AttributePreference("stars", reverse=True),
            AttributePreference("distance_miles", bins=(5.0, 15.0)),
            k=1,
        )
        result = query.execute(relation)
        winner = result.top_items[0]
        rankings = list(result.input_rankings)
        # the majority-rule winner's median score stays close to the
        # certified minimum (the rule's slack on bucket inputs is small)
        certified = nra_median(rankings, k=1).winners[0]
        from repro.aggregate.median import median_scores

        scores = median_scores(rankings)
        assert scores[certified] == min(scores.values())
        assert scores[winner] <= scores[certified] + len(relation) / 2


class TestMetasearchScenario:
    """Noisy engines over a ground truth; aggregation should denoise."""

    def test_aggregation_recovers_ground_truth_better_than_inputs(self):
        workload = mallows_profile_workload(40, 7, phi=0.4, seed=2, max_bucket=4)
        rankings = list(workload.rankings)
        truth = PartialRanking.from_sequence(range(40))
        aggregate = MedianAggregator(tuple(rankings)).full_ranking()
        mean_input_distance = sum(
            kendall(truth, sigma) for sigma in rankings
        ) / len(rankings)
        assert kendall(truth, aggregate) <= mean_input_distance

    def test_medrank_matches_full_information_winner_quality(self):
        workload = mallows_profile_workload(60, 5, phi=0.3, seed=8, max_bucket=4)
        rankings = list(workload.rankings)
        fast = medrank(rankings, k=1)
        certified = nra_median(rankings, k=1)
        from repro.aggregate.median import median_scores

        scores = median_scores(rankings)
        assert scores[certified.winners[0]] == min(scores.values())
        assert scores[fast.winners[0]] <= min(scores.values()) + 3


class TestFourMetricsOnRealWorkloads:
    def test_bounds_hold_on_db_rankings(self):
        workload = db_profile_workload(50, seed=1, catalog="flights")
        rankings = list(workload.rankings)
        for i, sigma in enumerate(rankings):
            for tau in rankings[i + 1 :]:
                assert check_proved_bounds(metric_bundle(sigma, tau)) == []

    def test_metric_values_are_finite_and_consistent(self):
        workload = db_profile_workload(30, seed=2, catalog="restaurants")
        sigma, tau = workload.rankings[0], workload.rankings[1]
        assert 0 <= kendall(sigma, tau) <= footrule(sigma, tau)
        assert kendall_hausdorff(sigma, tau) <= footrule_hausdorff(sigma, tau)


class TestAggregatorAgainstExactOptimum:
    def test_median_close_to_matching_optimum_on_db_workload(self):
        workload = db_profile_workload(40, seed=3, catalog="restaurants")
        rankings = list(workload.rankings)
        aggregate = MedianAggregator(tuple(rankings)).full_ranking()
        _, optimum = optimal_footrule_aggregation(rankings)
        cost = total_distance(aggregate, rankings, "f_prof")
        assert cost <= 3 * optimum + 1e-9

    def test_f_dagger_within_factor_two_of_matching_optimum(self):
        # Theorem 10: the f-dagger objective is within 2x of ANY partial
        # ranking's, and the matching optimum is in particular one of those
        workload = db_profile_workload(40, seed=3, catalog="restaurants")
        rankings = list(workload.rankings)
        f_dagger = MedianAggregator(tuple(rankings)).partial_ranking()
        _, matching_cost = optimal_footrule_aggregation(rankings)
        assert total_distance(f_dagger, rankings, "f_prof") <= 2 * matching_cost + 1e-9


class TestErrorPropagation:
    def test_mixed_domain_query_pipeline_raises_cleanly(self):
        from repro.errors import AggregationError

        with pytest.raises(AggregationError):
            MedianAggregator(
                (PartialRanking([["a"]]), PartialRanking([["b"]]))
            )
