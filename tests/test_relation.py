"""Tests for the in-memory relation and its ranking-producing sorts."""

from __future__ import annotations

import pytest

from repro.db.relation import Relation, SchemaError

ROWS = [
    {"id": "r1", "cuisine": "thai", "price": 2, "distance": 1.2},
    {"id": "r2", "cuisine": "thai", "price": 1, "distance": 8.0},
    {"id": "r3", "cuisine": "italian", "price": 2, "distance": 3.5},
    {"id": "r4", "cuisine": "mexican", "price": 3, "distance": 25.0},
]


@pytest.fixture
def relation() -> Relation:
    return Relation.from_rows("restaurants", "id", ROWS)


class TestSchema:
    def test_attributes_and_keys(self, relation):
        assert relation.attributes == {"id", "cuisine", "price", "distance"}
        assert relation.keys == {"r1", "r2", "r3", "r4"}
        assert len(relation) == 4

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("empty", "id", [])

    def test_missing_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("bad", "nope", ROWS)

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("bad", "id", [{"id": 1, "a": 1}, {"id": 2}])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("bad", "id", [{"id": 1}, {"id": 1}])

    def test_row_lookup(self, relation):
        assert relation.row("r2")["price"] == 1
        with pytest.raises(KeyError):
            relation.row("zzz")

    def test_column_and_distinct(self, relation):
        assert relation.column("price") == {"r1": 2, "r2": 1, "r3": 2, "r4": 3}
        assert relation.distinct_values("cuisine") == 3
        with pytest.raises(SchemaError):
            relation.column("nope")

    def test_iteration(self, relation):
        assert sum(1 for _ in relation) == 4


class TestWhereAndProject:
    def test_where_filters_rows(self, relation):
        thai = relation.where(lambda row: row["cuisine"] == "thai")
        assert thai.keys == {"r1", "r2"}
        assert thai.attributes == relation.attributes

    def test_where_empty_result_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.where(lambda row: False)

    def test_filtered_constant_attribute_yields_single_bucket(self, relation):
        # the degenerate case behind E13: after filtering, an attribute can
        # become constant and its ranking ties everything
        thai = relation.where(lambda row: row["cuisine"] == "thai")
        ranking = thai.rank_by("cuisine")
        assert ranking.type == (len(thai),)

    def test_project_keeps_key(self, relation):
        projected = relation.project(["price"])
        assert projected.attributes == {"id", "price"}
        assert projected.keys == relation.keys

    def test_project_unknown_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.project(["nope"])

    def test_where_then_rank_pipeline(self, relation):
        nearby = relation.where(lambda row: row["distance"] <= 10.0)
        ranking = nearby.rank_by("price")
        assert ranking.domain == nearby.keys


class TestRankBy:
    def test_equal_values_are_tied(self, relation):
        ranking = relation.rank_by("price")
        assert ranking.tied("r1", "r3")
        assert ranking.ahead("r2", "r1")
        assert ranking.ahead("r1", "r4")

    def test_reverse_direction(self, relation):
        ranking = relation.rank_by("price", reverse=True)
        assert ranking.ahead("r4", "r1")

    def test_binning_coarsens(self, relation):
        # "any distance up to ten miles is the same"
        ranking = relation.rank_by("distance", binning=lambda d: d <= 10.0)
        # True sorts after False in Python: use an explicit bin index instead
        ranking = relation.rank_by("distance", binning=lambda d: 0 if d <= 10.0 else 1)
        assert ranking.tied("r1", "r2")
        assert ranking.tied("r1", "r3")
        assert ranking.ahead("r1", "r4")

    def test_value_order_for_categorical(self, relation):
        ranking = relation.rank_by("cuisine", value_order=["italian", "thai"])
        assert ranking.ahead("r3", "r1")
        assert ranking.tied("r1", "r2")
        # unlisted cuisines rank last
        assert ranking.ahead("r1", "r4")

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.rank_by("nope")

    def test_ranking_domain_is_keys(self, relation):
        assert relation.rank_by("price").domain == relation.keys


class TestRankByLex:
    def test_secondary_sort_breaks_primary_ties(self, relation):
        # r1 and r3 tie on price=2; distance 1.2 < 3.5 breaks the tie
        ranking = relation.rank_by_lex([("price", False), ("distance", False)])
        assert ranking.ahead("r1", "r3")
        assert ranking.ahead("r2", "r1")

    def test_equals_star_of_attribute_rankings(self, relation):
        from repro.core.refine import star

        lex = relation.rank_by_lex([("price", False), ("distance", True)])
        primary = relation.rank_by("price")
        secondary = relation.rank_by("distance", reverse=True)
        assert lex == star(secondary, primary)

    def test_three_level_sort_is_associative_chain(self, relation):
        from repro.core.refine import star_chain

        lex = relation.rank_by_lex(
            [("cuisine", False), ("price", False), ("distance", False)]
        )
        chained = star_chain(
            relation.rank_by("distance"),
            relation.rank_by("price"),
            relation.rank_by("cuisine"),
        )
        assert lex == chained

    def test_fully_tied_records_remain_tied(self):
        rows = [
            {"id": 1, "a": 0, "b": 0},
            {"id": 2, "a": 0, "b": 0},
            {"id": 3, "a": 1, "b": 0},
        ]
        relation = Relation.from_rows("t", "id", rows)
        ranking = relation.rank_by_lex([("a", False), ("b", False)])
        assert ranking.tied(1, 2)
        assert ranking.ahead(1, 3)

    def test_empty_criteria_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.rank_by_lex([])
