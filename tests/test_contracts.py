"""Tests for the runtime metric-contract layer (repro.analysis.contracts)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.contracts import (
    ENV_FLAG,
    checked_metric,
    contracts_enabled,
    near_triangle_constant,
)
from repro.core.partial_ranking import PartialRanking
from repro.errors import MetricContractError, ReproError


@pytest.fixture
def debug_mode(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")


@pytest.fixture
def production_mode(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)


class TestEnableFlag:
    def test_flag_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("yes", True),
            ("", False),
            ("0", False),
            ("false", False),
            ("off", False),
        ]:
            monkeypatch.setenv(ENV_FLAG, value)
            assert contracts_enabled() is expected, value
        monkeypatch.delenv(ENV_FLAG)
        assert contracts_enabled() is False

    def test_disabled_contracts_never_fire(self, production_mode):
        @checked_metric()
        def negative(x, y):
            return -5.0

        assert negative("a", "b") == -5.0  # no check, no exception


class TestNearTriangleConstant:
    def test_proposition_13_regimes(self):
        assert near_triangle_constant(1.0) == 1.0
        assert near_triangle_constant(0.5) == 1.0
        assert near_triangle_constant(0.25) == 2.0
        assert near_triangle_constant(0.1) == pytest.approx(5.0)
        assert math.isinf(near_triangle_constant(0.0))


class TestAxiomChecks:
    def test_nonnegativity(self, debug_mode):
        @checked_metric()
        def negative(x, y):
            return -1.0

        with pytest.raises(MetricContractError, match="non-negativity"):
            negative("a", "b")

    def test_regularity(self, debug_mode):
        @checked_metric()
        def irregular(x, y):
            return 1.0

        with pytest.raises(MetricContractError, match="regularity"):
            irregular("a", "a")

    def test_symmetry(self, debug_mode):
        @checked_metric()
        def asymmetric(x, y):
            return 1.0 if x < y else 2.0

        with pytest.raises(MetricContractError, match="symmetry"):
            asymmetric("a", "b")

    def test_triangle_violation_caught_via_history(self, debug_mode):
        table = {
            frozenset(("a", "b")): 1.0,
            frozenset(("b", "c")): 1.0,
            frozenset(("a", "c")): 5.0,
        }

        @checked_metric()
        def skewed(x, y):
            return 0.0 if x == y else table[frozenset((x, y))]

        skewed("a", "b")
        with pytest.raises(MetricContractError, match="near-triangle"):
            skewed("b", "c")

    def test_near_metric_constant_relaxes_the_triangle(self, debug_mode):
        table = {
            frozenset(("a", "b")): 1.0,
            frozenset(("b", "c")): 1.0,
            frozenset(("a", "c")): 3.5,
        }

        @checked_metric(constant=2.0)
        def near(x, y):
            return 0.0 if x == y else table[frozenset((x, y))]

        near("a", "b")
        near("b", "c")  # 3.5 <= 2 * (1 + 1): fine at c=2, would fail at c=1

    def test_contract_error_is_a_repro_error(self, debug_mode):
        @checked_metric()
        def negative(x, y):
            return -1.0

        with pytest.raises(ReproError):
            negative("a", "b")


class TestShippedMetricsUnderContract:
    def _trio(self):
        return (
            PartialRanking([["a", "b"], ["c"]]),
            PartialRanking([["c"], ["a", "b"]]),
            PartialRanking([["b"], ["a"], ["c"]]),
        )

    def test_four_metrics_run_clean(self, debug_mode):
        from repro.metrics import (
            footrule,
            footrule_hausdorff,
            kendall,
            kendall_hausdorff,
        )

        for metric in (kendall, footrule, kendall_hausdorff, footrule_hausdorff):
            a, b, c = self._trio()
            metric(a, b)
            metric(b, c)
            metric(a, c)  # triangle chains through the call history

    def test_kendall_near_metric_regime_uses_scaled_constant(self, debug_mode):
        a, b, c = self._trio()
        from repro.metrics import kendall

        # p = 0.1 is a near metric: plain triangle may fail, the contract
        # must use c = 1/(2p) = 5 and stay silent.
        kendall(a, b, 0.1)
        kendall(b, c, 0.1)
        kendall(a, c, 0.1)

    def test_kendall_p0_skips_triangle_checks(self, debug_mode):
        a, b, c = self._trio()
        from repro.metrics import kendall

        kendall(a, b, 0.0)
        kendall(b, c, 0.0)
        kendall(a, c, 0.0)

    def test_validation_errors_still_propagate(self, debug_mode):
        from repro.errors import DomainMismatchError
        from repro.metrics import kendall

        with pytest.raises(DomainMismatchError):
            kendall(
                PartialRanking([["a"], ["b"]]),
                PartialRanking([["x"], ["y"]]),
            )

    def test_contract_metadata_attached(self):
        from repro.metrics import footrule

        assert footrule.__repro_contract__["name"] == "footrule"
        assert footrule.__repro_contract__["symmetric"] is True

    def test_extra_arguments_partition_the_history(self, debug_mode):
        # d(.,.; p=1) values must never chain against d(.,.; p=0.5) values.
        calls = []

        @checked_metric()
        def parametric(x, y, scale=1.0):
            calls.append((x, y, scale))
            return 0.0 if x == y else scale

        parametric("a", "b", 1.0)
        parametric("b", "c", 100.0)  # would violate c=1 if chained across keys
