"""Tests for median rank aggregation (Lemma 8, Theorems 9/11, Cor. 30)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.exact import optimal_top_k
from repro.aggregate.median import (
    MedianAggregator,
    median_fixed_type,
    median_full_ranking,
    median_of,
    median_partial_ranking,
    median_scores,
    median_top_k,
)
from repro.aggregate.objective import total_distance, total_l1_to_function
from repro.core.partial_ranking import PartialRanking
from repro.errors import AggregationError
from repro.generators.random import random_bucket_order, random_full_ranking, resolve_rng
from tests.conftest import bucket_orders


class TestMedianOf:
    def test_odd_length(self):
        assert median_of([3.0, 1.0, 2.0]) == 2.0

    def test_even_length_tie_rules(self):
        values = [1.0, 2.0, 4.0, 8.0]
        assert median_of(values, tie="low") == 2.0
        assert median_of(values, tie="high") == 4.0
        assert median_of(values, tie="mid") == 3.0

    def test_empty_rejected(self):
        with pytest.raises(AggregationError):
            median_of([])

    def test_unknown_tie_rule_rejected(self):
        with pytest.raises(AggregationError):
            median_of([1.0, 2.0], tie="weird")

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=9))
    def test_median_is_within_range(self, values):
        for tie in ("low", "mid", "high"):
            assert min(values) <= median_of(values, tie=tie) <= max(values)


class TestLemma8:
    """The median minimizes sum_i L1(f, sigma_i) over all functions."""

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_median_beats_random_functions(self, seed):
        rng = resolve_rng(seed)
        n, m = 6, rng.choice([3, 4, 5])
        rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
        for tie in ("low", "mid", "high"):
            f = median_scores(rankings, tie=tie)
            median_cost = total_l1_to_function(f, rankings)
            for _ in range(10):
                g = {item: rng.uniform(0, n + 1) for item in rankings[0].domain}
                assert median_cost <= total_l1_to_function(g, rankings) + 1e-9

    def test_median_scores_values(self):
        rankings = [
            PartialRanking.from_sequence("abc"),
            PartialRanking.from_sequence("bca"),
            PartialRanking.from_sequence("cab"),
        ]
        scores = median_scores(rankings)
        assert scores == {"a": 2.0, "b": 2.0, "c": 2.0}


class TestTheorem9:
    """Median top-k is within factor 3 of the optimal top-k (F_prof)."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_factor_three_against_bruteforce(self, seed):
        rng = resolve_rng(seed)
        n, m, k = 5, 3, 2
        rankings = [random_bucket_order(n, rng, tie_bias=0.5) for _ in range(m)]
        top = median_top_k(rankings, k)
        assert top.is_top_k(k)
        cost = total_distance(top, rankings, "f_prof")
        _, optimum = optimal_top_k(rankings, k, metric="f_prof")
        assert cost <= 3 * optimum + 1e-9

    def test_bad_k_rejected(self):
        rankings = [PartialRanking.from_sequence("ab")]
        with pytest.raises(AggregationError):
            median_top_k(rankings, 0)
        with pytest.raises(AggregationError):
            median_top_k(rankings, 3)


class TestTheorem11:
    """For full-ranking inputs, median refinement is a 2-approximation."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_factor_two_against_all_full_rankings(self, seed):
        from repro.aggregate.exact import optimal_full_ranking

        rng = resolve_rng(seed)
        n, m = 5, 3
        rankings = [random_full_ranking(n, rng) for _ in range(m)]
        aggregate = median_full_ranking(rankings)
        assert aggregate.is_full
        cost = total_distance(aggregate, rankings, "f_prof")
        _, optimum = optimal_full_ranking(rankings, metric="f_prof")
        assert cost <= 2 * optimum + 1e-9

    def test_unanimous_inputs_are_reproduced(self):
        sigma = PartialRanking.from_sequence("dcba")
        assert median_full_ranking([sigma, sigma, sigma]) == sigma


class TestFixedType:
    def test_type_is_respected(self):
        rankings = [PartialRanking.from_sequence("abcd")] * 3
        result = median_fixed_type(rankings, (2, 1, 1))
        assert result.type == (2, 1, 1)
        assert result.buckets[0] == {"a", "b"}

    def test_wrong_total_rejected(self):
        rankings = [PartialRanking.from_sequence("ab")]
        with pytest.raises(AggregationError):
            median_fixed_type(rankings, (3,))

    def test_nonpositive_bucket_rejected(self):
        rankings = [PartialRanking.from_sequence("ab")]
        with pytest.raises(AggregationError):
            median_fixed_type(rankings, (2, 0))


class TestMedianAggregator:
    def test_all_outputs_share_domain(self):
        rng = resolve_rng(5)
        rankings = tuple(random_bucket_order(6, rng) for _ in range(3))
        aggregator = MedianAggregator(rankings)
        domain = rankings[0].domain
        assert aggregator.full_ranking().domain == domain
        assert aggregator.partial_ranking().domain == domain
        assert aggregator.top_k(2).domain == domain
        assert aggregator.fixed_type((2, 2, 2)).domain == domain
        assert set(aggregator.scores()) == set(domain)

    def test_empty_profile_rejected(self):
        with pytest.raises(AggregationError):
            MedianAggregator(())

    def test_mismatched_domains_rejected(self):
        with pytest.raises(AggregationError):
            MedianAggregator(
                (PartialRanking([["a"]]), PartialRanking([["b"]]))
            )

    @given(bucket_orders(max_size=6))
    def test_single_input_full_output_is_refinement(self, sigma):
        result = median_full_ranking([sigma])
        assert result.is_refinement_of(sigma)

    def test_partial_output_matches_direct_dp(self):
        rng = resolve_rng(9)
        rankings = [random_bucket_order(7, rng) for _ in range(3)]
        assert MedianAggregator(tuple(rankings)).partial_ranking() == (
            median_partial_ranking(rankings)
        )

    def test_tie_rule_is_forwarded(self):
        rankings = (
            PartialRanking.from_sequence("ab"),
            PartialRanking.from_sequence("ba"),
        )
        low = MedianAggregator(rankings, tie="low").scores()
        high = MedianAggregator(rankings, tie="high").scores()
        assert low["a"] == 1.0 and high["a"] == 2.0


class TestDeterminism:
    def test_same_seed_same_output(self):
        rng_a = random.Random(3)
        rng_b = random.Random(3)
        rankings_a = [random_bucket_order(8, rng_a) for _ in range(4)]
        rankings_b = [random_bucket_order(8, rng_b) for _ in range(4)]
        assert median_full_ranking(rankings_a) == median_full_ranking(rankings_b)
