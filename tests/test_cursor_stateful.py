"""Stateful property test: sorted cursors behave like list iterators.

A hypothesis RuleBasedStateMachine drives a :class:`SortedCursor` with an
arbitrary interleaving of ``next_item`` and ``peek_position`` calls and
checks, after every step, that the cursor's accounting matches a simple
reference model (the materialized item order).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.core.partial_ranking import PartialRanking
from repro.db.cursor import CursorExhausted, SortedCursor
from repro.generators.random import random_bucket_order


class CursorMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.ranking: PartialRanking | None = None
        self.cursor: SortedCursor | None = None
        self.expected_order: list = []
        self.consumed = 0

    @precondition(lambda self: self.cursor is None)
    @rule(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=1, max_value=12))
    def create(self, seed: int, n: int) -> None:
        self.ranking = random_bucket_order(n, seed, tie_bias=0.5)
        self.cursor = SortedCursor(self.ranking)
        self.expected_order = self.ranking.items_in_order()
        self.consumed = 0

    @precondition(lambda self: self.cursor is not None)
    @rule()
    def consume(self) -> None:
        if self.consumed < len(self.expected_order):
            item, position = self.cursor.next_item()
            assert item == self.expected_order[self.consumed]
            assert position == self.ranking[item]
            self.consumed += 1
        else:
            try:
                self.cursor.next_item()
            except CursorExhausted:
                pass
            else:  # pragma: no cover
                raise AssertionError("exhausted cursor yielded an item")

    @precondition(lambda self: self.cursor is not None)
    @rule()
    def peek(self) -> None:
        # peeks never consume and never raise
        frontier = self.cursor.peek_position()
        index = min(self.consumed, len(self.expected_order) - 1)
        assert frontier == self.ranking[self.expected_order[index]]

    @invariant()
    def accounting_matches_model(self) -> None:
        if self.cursor is None:
            return
        assert self.cursor.depth == self.consumed
        assert self.cursor.accesses == self.consumed
        assert self.cursor.exhausted == (self.consumed == len(self.expected_order))


TestCursorStateful = CursorMachine.TestCase
TestCursorStateful.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
